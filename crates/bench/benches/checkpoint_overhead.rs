//! Cost of crash-safe sessions: a full solve driven through the
//! [`abs::AbsSession`] poll loop with checkpointing configured at a 1 s
//! stride vs no checkpointing at all, plus the cost of one explicit
//! checkpoint publish (quiesce → encode → fsync → rotate → rename).
//!
//! The gate asserts two things, both ≤ 1.02×:
//! * `stride_ratio` — min solve time with the 1 s stride armed over min
//!   solve time without (the per-poll stride bookkeeping, since these
//!   sub-second solves never reach the stride);
//! * `projected_ratio` — `1 + write_min_ns / 1e9`, the worst-case share
//!   of each wall-clock second one checkpoint publish would consume at
//!   the 1 s stride.
//!
//! After measuring, `main` writes the means and ratios to
//! `BENCH_checkpoint.json` at the repo root (override with
//! `BENCH_CHECKPOINT_OUT`).

use abs::{AbsConfig, AbsSession, SessionStatus, StopCondition};
use criterion::{Bencher, BenchmarkId, Criterion, Throughput};
use qubo_problems::random;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

const N: usize = 256;
const FLIPS_BUDGET: u64 = 30_000;
const STRIDE: Duration = Duration::from_secs(1);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("abs-bench-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{tag}.ckpt"))
}

fn config(ckpt: Option<PathBuf>) -> AbsConfig {
    let mut cfg = AbsConfig::small();
    cfg.seed = 7;
    cfg.stop = StopCondition::flips(FLIPS_BUDGET);
    if let Some(path) = ckpt {
        cfg.checkpoint.out = Some(path);
        cfg.checkpoint.interval = Some(STRIDE);
    }
    cfg
}

/// One full session solve per measured iteration.
fn bench_solve(b: &mut Bencher<'_>, q: &qubo::Qubo, ckpt: Option<PathBuf>) {
    b.iter(|| {
        let cfg = config(ckpt.clone());
        let r = AbsSession::start(cfg, black_box(q))
            .expect("start")
            .run_to_completion()
            .expect("solve");
        black_box(r.total_flips)
    });
}

/// One checkpoint publish per measured iteration, on a live session:
/// quiesce every device, snapshot, encode, fsync, rotate, rename.
fn bench_write(b: &mut Bencher<'_>, session: &mut AbsSession) {
    b.iter(|| {
        session.checkpoint_now().expect("checkpoint");
        black_box(session.generation())
    });
}

fn bench_overhead(c: &mut Criterion) {
    let q = random::generate(N, 1);
    let mut g = c.benchmark_group("checkpoint_overhead");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    g.throughput(Throughput::Elements(FLIPS_BUDGET));
    g.bench_with_input(BenchmarkId::new("ckpt_off", N), &N, |b, _| {
        bench_solve(b, &q, None);
    });
    g.bench_with_input(BenchmarkId::new("ckpt_on_1s", N), &N, |b, _| {
        bench_solve(b, &q, Some(scratch("stride")));
    });

    // The publish path, measured on a warmed-up live session.
    let mut cfg = config(Some(scratch("write")));
    cfg.stop = StopCondition::timeout(Duration::from_secs(600));
    let mut session = AbsSession::start(cfg, &q).expect("start");
    for _ in 0..50 {
        assert_eq!(session.poll().expect("poll"), SessionStatus::Running);
    }
    g.bench_with_input(BenchmarkId::new("write", N), &N, |b, _| {
        bench_write(b, &mut session);
    });
    g.finish();
    drop(session.stop().expect("stop"));
}

/// Checkpointing must be write-only for the result: with and without a
/// stride armed, the same seed reaches the same flips budget with an
/// exact audited energy.
fn sanity_check() {
    let q = random::generate(N, 1);
    let off = AbsSession::start(config(None), &q)
        .expect("start")
        .run_to_completion()
        .expect("solve");
    let on = AbsSession::start(config(Some(scratch("sanity"))), &q)
        .expect("start")
        .run_to_completion()
        .expect("solve");
    assert_eq!(off.best_energy, q.energy(&off.best));
    assert_eq!(on.best_energy, q.energy(&on.best));
    assert!(off.total_flips >= FLIPS_BUDGET && on.total_flips >= FLIPS_BUDGET);
    println!(
        "sanity: both arms reached the flips budget (off {} / on {})",
        off.total_flips, on.total_flips
    );
}

fn measurement(c: &Criterion, name: &str) -> (f64, f64) {
    c.results
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, m)| (m.mean_ns, m.min_ns))
        .unwrap_or((f64::NAN, f64::NAN))
}

fn write_report(c: &Criterion) {
    // Min-vs-min, like the telemetry gate: both solve arms run the same
    // seeded workload, so the minima isolate the stride cost from
    // scheduler and frequency noise.
    const GATE: f64 = 1.02;
    let (off_mean, off_min) = measurement(c, &format!("checkpoint_overhead/ckpt_off/{N}"));
    let (on_mean, on_min) = measurement(c, &format!("checkpoint_overhead/ckpt_on_1s/{N}"));
    let (write_mean, write_min) = measurement(c, &format!("checkpoint_overhead/write/{N}"));
    let stride_ratio = on_min / off_min;
    let projected_ratio = 1.0 + write_min / 1e9;
    let pass = stride_ratio <= GATE && projected_ratio <= GATE;
    let json = format!(
        "{{\n  \"bench\": \"checkpoint_overhead\",\n  \
         \"metric\": \"ns per {FLIPS_BUDGET}-flip session solve (n = {N}) and ns per checkpoint publish\",\n  \
         \"solve\": {{\"ckpt_off_mean_ns\": {off_mean:.1}, \"ckpt_on_1s_mean_ns\": {on_mean:.1}, \
         \"ckpt_off_min_ns\": {off_min:.1}, \"ckpt_on_1s_min_ns\": {on_min:.1}, \
         \"stride_ratio_min\": {stride_ratio:.4}}},\n  \
         \"publish\": {{\"write_mean_ns\": {write_mean:.1}, \"write_min_ns\": {write_min:.1}, \
         \"projected_ratio_at_1s\": {projected_ratio:.4}}},\n  \
         \"gate\": {{\"max_overhead_ratio\": {GATE}, \"stride\": \"1s\", \"pass\": {pass}}}\n}}\n"
    );
    let path = std::env::var("BENCH_CHECKPOINT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checkpoint.json").into()
    });
    std::fs::write(&path, &json).expect("write BENCH_checkpoint.json");
    println!("wrote {path} (gate pass = {pass})");
}

fn main() {
    sanity_check();
    let mut c = Criterion::default();
    bench_overhead(&mut c);
    write_report(&c);
    let _ = std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("abs-bench-ckpt-{}", std::process::id())),
    );
}
