//! Cost of the instrumented device hot path: one `bulk_iteration`
//! (straight search to a target + fixed local search) with the telemetry
//! event ring enabled vs disabled.
//!
//! Telemetry records one event per straight walk through a pre-allocated
//! overwrite-oldest ring — no clocks, no allocation, one short critical
//! section per bulk iteration (thousands of flips). The gate asserts the
//! instrumented path stays within 2% of the uninstrumented one, so the
//! observability subsystem can never quietly tax the search rate the
//! paper's Table 2 reproduction depends on.
//!
//! After measuring, `main` writes the means and on/off ratios to
//! `BENCH_telemetry.json` at the repo root (override with
//! `BENCH_TELEMETRY_OUT`).

use criterion::{Bencher, BenchmarkId, Criterion, Throughput};
use qubo::{BitVec, Qubo};
use qubo_problems::random;
use qubo_search::FlipKernel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use vgpu::{BlockConfig, BlockRunner, GlobalMem, PolicyKind};

const LOCAL_STEPS: usize = 256;
const TARGET_CAP: usize = 4;
const RESULT_CAP: usize = 64;

fn cfg(n: usize) -> BlockConfig {
    BlockConfig {
        local_steps: LOCAL_STEPS,
        window: (n / 8).max(1),
        offset: 0,
        adaptive: None,
        policy: PolicyKind::Window,
        kernel: FlipKernel::detect(),
    }
}

/// One bulk iteration per measured iteration: push a target, walk to it,
/// local-search, store the record. `event_capacity = 0` disables the
/// ring without changing anything else, so both arms run the identical
/// flip trajectory (telemetry is write-only).
fn bench_iteration(b: &mut Bencher<'_>, q: &Qubo, event_capacity: usize) {
    let n = q.n();
    let mem = GlobalMem::with_capacities(TARGET_CAP, RESULT_CAP, event_capacity);
    let mut runner = BlockRunner::new(q, cfg(n));
    let mut rng = StdRng::seed_from_u64(11);
    let target = BitVec::random(n, &mut rng);
    b.iter(|| {
        mem.push_target(target.clone());
        let flips = runner.bulk_iteration(black_box(&mem));
        black_box(mem.drain_results());
        black_box(flips)
    });
}

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    for n in [1024usize, 4096] {
        let q = random::generate(n, 1);
        g.throughput(Throughput::Elements(LOCAL_STEPS as u64));
        g.bench_with_input(BenchmarkId::new("events_off", n), &n, |b, _| {
            bench_iteration(b, &q, 0);
        });
        g.bench_with_input(BenchmarkId::new("events_on", n), &n, |b, _| {
            bench_iteration(b, &q, vgpu::DEFAULT_EVENT_CAPACITY);
        });
    }
    g.finish();
}

/// Telemetry must be write-only: the instrumented and uninstrumented
/// runners must walk the identical trajectory.
fn sanity_check() {
    let n = 512;
    let q = random::generate(n, 1);
    let mut rng = StdRng::seed_from_u64(11);
    let targets: Vec<BitVec> = (0..20).map(|_| BitVec::random(n, &mut rng)).collect();

    let run = |event_capacity: usize| -> (u64, i64) {
        let mem = GlobalMem::with_capacities(TARGET_CAP, RESULT_CAP, event_capacity);
        let mut runner = BlockRunner::new(&q, cfg(n));
        let mut flips = 0u64;
        for t in &targets {
            mem.push_target(t.clone());
            flips += runner.bulk_iteration(&mem);
            let _ = mem.drain_results();
        }
        (flips, runner.tracker().best().1)
    };

    let (flips_off, best_off) = run(0);
    let (flips_on, best_on) = run(vgpu::DEFAULT_EVENT_CAPACITY);
    assert_eq!(flips_off, flips_on, "telemetry perturbed the flip count");
    assert_eq!(best_off, best_on, "telemetry perturbed the search result");
    println!("sanity: events on/off trajectories agree ({flips_on} flips, best {best_on})");
}

fn measurement(c: &Criterion, name: &str) -> (f64, f64) {
    c.results
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, m)| (m.mean_ns, m.min_ns))
        .unwrap_or((f64::NAN, f64::NAN))
}

fn write_report(c: &Criterion) {
    // Gate on the fastest observed batch of each arm: both arms run the
    // identical flip trajectory, so min-vs-min isolates the telemetry
    // cost from scheduler and frequency noise that the means absorb.
    const GATE: f64 = 1.02;
    let mut rows = Vec::new();
    let mut pass = true;
    for n in [1024usize, 4096] {
        let (off_mean, off_min) = measurement(c, &format!("telemetry_overhead/events_off/{n}"));
        let (on_mean, on_min) = measurement(c, &format!("telemetry_overhead/events_on/{n}"));
        let ratio = on_min / off_min;
        if ratio > GATE {
            pass = false;
        }
        rows.push(format!(
            "    {{\"n\": {n}, \"local_steps\": {LOCAL_STEPS}, \
             \"events_off_mean_ns\": {off_mean:.1}, \"events_on_mean_ns\": {on_mean:.1}, \
             \"events_off_min_ns\": {off_min:.1}, \"events_on_min_ns\": {on_min:.1}, \
             \"overhead_ratio_min\": {ratio:.4}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \
         \"metric\": \"mean ns per bulk iteration (straight walk + {LOCAL_STEPS}-flip local search)\",\n  \
         \"sizes\": [\n{rows}\n  ],\n  \
         \"gate\": {{\"max_overhead_ratio\": {GATE}, \"sizes\": [1024, 4096], \
         \"pass\": {pass}}}\n}}\n",
        rows = rows.join(",\n")
    );
    let path = std::env::var("BENCH_TELEMETRY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json").into()
    });
    std::fs::write(&path, &json).expect("write BENCH_telemetry.json");
    println!("wrote {path} (gate pass = {pass})");
}

fn main() {
    sanity_check();
    let mut c = Criterion::default();
    bench_overhead(&mut c);
    write_report(&c);
}
