//! The straight-search ablation: reaching a GA target by straight
//! search (Algorithm 5, keeps O(1) efficiency and searches on the way)
//! versus re-initializing the Δ state at the target from scratch
//! (what a naive GA × local-search combination would do).
//!
//! Both cost O(HD·n) here — the point the numbers make is that the
//! straight search's cost *is* useful search (HD·(n+1) evaluated
//! solutions), while re-initialization evaluates almost nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qubo::BitVec;
use qubo_problems::random;
use qubo_search::{straight_search, DeltaTracker};
use std::hint::black_box;
use std::time::Duration;

fn bench_straight_vs_reinit(c: &mut Criterion) {
    let mut g = c.benchmark_group("reach_target");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for n in [512usize, 2048] {
        let q = random::generate(n, 1);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(2);
        let target = BitVec::random(n, &mut rng);

        g.bench_with_input(BenchmarkId::new("straight_search", n), &n, |b, _| {
            b.iter(|| {
                let mut t = DeltaTracker::new(&q);
                let flips = straight_search(&mut t, &target);
                black_box((flips, t.best().1))
            });
        });

        g.bench_with_input(BenchmarkId::new("reinit_at_target", n), &n, |b, _| {
            b.iter(|| {
                let t = DeltaTracker::at(&q, &target);
                black_box(t.energy())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_straight_vs_reinit);
criterion_main!(benches);
