//! Dense O(n) vs sparse O(degree) fused flip+select across a density
//! sweep — the CPU-side trade-off the paper's GPU design sidesteps (a
//! GPU *wants* the dense row stream; a CPU core doesn't), and the
//! measurement behind `SPARSE_DENSITY_PER_MILLE`'s dispatch threshold.
//!
//! Both arms run the exact workload the vgpu block driver issues: a
//! fused `flip_select` under the window-min policy (ℓ = n/8). The dense
//! arm is the runtime-dispatched SIMD kernel (`DeltaTracker<i32>` +
//! [`FlipKernel::detect`]); the sparse arm is the CSR
//! `SparseDeltaTracker` with its bucketed window selection.
//!
//! After measuring, `main` writes the means and speedups to
//! `BENCH_sparse.json` at the repo root (override with
//! `BENCH_SPARSE_OUT`). Three gates at n = 4096:
//!
//! * sparse ≥ 10× the dense SIMD arm at 0.1% density (deg ≈ 4),
//! * sparse ≥ 4× the dense SIMD arm at 0.5% density (deg ≈ 20, the
//!   G-set degree regime), and
//! * the dense SIMD arm at 100% density within 1.02× of the committed
//!   `BENCH_flip.json` `simd` cell (same instance, same schedule) — the
//!   storage abstraction must not tax the dense path.
//!
//! The 0.5% gate is 4×, not the 10× a per-element count suggests: a
//! dense flip streams the row at ~0.14 ns/element through SIMD, while
//! a CSR flip pays ~2 ns per *random* Δ access — on this class of CPU
//! the measured floor of the raw Eq. (16) gather loop alone (no
//! summaries, no best records) already exceeds a tenth of the dense
//! arm at deg ≈ 20. The O(deg)/O(n) asymptotics win 10× only once
//! deg ≈ 4 (0.1%); the gates pin both points so neither regresses.

use criterion::{Bencher, BenchmarkId, Criterion, Throughput};
use qubo::{CouplingMatrix, Qubo, SparseQubo};
use qubo_problems::random;
use qubo_search::{
    DeltaTracker, FlipKernel, SearchTracker, SelectionPolicy, SparseDeltaTracker, WindowMinPolicy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

/// Sweep points in per-mille of off-diagonal couplers present:
/// 0.1%, 0.5%, 2%, 10%, 50%, 100%.
const SWEEP: [u64; 6] = [1, 5, 20, 100, 500, 1000];

const N: usize = 4096;

/// Inverse of the upper-triangle enumeration `offset(i) + (j - i - 1)`
/// with `offset(i) = i(2n - i - 1)/2`: binary-search the row, then the
/// column falls out.
fn unpair(p: usize, n: usize) -> (usize, usize) {
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid * (2 * n - mid - 1) / 2 <= p {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    (lo, lo + 1 + (p - lo * (2 * n - lo - 1) / 2))
}

/// A seeded instance with an *exact* coupler count: `per_mille`/1000 of
/// the n(n−1)/2 off-diagonal slots, sampled without replacement, plus a
/// fully populated diagonal. At 100% the flip_throughput instance is
/// reused verbatim so the dense-regression gate compares identical
/// workloads.
fn sweep_instance(n: usize, per_mille: u64, seed: u64) -> Qubo {
    if per_mille == 1000 {
        return random::generate(n, 1);
    }
    let max = n * (n - 1) / 2;
    let m = usize::try_from(max as u64 * per_mille / 1000).expect("fits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs: Vec<u32> = (0..u32::try_from(max).expect("fits")).collect();
    // Partial Fisher–Yates: after m swaps the prefix is an exact
    // m-element sample of the pair space without replacement.
    for t in 0..m {
        let r = rng.gen_range(t..max);
        pairs.swap(t, r);
    }
    let mut q = Qubo::zero(n).expect("size");
    for &p in &pairs[..m] {
        let (i, j) = unpair(p as usize, n);
        let w = loop {
            let w: i16 = rng.gen_range(-64..=64);
            if w != 0 {
                break w;
            }
        };
        q.set(i, j, w);
    }
    for i in 0..n {
        q.set(i, i, rng.gen_range(-64..=64));
    }
    q
}

/// One fused flip+select per iteration under the shared window-min
/// schedule — the identical workload for both storage arms.
fn bench_tracker<T: SearchTracker>(b: &mut Bencher<'_>, t: &mut T, window: usize) {
    let n = t.n();
    let mut p = WindowMinPolicy::new(window);
    let (a, l) = SelectionPolicy::<T::Acc>::next_window(&mut p, n).expect("window policy");
    let mut k = t.select_in_window(a, l);
    b.iter(|| {
        let (a, l) = SelectionPolicy::<T::Acc>::next_window(&mut p, n).expect("window policy");
        k = t.flip_select(black_box(k), (a, l));
    });
}

/// Instance metadata carried from the per-density build to the report.
struct Cell {
    pm: u64,
    couplers: usize,
    density_per_mille: u64,
}

fn bench_sweep(c: &mut Criterion) -> Vec<Cell> {
    let mut cells = Vec::new();
    let mut g = c.benchmark_group("sparse_sweep");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let window = N / 8;
    for &pm in &SWEEP {
        // One instance at a time, dropped before the next density
        // point: each 32 MB dense matrix then lands in its own fresh
        // mapping, the same hugepage-friendly layout the committed
        // flip_throughput baseline measures against. (Keeping every
        // sweep instance live fragments the heap and taxed the dense
        // stream >15% in TLB misses alone.)
        let q = sweep_instance(N, pm, 0xABB5 + pm);
        let s = SparseQubo::from_dense(&q);
        // Two measurement passes per cell, separated by the other
        // arm's warmup + measurement: the report gates on the per-cell
        // minimum of the pass means, which rejects transient neighbour
        // load on shared hosts.
        for _pass in 0..2 {
            g.throughput(Throughput::Elements(1));
            g.bench_with_input(BenchmarkId::new("dense_simd", pm), &pm, |b, _| {
                let mut t = DeltaTracker::<i32>::with_kernel(&q, FlipKernel::detect());
                bench_tracker(b, &mut t, window);
            });
            g.bench_with_input(BenchmarkId::new("sparse", pm), &pm, |b, _| {
                let mut t = SparseDeltaTracker::new(&s);
                bench_tracker(b, &mut t, window);
            });
        }
        cells.push(Cell {
            pm,
            couplers: s.nnz() / 2,
            density_per_mille: q.density_per_mille(),
        });
    }
    g.finish();
    cells
}

/// The two benched arms must walk the same trajectory — compare end
/// states after a few thousand fused steps before trusting the timings.
fn sanity_check(q: &Qubo, s: &SparseQubo) {
    let window = q.n() / 8;
    let steps = 5_000usize;
    let mut dense = DeltaTracker::<i32>::with_kernel(q, FlipKernel::detect());
    let mut sparse = SparseDeltaTracker::new(s);
    let mut pd = WindowMinPolicy::new(window);
    let mut ps = WindowMinPolicy::new(window);
    let (a, l) = SelectionPolicy::<i32>::next_window(&mut pd, q.n()).expect("window");
    let mut kd = dense.select_in_window(a, l);
    let (a, l) = SelectionPolicy::<i64>::next_window(&mut ps, q.n()).expect("window");
    let mut ks = sparse.select_in_window(a, l);
    assert_eq!(kd, ks, "initial selection diverged");
    for _ in 0..steps {
        let (a, l) = SelectionPolicy::<i32>::next_window(&mut pd, q.n()).expect("window");
        kd = dense.flip_select(kd, (a, l));
        let (a, l) = SelectionPolicy::<i64>::next_window(&mut ps, q.n()).expect("window");
        ks = sparse.flip_select(ks, (a, l));
        assert_eq!(kd, ks, "selection diverged");
    }
    assert_eq!(dense.energy(), sparse.energy(), "energy diverged");
    assert_eq!(dense.best().1, sparse.best().1, "best energy diverged");
    assert_eq!(dense.x(), sparse.x(), "solution diverged");
    sparse.verify();
    println!(
        "sanity: dense simd({}) and sparse CSR agree after {steps} fused steps (E = {})",
        FlipKernel::detect().name(),
        dense.energy()
    );
}

fn mean_ns(c: &Criterion, name: &str) -> f64 {
    // Minimum over the measurement passes (NaN when the cell is absent,
    // which fails every gate comparison).
    c.results
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, m)| m.mean_ns)
        .fold(f64::NAN, f64::min)
}

/// The committed flip_throughput SIMD cell at n = 4096 — the baseline
/// the dense-regression gate compares against.
fn committed_simd_baseline() -> f64 {
    let path = std::env::var("BENCH_FLIP_BASELINE")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flip.json").into());
    let text = std::fs::read_to_string(&path).expect("read BENCH_flip.json");
    let v: serde_json::Value = serde_json::from_str(&text).expect("parse BENCH_flip.json");
    v["sizes"]
        .as_array()
        .expect("sizes array")
        .iter()
        .find(|row| row["n"].as_u64() == Some(N as u64))
        .and_then(|row| row["simd_ns"].as_f64())
        .expect("n = 4096 simd_ns cell")
}

fn write_report(c: &Criterion, cells: &[Cell]) {
    const SPARSE_GATE_1PM: f64 = 10.0; // sparse ≥ 10× dense SIMD at 0.1%
    const SPARSE_GATE_5PM: f64 = 4.0; // sparse ≥ 4× dense SIMD at 0.5%
    const DENSE_GATE: f64 = 1.02; // dense ≤ 1.02× the committed cell
    let kernel = FlipKernel::detect().name();
    let baseline = committed_simd_baseline();
    let mut rows = Vec::new();
    let mut pass = true;
    let mut crossover = 0u64;
    let mut dense_full = f64::NAN;
    for cell in cells {
        let pm = cell.pm;
        let dense = mean_ns(c, &format!("sparse_sweep/dense_simd/{pm}"));
        let sparse = mean_ns(c, &format!("sparse_sweep/sparse/{pm}"));
        let speedup = dense / sparse;
        if speedup >= 1.0 {
            crossover = crossover.max(pm);
        }
        // NaN (an absent cell) must fail the gate, hence the explicit
        // is_nan arms instead of negated comparisons.
        if pm == 1 && (speedup.is_nan() || speedup < SPARSE_GATE_1PM) {
            pass = false;
        }
        if pm == 5 && (speedup.is_nan() || speedup < SPARSE_GATE_5PM) {
            pass = false;
        }
        if pm == 1000 {
            dense_full = dense;
            if dense.is_nan() || dense > DENSE_GATE * baseline {
                pass = false;
            }
        }
        rows.push(format!(
            "    {{\"per_mille\": {pm}, \"couplers\": {cc}, \"density_per_mille\": {dpm}, \
             \"dense_simd_ns\": {dense:.1}, \"sparse_ns\": {sparse:.1}, \
             \"speedup_sparse\": {speedup:.3}}}",
            cc = cell.couplers,
            dpm = cell.density_per_mille
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"sparse_vs_dense\",\n  \"n\": {N},\n  \"policy\": \"window(n/8)\",\n  \
         \"metric\": \"mean ns per fused flip+select\",\n  \
         \"simd_kernel\": \"{kernel}\",\n  \
         \"densities\": [\n{rows}\n  ],\n  \
         \"crossover_per_mille\": {crossover},\n  \
         \"gate\": {{\"min_speedup_sparse_at_1pm\": {SPARSE_GATE_1PM}, \
         \"min_speedup_sparse_at_5pm\": {SPARSE_GATE_5PM}, \
         \"max_dense_regression\": {DENSE_GATE}, \
         \"dense_baseline_simd_ns\": {baseline:.1}, \
         \"dense_simd_ns_at_full\": {dense_full:.1}, \
         \"pass\": {pass}}}\n}}\n",
        rows = rows.join(",\n")
    );
    let path = std::env::var("BENCH_SPARSE_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sparse.json").into());
    std::fs::write(&path, &json).expect("write BENCH_sparse.json");
    println!("wrote {path} (gate pass = {pass}, crossover \u{2264} {crossover}\u{2030})");
}

fn main() {
    // Lock-step the arms on the two sparsest (gated) instances before
    // trusting any timing; the instances are rebuilt for the sweep so
    // the benched allocations stay fresh (see `bench_sweep`).
    for pm in [1u64, 5] {
        let q = sweep_instance(N, pm, 0xABB5 + pm);
        let s = SparseQubo::from_dense(&q);
        sanity_check(&q, &s);
    }
    let mut c = Criterion::default();
    let cells = bench_sweep(&mut c);
    write_report(&c, &cells);
}
