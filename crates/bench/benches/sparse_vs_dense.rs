//! Dense O(n) vs sparse O(degree) flips on a G-set-like instance — the
//! CPU-side trade-off the paper's GPU design sidesteps (a GPU *wants*
//! the dense row stream; a CPU core doesn't).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qubo::sparse::SparseQubo;
use qubo_problems::{gset, maxcut};
use qubo_search::{DeltaTracker, SparseDeltaTracker};
use std::hint::black_box;
use std::time::Duration;

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("flip_on_gset_like");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // A G1-shaped instance: 800 vertices, 19 176 unit edges → average
    // degree ≈ 48 ≪ n.
    let graph = gset::generate(800, 19_176, gset::GsetFamily::RandomUnit, 7);
    let q = maxcut::to_qubo(&graph).expect("encodes");
    let s = SparseQubo::from_dense(&q);
    let n = q.n();

    g.throughput(Throughput::Elements(1));
    g.bench_with_input(BenchmarkId::new("dense_On", n), &n, |b, _| {
        let mut t = DeltaTracker::new(&q);
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 211) % n; // co-prime stride
            t.flip(black_box(k));
        });
    });

    g.bench_with_input(BenchmarkId::new("sparse_Odeg", n), &n, |b, _| {
        let mut t = SparseDeltaTracker::new(&s);
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 211) % n;
            t.flip(black_box(k));
        });
    });
    g.finish();
}

criterion_group!(benches, bench_sparse_vs_dense);
criterion_main!(benches);
