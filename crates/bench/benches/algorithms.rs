//! Wall-clock cost per *evaluated solution* of Algorithms 1–4
//! (the benchmark behind the Lemma 1–3 / Theorem 1 story).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qubo::BitVec;
use qubo_problems::random;
use qubo_search::naive::{algorithm1, algorithm2, algorithm3, Acceptor};
use qubo_search::{local_search, DeltaTracker, WindowMinPolicy};
use std::hint::black_box;
use std::time::Duration;

fn bench_algorithms(c: &mut Criterion) {
    let n = 256usize;
    let q = random::generate(n, 1);
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(2);
    let start = BitVec::random(n, &mut rng);

    let mut g = c.benchmark_group("per_evaluated_solution");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    // Algorithm 1 evaluates `steps + 1` solutions.
    let steps = 16usize;
    g.throughput(Throughput::Elements(steps as u64 + 1));
    g.bench_with_input(BenchmarkId::new("alg1_naive", n), &n, |b, _| {
        b.iter(|| black_box(algorithm1(&q, &start, steps, Acceptor::Greedy, 3)));
    });

    let steps = 512usize;
    g.throughput(Throughput::Elements(steps as u64 + 1));
    g.bench_with_input(BenchmarkId::new("alg2_one_row", n), &n, |b, _| {
        b.iter(|| black_box(algorithm2(&q, &start, steps, Acceptor::Greedy, 3)));
    });

    // Algorithm 3 evaluates 1 + |ones| + steps solutions; |ones| ≈ n/2.
    g.throughput(Throughput::Elements(1 + (n as u64) / 2 + steps as u64));
    g.bench_with_input(BenchmarkId::new("alg3_delta_vector", n), &n, |b, _| {
        b.iter(|| black_box(algorithm3(&q, &start, steps, Acceptor::Greedy, 3)));
    });

    // Algorithm 4 (ABS): steps flips evaluate (steps + 1)(n + 1) solutions.
    g.throughput(Throughput::Elements((steps as u64 + 1) * (n as u64 + 1)));
    g.bench_with_input(BenchmarkId::new("alg4_forced_flip", n), &n, |b, _| {
        b.iter(|| {
            let mut t = DeltaTracker::new(&q);
            let mut p = WindowMinPolicy::new(n / 8);
            local_search(&mut t, &mut p, steps);
            black_box(t.best().1)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
