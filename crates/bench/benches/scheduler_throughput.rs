//! Throughput of the multi-tenant device-pool scheduler and the
//! content-hash warm-start cache (DESIGN.md §13).
//!
//! Three gates, written to `BENCH_sched.json`:
//! * `concurrent_speedup` — wall-clock for K = 4 time-budgeted jobs
//!   leased concurrently from one [`vgpu::DevicePool`] vs the same four
//!   run back-to-back, min-vs-min, must be ≥ 1.5×. The jobs are
//!   device-bound (the paper's regime: the host mostly waits), so the
//!   win comes from the pool genuinely overlapping sessions — a
//!   scheduler that serialized leases would score ≈ 1.0 and fail.
//! * `warm_flip_ratio` — flips a cache-seeded session needs to get back
//!   to the cold run's best energy over the flips the cold run needed to
//!   find it, must be ≤ 0.5 (it is near zero: the seed ships as the
//!   first evaluated target).
//! * `single_job_ratio` — a lone job run through acquire → solve →
//!   release vs the identical direct session, min-vs-min, must be
//!   ≤ 1.02× (leasing must not tax an uncontended job).
//!
//! After measuring, `main` writes `BENCH_sched.json` at the repo root
//! (override with `BENCH_SCHED_OUT`).

use abs::{AbsConfig, AbsSession, ProblemCache, SolveResult, StopCondition};
use criterion::{Bencher, BenchmarkId, Criterion, Throughput};
use qubo_problems::random;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use vgpu::{DevicePool, LeaseRequest, PoolConfig, Priority};

/// Problem size for every arm.
const N: usize = 128;
/// Jobs in the concurrency arms.
const K: usize = 4;
/// Wall-clock budget of each time-budgeted job (concurrency arms).
const JOB_BUDGET: Duration = Duration::from_millis(50);
/// Flip budget of the compute-bound arms (single-job and warm gates).
const FLIPS_BUDGET: u64 = 20_000;

/// The pool every arm leases from: capacity for exactly K default jobs.
fn pool() -> Arc<DevicePool> {
    Arc::new(DevicePool::new(PoolConfig {
        num_devices: K,
        blocks_per_device: 8,
        max_lease_blocks: K * 8,
        min_lease_blocks: 1,
    }))
}

fn job_config(seed: u64, stop: StopCondition) -> AbsConfig {
    let mut cfg = AbsConfig::small();
    cfg.seed = seed;
    cfg.stop = stop;
    cfg
}

/// One job driven the way the server runner drives it: lease the
/// config's geometry, confine the session to the grant, release.
fn leased_solve(pool: &Arc<DevicePool>, q: &qubo::Qubo, mut cfg: AbsConfig) -> SolveResult {
    let lease = pool.acquire_lease(&LeaseRequest {
        tenant: "bench",
        priority: Priority::Batch,
        devices: cfg.machine.num_devices,
        blocks_per_device: cfg.machine.device.blocks_override.unwrap_or(1),
    });
    let geometry = lease.geometry();
    cfg.apply_lease(geometry.devices, geometry.blocks_per_device);
    let result = AbsSession::start(cfg, q)
        .expect("start")
        .run_to_completion()
        .expect("solve");
    pool.release_lease(lease);
    result
}

/// K time-budgeted jobs, one after another on a single worker.
fn bench_sequential(b: &mut Bencher<'_>, pool: &Arc<DevicePool>, q: &qubo::Qubo) {
    b.iter(|| {
        let mut flips = 0;
        for seed in 0..K as u64 {
            let cfg = job_config(11 + seed, StopCondition::timeout(JOB_BUDGET));
            flips += leased_solve(pool, black_box(q), cfg).total_flips;
        }
        black_box(flips)
    });
}

/// The same K jobs on K workers, all leasing from the shared pool.
fn bench_concurrent(b: &mut Bencher<'_>, pool: &Arc<DevicePool>, q: &Arc<qubo::Qubo>) {
    b.iter(|| {
        let handles: Vec<_> = (0..K as u64)
            .map(|seed| {
                let pool = Arc::clone(pool);
                let q = Arc::clone(q);
                std::thread::spawn(move || {
                    let cfg = job_config(11 + seed, StopCondition::timeout(JOB_BUDGET));
                    leased_solve(&pool, &q, cfg).total_flips
                })
            })
            .collect();
        let flips: u64 = handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .sum::<u64>();
        black_box(flips)
    });
}

fn bench_single(b: &mut Bencher<'_>, q: &qubo::Qubo, pool: Option<&Arc<DevicePool>>) {
    b.iter(|| {
        let cfg = job_config(7, StopCondition::flips(FLIPS_BUDGET));
        let r = match pool {
            Some(pool) => leased_solve(pool, black_box(q), cfg),
            None => AbsSession::start(cfg, black_box(q))
                .expect("start")
                .run_to_completion()
                .expect("solve"),
        };
        black_box(r.total_flips)
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let q = Arc::new(random::generate(N, 1));
    let pool = pool();
    let mut g = c.benchmark_group("scheduler_throughput");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    g.throughput(Throughput::Elements(K as u64));
    g.bench_with_input(BenchmarkId::new("seq4", N), &N, |b, _| {
        bench_sequential(b, &pool, &q);
    });
    g.bench_with_input(BenchmarkId::new("conc4", N), &N, |b, _| {
        bench_concurrent(b, &pool, &q);
    });
    g.throughput(Throughput::Elements(FLIPS_BUDGET));
    g.bench_with_input(BenchmarkId::new("single_direct", N), &N, |b, _| {
        bench_single(b, &q, None);
    });
    g.bench_with_input(BenchmarkId::new("single_pooled", N), &N, |b, _| {
        bench_single(b, &q, Some(&pool));
    });
    g.finish();

    let stats = pool.stats();
    assert_eq!(
        stats.free_blocks, stats.capacity_blocks,
        "every bench lease must have been released"
    );
    assert_eq!(stats.granted, stats.released, "no lease may leak");
}

/// Exploration budget for the warm gate's cold run. Deep on purpose:
/// flip counts read at host polls overshoot by whatever the devices
/// manage during one scheduler timeslice (~50–100 k flips on a busy
/// single-core box), so the cold baseline must dwarf that noise for the
/// ratio to measure search effort rather than OS scheduling.
const WARM_EXPLORE_FLIPS: u64 = 600_000;
/// Problem size for the warm gate (harder than the throughput arms so
/// the cold best sits deep in the run).
const N_WARM: usize = 1024;

/// The warm-start gate, measured outside criterion because it compares
/// deterministic flip *counts*, not wall time: a cold run explores to a
/// flips budget and prices its own best via the history trace's exact
/// flip coordinate; a cache-seeded run must re-reach that energy in
/// ≤ half the flips.
fn warm_gate() -> (u64, u64, f64) {
    let problem = Arc::new(random::generate(N_WARM, 3));
    let hash = problem.content_hash();
    let cache = ProblemCache::new(4);
    cache.admit(hash, &problem);

    // The adaptive window ladder keeps the cold run improving deep into
    // its budget, so its best is genuinely expensive to find.
    let warm_job = |seed: u64, stop: StopCondition| {
        let mut cfg = job_config(seed, stop);
        cfg.machine.device.adaptive = Some(vgpu::AdaptiveConfig { patience: 40 });
        cfg
    };
    let cold = AbsSession::start(
        warm_job(7, StopCondition::flips(WARM_EXPLORE_FLIPS)),
        &problem,
    )
    .expect("start")
    .run_to_completion()
    .expect("cold solve");
    cache.record_best(hash, &problem, cold.best_energy, &cold.best);
    // The last history point carries the machine-wide flip count at the
    // moment the best arrived — the exact, scheduling-independent price
    // the cold search paid for it.
    let cold_flips = cold.history.last().map_or(1, |h| h.flips).max(1);

    let hit = cache.lookup(&hash).expect("recorded best must hit");
    let mut warm_cfg = warm_job(
        9,
        StopCondition::flips(WARM_EXPLORE_FLIPS).with_target(cold.best_energy),
    );
    warm_cfg.apply_warm_seeds(hit.seeds);
    let warm = AbsSession::start(warm_cfg, &problem)
        .expect("start")
        .run_to_completion()
        .expect("warm solve");
    assert!(
        warm.reached_target,
        "a cache-seeded run starts at the cold best, so the target is immediate"
    );
    assert!(
        warm.best_energy <= cold.best_energy,
        "warm start may never end worse than its seed"
    );
    // `total_flips` is read at the stopping poll, so it over-counts by
    // up to one scheduler timeslice of device work — an upper bound,
    // i.e. the conservative side of a ≤ gate.
    let warm_flips = warm.total_flips.max(1);
    let ratio = warm_flips as f64 / cold_flips as f64;
    (cold_flips, warm_flips, ratio)
}

/// A leased uncontended job must be the direct job: same clamp-identity
/// geometry, same seed, bit-for-bit the same best.
fn sanity_check() {
    let q = random::generate(N, 1);
    let pool = pool();
    let cfg = job_config(7, StopCondition::flips(2_000));
    let direct = AbsSession::start(cfg.clone(), &q)
        .expect("start")
        .run_to_completion()
        .expect("direct");
    let pooled = leased_solve(&pool, &q, cfg);
    assert_eq!(direct.best_energy, pooled.best_energy);
    assert_eq!(direct.best, pooled.best, "leasing must not reshape the job");
    assert_eq!(direct.best_energy, q.energy(&direct.best));
    println!(
        "sanity: pooled session is bit-for-bit direct (energy {})",
        direct.best_energy
    );
}

fn measurement(c: &Criterion, name: &str) -> (f64, f64) {
    c.results
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, m)| (m.mean_ns, m.min_ns))
        .unwrap_or((f64::NAN, f64::NAN))
}

fn write_report(c: &Criterion, cold_flips: u64, warm_flips: u64, warm_ratio: f64) {
    const MIN_SPEEDUP: f64 = 1.5;
    const MAX_WARM_RATIO: f64 = 0.5;
    const MAX_SINGLE_RATIO: f64 = 1.02;
    let (seq_mean, seq_min) = measurement(c, &format!("scheduler_throughput/seq4/{N}"));
    let (conc_mean, conc_min) = measurement(c, &format!("scheduler_throughput/conc4/{N}"));
    let (direct_mean, direct_min) =
        measurement(c, &format!("scheduler_throughput/single_direct/{N}"));
    let (pooled_mean, pooled_min) =
        measurement(c, &format!("scheduler_throughput/single_pooled/{N}"));
    let concurrent_speedup = seq_min / conc_min;
    let single_job_ratio = pooled_min / direct_min;
    let pass = concurrent_speedup >= MIN_SPEEDUP
        && warm_ratio <= MAX_WARM_RATIO
        && single_job_ratio <= MAX_SINGLE_RATIO;
    let json = format!(
        "{{\n  \"bench\": \"scheduler_throughput\",\n  \
         \"metric\": \"wall-clock per {K}-job batch (n = {N}, {}-ms jobs) and flips to re-reach the cold best\",\n  \
         \"concurrency\": {{\"seq4_mean_ns\": {seq_mean:.1}, \"conc4_mean_ns\": {conc_mean:.1}, \
         \"seq4_min_ns\": {seq_min:.1}, \"conc4_min_ns\": {conc_min:.1}, \
         \"concurrent_speedup\": {concurrent_speedup:.4}}},\n  \
         \"warm_start\": {{\"cold_flips_to_best\": {cold_flips}, \"warm_flips_to_best\": {warm_flips}, \
         \"warm_flip_ratio\": {warm_ratio:.4}}},\n  \
         \"single_job\": {{\"direct_mean_ns\": {direct_mean:.1}, \"pooled_mean_ns\": {pooled_mean:.1}, \
         \"direct_min_ns\": {direct_min:.1}, \"pooled_min_ns\": {pooled_min:.1}, \
         \"single_job_ratio\": {single_job_ratio:.4}}},\n  \
         \"gate\": {{\"min_concurrent_speedup\": {MIN_SPEEDUP}, \"max_warm_flip_ratio\": {MAX_WARM_RATIO}, \
         \"max_single_job_ratio\": {MAX_SINGLE_RATIO}, \"pass\": {pass}}}\n}}\n",
        JOB_BUDGET.as_millis()
    );
    let path = std::env::var("BENCH_SCHED_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json").into());
    std::fs::write(&path, &json).expect("write BENCH_sched.json");
    println!("wrote {path} (gate pass = {pass})");
}

fn main() {
    sanity_check();
    let (cold_flips, warm_flips, warm_ratio) = warm_gate();
    println!("warm start: {warm_flips} flips vs {cold_flips} cold (ratio {warm_ratio:.4})");
    let mut c = Criterion::default();
    bench_scheduler(&mut c);
    write_report(&c, cold_flips, warm_flips, warm_ratio);
}
