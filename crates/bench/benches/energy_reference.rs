//! The cost of knowing an energy: O(n²) from-scratch evaluation
//! (Eq. (1)) vs O(n) incremental arrival by straight search — the gap
//! the whole paper is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qubo::BitVec;
use qubo_problems::random;
use qubo_search::{straight_search, DeltaTracker};
use std::hint::black_box;
use std::time::Duration;

fn bench_energy_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("energy_of_target");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [512usize, 2048] {
        let q = random::generate(n, 1);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(2);
        let target = BitVec::random(n, &mut rng);

        // From scratch: the O(n²) double sum every naive GA × local
        // search restart would pay — and it prices exactly ONE solution.
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("from_scratch_On2", n), &n, |b, _| {
            b.iter(|| black_box(q.energy(&target)));
        });

        // Incremental: walk there by straight search (O(HD·n)), getting
        // E *and* the full Δ vector *and* HD·(n+1) evaluated solutions —
        // compare elem/s, not raw time: this is Theorem 1 in the flesh.
        let hd = target.count_ones() as u64;
        g.throughput(Throughput::Elements(hd * (n as u64 + 1)));
        g.bench_with_input(BenchmarkId::new("straight_search_OHDn", n), &n, |b, _| {
            b.iter(|| {
                let mut t = DeltaTracker::new(&q);
                straight_search(&mut t, &target);
                black_box(t.energy())
            });
        });

        // Single delta lookup once tracked: O(1).
        let tracker = DeltaTracker::at(&q, &target);
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("tracked_delta_O1", n), &n, |b, _| {
            let mut k = 0usize;
            b.iter(|| {
                k = (k + 1) % n;
                black_box(tracker.energy() + tracker.deltas()[k])
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_energy_paths);
criterion_main!(benches);
