//! The hot kernel: one forced flip = one row scan updating all Δ plus
//! best tracking. Throughput here, times (n + 1), is the single-block
//! CPU search rate (the per-block analogue of Table 2).
//!
//! Four kernels are compared on identical walks (window policy, ℓ =
//! n/8):
//!
//! * `seed_i64` — the pre-fusion kernel: Eq. (16) update loop, then a
//!   *separate* full-array min pass for best tracking, then a windowed
//!   select with a per-element `% n`.
//! * `fused_i64` — the fused single-pass kernel at the original width.
//! * `fused_i32` — the fused kernel with narrow accumulators, pinned to
//!   the scalar arm (`FlipKernel::Scalar`) so the row keeps measuring
//!   the pre-SIMD baseline.
//! * `simd` — the runtime-dispatched lane-wise kernel
//!   ([`FlipKernel::detect`]: the AVX-512 mask-register arm where the
//!   CPU supports it, else the portable lane arm on builds that already
//!   target AVX2, else the AVX2 intrinsic arm, else portable lanes).
//!
//! After measuring, `main` writes the means and speedups to
//! `BENCH_flip.json` at the repo root (override with `BENCH_FLIP_OUT`).
//! The perf gates at n ∈ {1024, 4096}: fused_i32 ≥ 1.3× seed, and
//! simd ≥ 1.4× fused_i32.

use criterion::{Bencher, BenchmarkId, Criterion, Throughput};
use qubo::{BitVec, Qubo};
use qubo_problems::random;
use qubo_search::{DeltaAcc, DeltaTracker, FlipKernel, SelectionPolicy, WindowMinPolicy};
use std::hint::black_box;
use std::time::Duration;

/// Faithful reproduction of the pre-fusion flip path: the Δ update, the
/// best-neighbour min, and the window selection each traverse the Δ
/// vector (or window) separately, and the window scan indexes with a
/// per-element `% n`. Kept inline here as the benchmark baseline.
struct SeedKernel<'a> {
    qubo: &'a Qubo,
    x: BitVec,
    sign: Vec<i8>,
    e: i64,
    d: Vec<i64>,
    best: BitVec,
    best_e: i64,
    offset: usize,
    window: usize,
}

impl<'a> SeedKernel<'a> {
    fn new(qubo: &'a Qubo, window: usize) -> Self {
        let n = qubo.n();
        let d: Vec<i64> = (0..n).map(|i| i64::from(qubo.diag(i))).collect();
        let x = BitVec::zeros(n);
        let mut k = Self {
            qubo,
            best: x.clone(),
            x,
            sign: vec![1i8; n],
            e: 0,
            d,
            best_e: 0,
            offset: 0,
            window: window.max(1),
        };
        if let Some((i, &min_d)) = k.d.iter().enumerate().min_by_key(|&(_, &v)| v) {
            if min_d < 0 {
                k.best.flip(i);
                k.best_e = min_d;
            }
        }
        k
    }

    fn select(&mut self) -> usize {
        let n = self.d.len();
        let l = self.window.min(n);
        let a = self.offset % n;
        let mut best_i = a;
        let mut best_d = self.d[a];
        for off in 1..l {
            let i = (a + off) % n;
            if self.d[i] < best_d {
                best_d = self.d[i];
                best_i = i;
            }
        }
        self.offset = (a + l) % n;
        best_i
    }

    fn flip(&mut self, k: usize) {
        let row = self.qubo.row(k);
        let d_k_old = self.d[k];
        let e_new = self.e + d_k_old;
        let two_pk = i32::from(self.sign[k]) * 2;
        for ((di, &w), &s) in self.d.iter_mut().zip(row).zip(&self.sign) {
            *di += i64::from(i32::from(w) * i32::from(s) * two_pk);
        }
        self.d[k] = -d_k_old;
        self.sign[k] = -self.sign[k];
        self.x.flip(k);
        self.e = e_new;
        if e_new < self.best_e {
            self.best.copy_from(&self.x);
            self.best_e = e_new;
        }
        let min_d = self.d.iter().copied().min().expect("non-empty");
        if e_new + min_d < self.best_e {
            let i = self.d.iter().position(|&v| v == min_d).expect("exists");
            self.best.copy_from(&self.x);
            self.best.flip(i);
            self.best_e = e_new + min_d;
        }
    }
}

fn bench_seed(b: &mut Bencher<'_>, q: &Qubo, window: usize) {
    let mut kern = SeedKernel::new(q, window);
    b.iter(|| {
        let k = kern.select();
        kern.flip(black_box(k));
    });
}

fn bench_fused<A: DeltaAcc>(b: &mut Bencher<'_>, q: &Qubo, window: usize, kernel: FlipKernel) {
    let n = q.n();
    let mut t = DeltaTracker::<A>::with_kernel(q, kernel);
    let mut p = WindowMinPolicy::new(window);
    let (a, l) = SelectionPolicy::<A>::next_window(&mut p, n).expect("window policy");
    let mut k = t.select_in_window(a, l);
    b.iter(|| {
        let (a, l) = SelectionPolicy::<A>::next_window(&mut p, n).expect("window policy");
        k = t.flip_select(black_box(k), (a, l));
    });
}

fn bench_flip(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracker_flip");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    // Two independent measurement passes per cell: the report gates on
    // the per-cell minimum of the pass means, which rejects transient
    // neighbour load on shared hosts (a burst that lands mid-run would
    // otherwise skew whichever kernel it happened to hit).
    for pass in 0..2 {
        if pass > 0 {
            println!("── group: tracker_flip (pass {})", pass + 1);
        }
        for n in [256usize, 1024, 4096] {
            let q = random::generate(n, 1);
            let window = n / 8;
            g.throughput(Throughput::Elements((n as u64) + 1)); // solutions evaluated per flip
            g.bench_with_input(BenchmarkId::new("seed_i64", n), &n, |b, _| {
                bench_seed(b, &q, window);
            });
            g.bench_with_input(BenchmarkId::new("fused_i64", n), &n, |b, _| {
                bench_fused::<i64>(b, &q, window, FlipKernel::Scalar);
            });
            g.bench_with_input(BenchmarkId::new("fused_i32", n), &n, |b, _| {
                bench_fused::<i32>(b, &q, window, FlipKernel::Scalar);
            });
            g.bench_with_input(BenchmarkId::new("simd", n), &n, |b, _| {
                bench_fused::<i32>(b, &q, window, FlipKernel::detect());
            });
        }
    }
    g.finish();
}

fn bench_straight_step(c: &mut Criterion) {
    // One straight-search selection + flip at a large Hamming distance.
    let mut g = c.benchmark_group("straight_step");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [1024usize, 4096] {
        let q = random::generate(n, 2);
        g.throughput(Throughput::Elements((n as u64) + 1));
        g.bench_with_input(BenchmarkId::new("greedy_diff_min", n), &n, |b, _| {
            let mut t = DeltaTracker::new(&q);
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(3);
            let target = qubo::BitVec::random(n, &mut rng);
            b.iter(|| {
                // Pick and flip the min-Δ differing bit; when exhausted,
                // flip toward a fresh far-away point by inverting target
                // membership — keeps distance high without reallocation.
                let mut best: Option<(usize, i64)> = None;
                for i in t.x().iter_diff(&target) {
                    let d = t.deltas()[i];
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
                match best {
                    Some((k, _)) => t.flip(k),
                    None => t.flip(0),
                }
                black_box(t.energy());
            });
        });
    }
    g.finish();
}

/// The three kernels must walk the same trajectory — compare end states
/// after a few thousand flips before trusting the timings.
fn sanity_check() {
    let n = 256;
    let q = random::generate(n, 1);
    let window = n / 8;
    let flips = 5_000usize;

    let mut seed = SeedKernel::new(&q, window);
    for _ in 0..flips {
        let k = seed.select();
        seed.flip(k);
    }

    fn run_fused<A: DeltaAcc>(
        q: &Qubo,
        window: usize,
        flips: usize,
        kernel: FlipKernel,
    ) -> (i64, i64, BitVec) {
        let mut t = DeltaTracker::<A>::with_kernel(q, kernel);
        let mut p = WindowMinPolicy::new(window);
        for _ in 0..flips {
            let (a, l) = SelectionPolicy::<A>::next_window(&mut p, q.n()).expect("window");
            let k = t.select_in_window(a, l);
            t.flip(k);
        }
        (t.energy(), t.best().1, t.x().clone())
    }

    let (e64, b64, x64) = run_fused::<i64>(&q, window, flips, FlipKernel::Scalar);
    let (e32, b32, x32) = run_fused::<i32>(&q, window, flips, FlipKernel::Scalar);
    let (es, bs, xs) = run_fused::<i32>(&q, window, flips, FlipKernel::detect());
    assert_eq!(seed.e, e64, "fused i64 diverged from the seed kernel");
    assert_eq!(seed.best_e, b64, "fused i64 best diverged");
    assert_eq!(seed.x, x64, "fused i64 solution diverged");
    assert_eq!(e64, e32, "i32 energy diverged from i64");
    assert_eq!(b64, b32, "i32 best diverged from i64");
    assert_eq!(x64, x32, "i32 solution diverged from i64");
    assert_eq!(e32, es, "simd energy diverged from scalar i32");
    assert_eq!(b32, bs, "simd best diverged from scalar i32");
    assert_eq!(x32, xs, "simd solution diverged from scalar i32");
    println!(
        "sanity: seed, fused_i64, fused_i32, simd({}) agree after {flips} flips (E = {e64})",
        FlipKernel::detect().name()
    );
}

fn mean_ns(c: &Criterion, name: &str) -> f64 {
    // Minimum over the measurement passes: the estimate least polluted
    // by transient neighbour load (f64::min ignores the NaN seed, and
    // an absent cell stays NaN, which fails every gate comparison).
    c.results
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, m)| m.mean_ns)
        .fold(f64::NAN, f64::min)
}

fn write_report(c: &Criterion) {
    const GATE: f64 = 1.3;
    const SIMD_GATE: f64 = 1.4;
    let gate_sizes = [1024usize, 4096];
    let kernel = FlipKernel::detect().name();
    let mut rows = Vec::new();
    let mut pass = true;
    for n in [256usize, 1024, 4096] {
        let seed = mean_ns(c, &format!("tracker_flip/seed_i64/{n}"));
        let f64_ns = mean_ns(c, &format!("tracker_flip/fused_i64/{n}"));
        let f32_ns = mean_ns(c, &format!("tracker_flip/fused_i32/{n}"));
        let simd_ns = mean_ns(c, &format!("tracker_flip/simd/{n}"));
        let s64 = seed / f64_ns;
        let s32 = seed / f32_ns;
        let ssimd = f32_ns / simd_ns;
        if gate_sizes.contains(&n) && (s32 < GATE || ssimd < SIMD_GATE) {
            pass = false;
        }
        rows.push(format!(
            "    {{\"n\": {n}, \"window\": {w}, \"seed_i64_ns\": {seed:.1}, \
             \"fused_i64_ns\": {f64_ns:.1}, \"fused_i32_ns\": {f32_ns:.1}, \
             \"simd_ns\": {simd_ns:.1}, \
             \"speedup_fused_i64\": {s64:.3}, \"speedup_fused_i32\": {s32:.3}, \
             \"speedup_simd_vs_fused_i32\": {ssimd:.3}}}",
            w = n / 8
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"flip_throughput\",\n  \"policy\": \"window(n/8)\",\n  \
         \"metric\": \"mean ns per flip (one flip evaluates n+1 solutions)\",\n  \
         \"simd_kernel\": \"{kernel}\",\n  \
         \"sizes\": [\n{rows}\n  ],\n  \
         \"gate\": {{\"min_speedup_fused_i32\": {GATE}, \
         \"min_speedup_simd_vs_fused_i32\": {SIMD_GATE}, \"sizes\": [1024, 4096], \
         \"pass\": {pass}}}\n}}\n",
        rows = rows.join(",\n")
    );
    let path = std::env::var("BENCH_FLIP_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flip.json").into());
    std::fs::write(&path, &json).expect("write BENCH_flip.json");
    println!("wrote {path} (gate pass = {pass})");
}

fn main() {
    sanity_check();
    let mut c = Criterion::default();
    bench_flip(&mut c);
    bench_straight_step(&mut c);
    write_report(&c);
}
