//! The hot kernel: one forced flip = one row scan updating all Δ plus
//! best tracking. Throughput here, times (n + 1), is the single-block
//! CPU search rate (the per-block analogue of Table 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qubo_problems::random;
use qubo_search::{DeltaTracker, SelectionPolicy, WindowMinPolicy};
use std::hint::black_box;
use std::time::Duration;

fn bench_flip(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracker_flip");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [256usize, 1024, 4096] {
        let q = random::generate(n, 1);
        g.throughput(Throughput::Elements((n as u64) + 1)); // solutions evaluated per flip
        g.bench_with_input(BenchmarkId::new("window_policy", n), &n, |b, _| {
            let mut t = DeltaTracker::new(&q);
            let mut p = WindowMinPolicy::new(n / 8);
            b.iter(|| {
                let k = p.select(t.deltas(), t.x());
                t.flip(black_box(k));
            });
        });
    }
    g.finish();
}

fn bench_straight_step(c: &mut Criterion) {
    // One straight-search selection + flip at a large Hamming distance.
    let mut g = c.benchmark_group("straight_step");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [1024usize, 4096] {
        let q = random::generate(n, 2);
        g.throughput(Throughput::Elements((n as u64) + 1));
        g.bench_with_input(BenchmarkId::new("greedy_diff_min", n), &n, |b, _| {
            let mut t = DeltaTracker::new(&q);
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(3);
            let target = qubo::BitVec::random(n, &mut rng);
            b.iter(|| {
                // Pick and flip the min-Δ differing bit; when exhausted,
                // flip toward a fresh far-away point by inverting target
                // membership — keeps distance high without reallocation.
                let mut best: Option<(usize, i64)> = None;
                for i in t.x().iter_diff(&target) {
                    let d = t.deltas()[i];
                    if best.map_or(true, |(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
                match best {
                    Some((k, _)) => t.flip(k),
                    None => t.flip(0),
                }
                black_box(t.energy());
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flip, bench_straight_step);
criterion_main!(benches);
