//! Host-side costs: pool insertion (the O(log m) binary search of
//! §3.1) and GA target generation. These must stay negligible next to
//! device flips or the host becomes the bottleneck.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qubo::BitVec;
use qubo_ga::{GaConfig, SolutionPool, TargetGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn bench_pool_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_insert");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for m in [64usize, 1024] {
        let n = 1024;
        let mut rng = StdRng::seed_from_u64(1);
        let mut pool = SolutionPool::random(m, n, &mut rng);
        // Pre-generate candidates so RNG cost stays out of the loop.
        let candidates: Vec<(BitVec, i64)> = (0..4096)
            .map(|_| (BitVec::random(n, &mut rng), rng.gen_range(-1_000_000..0)))
            .collect();
        g.bench_with_input(BenchmarkId::new("insert", m), &m, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let (x, e) = &candidates[i % candidates.len()];
                i += 1;
                black_box(pool.insert(x.clone(), *e))
            });
        });
    }
    g.finish();
}

fn bench_target_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("target_generation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [1024usize, 8192] {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = SolutionPool::random(64, n, &mut rng);
        let mut generator = TargetGenerator::new(n, GaConfig::default(), 3);
        g.bench_with_input(BenchmarkId::new("generate", n), &n, |b, _| {
            b.iter(|| black_box(generator.generate(&pool)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pool_insert, bench_target_generation);
criterion_main!(benches);
