//! Minimal ASCII charts so the report can render *figures*, not just
//! tables (Fig. 8's scaling line, Table 2's rate-vs-p series, and
//! convergence traces).

/// Renders a horizontal bar chart. Values must be non-negative; bars are
/// scaled to `width` characters against the maximum value.
#[must_use]
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = format!("\n{title}\n");
    for (label, value) in rows {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "  {label:label_w$} | {}{} {value:.3e}\n",
            "█".repeat(bar_len),
            " ".repeat(width.saturating_sub(bar_len)),
        ));
    }
    out
}

/// Renders a decreasing series (e.g. a best-energy convergence trace) as
/// a down-sampled sparkline over `bins` columns using eight block
/// levels, lowest value = full block.
#[must_use]
pub fn sparkline(series: &[f64], bins: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() || bins == 0 {
        return String::new();
    }
    let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = String::with_capacity(bins * 3);
    let cols = bins.min(series.len());
    for b in 0..cols {
        // Endpoint-inclusive sampling: the first and last values always
        // appear, so the trace's extremes are never lost.
        let idx = if cols == 1 {
            0
        } else {
            b * (series.len() - 1) / (cols - 1)
        };
        let v = series[idx];
        let t = (v - lo) / span; // 0 = lowest
        let level = ((1.0 - t) * 7.0).round() as usize;
        out.push(LEVELS[level.min(7)]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![
            ("one".to_owned(), 1.0),
            ("two".to_owned(), 2.0),
            ("four".to_owned(), 4.0),
        ];
        let s = bar_chart("demo", &rows, 8);
        assert!(s.contains("demo"));
        // The max row gets the full width, the min a quarter of it.
        assert!(s.contains(&"█".repeat(8)));
        assert!(s
            .lines()
            .any(|l| l.contains("one") && l.matches('█').count() == 2));
    }

    #[test]
    fn bar_chart_survives_zeroes() {
        let rows = vec![("z".to_owned(), 0.0)];
        let s = bar_chart("zero", &rows, 5);
        assert!(s.contains("0.000e0"));
        assert!(!s.contains('█'));
    }

    #[test]
    fn sparkline_maps_extremes() {
        // Decreasing series: starts at the top level, ends at the bottom.
        let series: Vec<f64> = (0..32).map(|i| f64::from(32 - i)).collect();
        let s = sparkline(&series, 8);
        assert_eq!(s.chars().count(), 8);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_handles_degenerate_input() {
        assert_eq!(sparkline(&[], 8), "");
        assert_eq!(sparkline(&[1.0], 0), "");
        let flat = sparkline(&[3.0, 3.0, 3.0], 3);
        assert_eq!(flat.chars().count(), 3);
    }
}
