//! The experiment implementations behind the `report` binary.

pub mod ablation;
pub mod baselines;
pub mod efficiency;
pub mod throughput;
pub mod time_to_solution;

use abs::{Abs, AbsConfig, SolveResult, StopCondition};
use qubo::Qubo;
use std::time::Duration;

/// Baseline ABS configuration used by the report experiments: one
/// virtual device, a handful of blocks, workers matched to the host.
#[must_use]
pub fn report_config(blocks: usize, timeout_ms: u64) -> AbsConfig {
    let mut cfg = AbsConfig::small();
    cfg.machine.device.blocks_override = Some(blocks);
    cfg.machine.device.workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    cfg.stop = StopCondition::timeout(Duration::from_millis(timeout_ms));
    cfg
}

/// Runs ABS and returns the result.
#[must_use]
pub fn run(q: &Qubo, cfg: AbsConfig) -> SolveResult {
    Abs::new(cfg)
        .expect("valid config")
        .solve(q)
        .expect("solve")
}

/// The paper's target protocol, applied to our own run: the first time
/// the best energy reached `fraction` of the final best (both measured
/// from this run's history). Returns seconds, or `None` if only the
/// final point qualifies.
///
/// `fraction` is applied to the *magnitude* of the final best energy
/// (energies here are negative).
#[must_use]
pub fn time_to_fraction(r: &SolveResult, fraction: f64) -> Option<f64> {
    let final_best = r.best_energy;
    if final_best >= 0 {
        return None;
    }
    let target = (final_best as f64 * fraction).floor() as i64;
    r.history
        .iter()
        .find(|p| p.energy <= target)
        .map(|p| p.elapsed_ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abs::HistoryPoint;
    use qubo::BitVec;

    fn result_with_history(points: &[(u128, i64)]) -> SolveResult {
        SolveResult {
            best: BitVec::zeros(4),
            best_energy: points.last().map_or(0, |p| p.1),
            reached_target: false,
            time_to_target: None,
            elapsed: Duration::from_secs(1),
            total_flips: 1,
            evaluated: 5,
            search_rate: 5.0,
            iterations: 1,
            results_received: 1,
            results_inserted: 1,
            history: points
                .iter()
                .map(|&(ns, e)| HistoryPoint {
                    elapsed_ns: ns,
                    energy: e,
                    flips: 0,
                })
                .collect(),
            degraded: false,
            rejected_records: 0,
            requeued_targets: 0,
            search_units: 1,
            devices: vec![],
            metrics: abs_telemetry::MetricsSnapshot::default(),
        }
    }

    #[test]
    fn time_to_fraction_finds_first_crossing() {
        let r = result_with_history(&[(1_000, -50), (2_000, -99), (3_000, -100)]);
        // 99% of -100 = -99: first reached at 2 µs.
        let t = time_to_fraction(&r, 0.99).unwrap();
        assert!((t - 2e-6).abs() < 1e-12);
        // 100% only at the last point.
        let t = time_to_fraction(&r, 1.0).unwrap();
        assert!((t - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn time_to_fraction_none_for_non_negative_best() {
        let r = result_with_history(&[(1_000, 5)]);
        assert!(time_to_fraction(&r, 0.99).is_none());
    }
}
