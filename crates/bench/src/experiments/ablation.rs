//! Ablations of the design choices DESIGN.md calls out: the window
//! length (temperature analogue), the GA operator mix, and the solution
//! pool size.

use super::{report_config, run};
use crate::table::Table;
use crate::{write_json, Scale};
use abs::StopCondition;
use qubo_ga::GaConfig;
use qubo_problems::{gset, maxcut, random};
use serde::Serialize;
use std::path::Path;
use vgpu::WindowSchedule;

/// One ablation measurement.
#[derive(Serialize)]
pub struct AblationRow {
    /// Sweep dimension ("window", "ga", "pool").
    pub dimension: String,
    /// The swept value, as text.
    pub value: String,
    /// Best energy at the fixed budget.
    pub best_energy: i64,
}

/// Window-length sweep: fixed ℓ across all blocks vs the default
/// powers-of-two ladder (Fig. 2's temperature role).
pub fn window(scale: Scale, out: &Path, rows: &mut Vec<AblationRow>) {
    let n = 512;
    let q = random::generate(n, 19);
    let budget = scale.steps(300_000);
    let mut t = Table::new(
        "Ablation — selection-window length ℓ (n = 512, fixed flip budget)",
        &["Window", "Best energy"],
    );
    let mut schedules: Vec<(String, WindowSchedule)> =
        vec![("ladder (2^k)".into(), WindowSchedule::PowersOfTwo)];
    for l in [1usize, 4, 16, 64, 256, 512] {
        schedules.push((format!("fixed {l}"), WindowSchedule::Fixed(l)));
    }
    for (name, sched) in schedules {
        let mut cfg = report_config(8, 60_000);
        cfg.machine.device.windows = sched;
        cfg.stop = StopCondition::flips(budget);
        let r = run(&q, cfg);
        t.push_row(&[name.clone(), r.best_energy.to_string()]);
        rows.push(AblationRow {
            dimension: "window".into(),
            value: name,
            best_energy: r.best_energy,
        });
    }
    println!("{}", t.render());
    let _ = out;
}

/// GA operator-mix sweep: the full mix vs single-operator degenerates
/// (immigrant-only = pure multistart, i.e. "GA off").
pub fn ga_mix(scale: Scale, out: &Path, rows: &mut Vec<AblationRow>) {
    let inst = gset::instance("G1").expect("catalog");
    let graph = gset::generate_instance(inst, 0);
    let q = maxcut::to_qubo(&graph).expect("encodes");
    let budget = scale.steps(400_000);
    let mut t = Table::new(
        "Ablation — GA operator mix (G1 stand-in, fixed flip budget)",
        &["Mix", "Best cut"],
    );
    let mixes: Vec<(&str, GaConfig)> = vec![
        ("default (mut+cross+copy+imm)", GaConfig::default()),
        (
            "mutation only",
            GaConfig {
                p_mutate: 1.0,
                p_crossover: 0.0,
                p_immigrant: 0.0,
                ..GaConfig::default()
            },
        ),
        (
            "crossover only",
            GaConfig {
                p_mutate: 0.0,
                p_crossover: 1.0,
                p_immigrant: 0.0,
                ..GaConfig::default()
            },
        ),
        (
            "GA off (random immigrants)",
            GaConfig {
                p_mutate: 0.0,
                p_crossover: 0.0,
                p_immigrant: 1.0,
                ..GaConfig::default()
            },
        ),
    ];
    for (name, ga) in mixes {
        let mut cfg = report_config(8, 60_000);
        cfg.ga = ga;
        cfg.stop = StopCondition::flips(budget);
        let r = run(&q, cfg);
        t.push_row(&[name.into(), (-r.best_energy).to_string()]);
        rows.push(AblationRow {
            dimension: "ga".into(),
            value: name.into(),
            best_energy: r.best_energy,
        });
    }
    println!("{}", t.render());
    let _ = out;
}

/// Pool-size sweep (the host's `m`).
pub fn pool(scale: Scale, out: &Path, rows: &mut Vec<AblationRow>) {
    let n = 512;
    let q = random::generate(n, 23);
    let budget = scale.steps(300_000);
    let mut t = Table::new(
        "Ablation — solution-pool size m (n = 512, fixed flip budget)",
        &["Pool size", "Best energy"],
    );
    for m in [2usize, 8, 32, 128, 512] {
        let mut cfg = report_config(8, 60_000);
        cfg.pool_size = m;
        cfg.stop = StopCondition::flips(budget);
        let r = run(&q, cfg);
        t.push_row(&[m.to_string(), r.best_energy.to_string()]);
        rows.push(AblationRow {
            dimension: "pool".into(),
            value: m.to_string(),
            best_energy: r.best_energy,
        });
    }
    println!("{}", t.render());
    let _ = out;
}

/// Adaptive window switching (the paper's future-work idea) vs the
/// static ladder, at a fixed budget.
pub fn adaptive(scale: Scale, out: &Path, rows: &mut Vec<AblationRow>) {
    let n = 512;
    let q = random::generate(n, 29);
    let budget = scale.steps(300_000);
    let mut t = Table::new(
        "Ablation — adaptive window switching (future work §5; n = 512)",
        &["Mode", "Best energy"],
    );
    let modes: Vec<(String, Option<vgpu::AdaptiveConfig>)> = vec![
        ("static ladder".into(), None),
        (
            "adaptive (patience 4)".into(),
            Some(vgpu::AdaptiveConfig { patience: 4 }),
        ),
        (
            "adaptive (patience 16)".into(),
            Some(vgpu::AdaptiveConfig { patience: 16 }),
        ),
    ];
    for (name, mode) in modes {
        let mut cfg = report_config(8, 60_000);
        cfg.machine.device.adaptive = mode;
        cfg.stop = StopCondition::flips(budget);
        let r = run(&q, cfg);
        t.push_row(&[name.clone(), r.best_energy.to_string()]);
        rows.push(AblationRow {
            dimension: "adaptive".into(),
            value: name,
            best_energy: r.best_energy,
        });
    }
    println!("{}", t.render());
    let _ = out;
}

/// Heterogeneous per-block algorithms (future work §5): the paper's
/// all-window device vs a device cycling window/greedy/random/
/// Metropolis blocks.
pub fn policy_mix(scale: Scale, out: &Path, rows: &mut Vec<AblationRow>) {
    let n = 512;
    let q = random::generate(n, 31);
    let budget = scale.steps(300_000);
    let temp = q.energy_bound() as f64 / n as f64;
    let mut t = Table::new(
        "Ablation — heterogeneous block algorithms (future work §5; n = 512)",
        &["Device composition", "Best energy"],
    );
    let mixes: Vec<(&str, Vec<vgpu::PolicyKind>)> = vec![
        ("all window (paper)", vec![]),
        ("all greedy", vec![vgpu::PolicyKind::Greedy]),
        ("all random", vec![vgpu::PolicyKind::Random]),
        (
            "mixed (window/greedy/random/metropolis)",
            vec![
                vgpu::PolicyKind::Window,
                vgpu::PolicyKind::Greedy,
                vgpu::PolicyKind::Random,
                vgpu::PolicyKind::Metropolis {
                    temperature: temp,
                    cooling: 0.9999,
                },
            ],
        ),
    ];
    for (name, mix) in mixes {
        let mut cfg = report_config(8, 60_000);
        cfg.machine.device.policy_mix = mix;
        cfg.stop = StopCondition::flips(budget);
        let r = run(&q, cfg);
        t.push_row(&[name.into(), r.best_energy.to_string()]);
        rows.push(AblationRow {
            dimension: "policy_mix".into(),
            value: name.into(),
            best_energy: r.best_energy,
        });
    }
    println!("{}", t.render());
    let _ = out;
}

/// Runs every ablation and writes the combined JSON.
pub fn all(scale: Scale, out: &Path) {
    let mut rows = Vec::new();
    window(scale, out, &mut rows);
    ga_mix(scale, out, &mut rows);
    pool(scale, out, &mut rows);
    adaptive(scale, out, &mut rows);
    policy_mix(scale, out, &mut rows);
    write_json(out, "ablation", &rows);
}
