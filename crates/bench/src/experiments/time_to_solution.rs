//! Tables 1 (a), 1 (b), 1 (c): time-to-solution experiments.

use super::{report_config, run, time_to_fraction};
use crate::table::{secs, Table};
use crate::{write_json, Scale};
use abs::StopCondition;
use qubo_problems::{gset, maxcut, random, tsp, tsplib};
use serde::Serialize;
use std::path::Path;
use std::time::Duration;

/// One Max-Cut row (serialized to JSON).
#[derive(Serialize)]
pub struct MaxcutRow {
    /// Instance name.
    pub name: String,
    /// Problem bits (vertices).
    pub bits: usize,
    /// Family descriptor.
    pub family: String,
    /// Best cut found by our run.
    pub best_cut: i64,
    /// The fraction-of-best target (paper protocol).
    pub target_cut: i64,
    /// Seconds to reach the target.
    pub time_to_target_s: Option<f64>,
    /// Paper's target on the real instance.
    pub paper_target: i64,
    /// Paper's time on 4 GPUs.
    pub paper_time_s: f64,
}

/// Table 1 (a): Max-Cut on the eight G-set stand-ins.
///
/// Protocol note: our graphs are stand-ins (same family/size/edges, not
/// the literal downloads), so "best-known" is this run's own best and
/// the target is the paper's fraction of it — the same 99 %/95 %
/// protocol, applied self-referentially.
pub fn table1a(scale: Scale, large: bool, out: &Path) {
    let mut t = Table::new(
        "Table 1 (a) — Max-Cut time-to-solution (G-set stand-ins)",
        &[
            "Graph",
            "# Bits",
            "Type",
            "Weights",
            "Best cut (ours)",
            "Target",
            "Time (s)",
            "Paper target",
            "Paper time (s)",
        ],
    );
    let mut rows = Vec::new();
    for inst in gset::PAPER_INSTANCES {
        if inst.n > 5000 && !large {
            println!("  (skipping {} — pass --large to include)", inst.name);
            continue;
        }
        let graph = gset::generate_instance(inst, 0);
        let q = maxcut::to_qubo(&graph).expect("weights fit");
        let budget = scale.ms(if inst.n >= 2000 { 2_000 } else { 1_000 });
        let r = run(&q, report_config(16, budget));
        let best_cut = -r.best_energy;
        let target_cut = (best_cut as f64 * inst.target_fraction).floor() as i64;
        let tts = time_to_fraction(&r, inst.target_fraction);
        let (family, weights) = match inst.family {
            gset::GsetFamily::RandomUnit => ("random", "+1"),
            gset::GsetFamily::RandomPm1 => ("random", "±1"),
            gset::GsetFamily::PlanarUnit => ("planar", "+1"),
            gset::GsetFamily::PlanarPm1 => ("planar", "±1"),
        };
        let trace: Vec<f64> = r.history.iter().map(|p| -(p.energy as f64)).collect();
        println!(
            "  {:>4} convergence: {}",
            inst.name,
            crate::chart::sparkline(&trace, 32)
        );
        t.push_row(&[
            inst.name.into(),
            inst.n.to_string(),
            family.into(),
            weights.into(),
            best_cut.to_string(),
            target_cut.to_string(),
            tts.map_or("—".into(), secs),
            inst.paper_target.to_string(),
            secs(inst.paper_time_s),
        ]);
        rows.push(MaxcutRow {
            name: inst.name.into(),
            bits: inst.n,
            family: format!("{:?}", inst.family),
            best_cut,
            target_cut,
            time_to_target_s: tts,
            paper_target: inst.paper_target,
            paper_time_s: inst.paper_time_s,
        });
    }
    println!("{}", t.render());
    write_json(out, "table1a", &rows);
}

/// One TSP row.
#[derive(Serialize)]
pub struct TspRow {
    /// Instance name.
    pub name: String,
    /// QUBO bits.
    pub bits: usize,
    /// Reference tour length (exact or 2-opt) on the stand-in.
    pub reference_len: u64,
    /// Whether the reference is exact.
    pub reference_exact: bool,
    /// Target tour length (reference × paper slack factor).
    pub target_len: i64,
    /// Whether ABS reached the target.
    pub reached: bool,
    /// Seconds to target, if reached.
    pub time_to_target_s: Option<f64>,
    /// Decoded tour length of the final best, if it is a valid tour.
    pub final_len: Option<i64>,
    /// Paper's target and time on the real instance.
    pub paper_target: i64,
    /// Paper's time on 4 GPUs.
    pub paper_time_s: f64,
}

/// Table 1 (b): TSP on the five TSPLIB stand-ins.
pub fn table1b(scale: Scale, large: bool, out: &Path) {
    let mut t = Table::new(
        "Table 1 (b) — TSP time-to-solution (TSPLIB stand-ins)",
        &[
            "Problem",
            "# Bits",
            "Reference",
            "Target",
            "Reached",
            "Time (s)",
            "Final tour",
            "Paper target",
            "Paper time (s)",
        ],
    );
    let mut rows = Vec::new();
    for e in tsplib::PAPER_INSTANCES {
        if e.cities > 52 && !large {
            println!("  (skipping {} — pass --large to include)", e.name);
            continue;
        }
        let inst = tsplib::instance(e.name);
        let exact = inst.cities() <= 20;
        let (_, ref_len) = if exact {
            tsp::held_karp(&inst)
        } else {
            tsp::two_opt(&inst)
        };
        let tq = tsp::to_qubo(&inst).expect("encodes");
        let target_len = (ref_len as f64 * e.target_factor).floor() as i64;
        let budget = scale.ms(2_000 + 60 * e.cities as u64);
        let mut cfg = abs::presets::tsp(e.bits);
        cfg.machine.device.blocks_override = Some(16);
        cfg.machine.device.workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        cfg.stop = StopCondition::target(tq.length_to_energy(target_len))
            .with_timeout(Duration::from_millis(budget));
        let r = run(tq.qubo(), cfg);
        let final_len = tq
            .decode(&r.best)
            .map(|tour| inst.tour_length(&tour) as i64);
        t.push_row(&[
            e.name.into(),
            e.bits.to_string(),
            format!("{ref_len}{}", if exact { " (exact)" } else { " (2-opt)" }),
            target_len.to_string(),
            if r.reached_target { "yes" } else { "no" }.into(),
            r.time_to_target
                .map_or("—".into(), |d| secs(d.as_secs_f64())),
            final_len.map_or("invalid".into(), |l| l.to_string()),
            e.paper_target.to_string(),
            secs(e.paper_time_s),
        ]);
        rows.push(TspRow {
            name: e.name.into(),
            bits: e.bits,
            reference_len: ref_len,
            reference_exact: exact,
            target_len,
            reached: r.reached_target,
            time_to_target_s: r.time_to_target.map(|d| d.as_secs_f64()),
            final_len,
            paper_target: e.paper_target,
            paper_time_s: e.paper_time_s,
        });
    }
    println!("{}", t.render());
    write_json(out, "table1b", &rows);
}

/// One synthetic-random row.
#[derive(Serialize)]
pub struct RandomRow {
    /// Problem bits.
    pub bits: usize,
    /// Best energy found by our run.
    pub best_energy: i64,
    /// The 99 %-of-best target energy.
    pub target_energy: i64,
    /// Seconds to reach the target.
    pub time_to_target_s: Option<f64>,
    /// Paper's target on its instance (different instance!).
    pub paper_target: i64,
    /// Paper's time on 4 GPUs.
    pub paper_time_s: f64,
}

/// Table 1 (c): synthetic random instances.
pub fn table1c(scale: Scale, large: bool, out: &Path) {
    let mut t = Table::new(
        "Table 1 (c) — synthetic random time-to-solution",
        &[
            "# Bits",
            "Best energy (ours)",
            "Target (99 %)",
            "Time (s)",
            "Paper target",
            "Paper time (s)",
        ],
    );
    let mut rows = Vec::new();
    for e in random::PAPER_INSTANCES {
        if e.bits > 4096 && !large {
            println!("  (skipping {} bits — pass --large to include)", e.bits);
            continue;
        }
        let q = random::generate(e.bits, 7);
        let budget = scale.ms(500 + e.bits as u64 / 4);
        let r = run(&q, report_config(16, budget));
        let target = (r.best_energy as f64 * 0.99).floor() as i64;
        let tts = time_to_fraction(&r, 0.99);
        t.push_row(&[
            e.bits.to_string(),
            r.best_energy.to_string(),
            target.to_string(),
            tts.map_or("—".into(), secs),
            e.paper_target.to_string(),
            secs(e.paper_time_s),
        ]);
        rows.push(RandomRow {
            bits: e.bits,
            best_energy: r.best_energy,
            target_energy: target,
            time_to_target_s: tts,
            paper_target: e.paper_target,
            paper_time_s: e.paper_time_s,
        });
    }
    println!("{}", t.render());
    write_json(out, "table1c", &rows);
}
