//! Table 2, Fig. 8, and Table 3: throughput experiments.

use super::{report_config, run};
use crate::table::{sci, Table};
use crate::{write_json, Scale};
use qubo_problems::random;
use serde::Serialize;
use std::path::Path;
use vgpu::{full_occupancy_configs, DeviceSpec, TimingModel, PAPER_TABLE2};

/// One Table 2 row.
#[derive(Serialize)]
pub struct Table2Row {
    /// Problem bits.
    pub bits: usize,
    /// Bits per thread `p`.
    pub bits_per_thread: u32,
    /// Threads per block (occupancy calculator).
    pub threads_per_block: u32,
    /// Active blocks per GPU (occupancy calculator).
    pub blocks_per_gpu: u32,
    /// Measured CPU search rate, solutions/s (this machine, 1 device).
    pub measured_cpu_rate: f64,
    /// Modeled 4-GPU search rate, solutions/s.
    pub modeled_gpu_rate: f64,
    /// The paper's measured rate, solutions/s (4 GPUs).
    pub paper_rate: f64,
}

/// Table 2: search rate across the 100 %-occupancy configurations.
///
/// Three rate columns: the CPU rate *measured* on this machine (whose
/// absolute value reflects the host, and which barely depends on `p`
/// because the virtual blocks share cores), the calibrated GPU-model
/// rate (which reproduces the paper's shape: rising then falling in
/// `p`, declining in `n`), and the paper's number.
pub fn table2(scale: Scale, large: bool, out: &Path) {
    let spec = DeviceSpec::rtx_2080_ti();
    let model = TimingModel::default();
    let mut t = Table::new(
        "Table 2 — search rate vs bits per thread (100 % occupancy)",
        &[
            "# Bits",
            "p",
            "Threads/block",
            "Blocks/GPU",
            "Measured CPU (sol/s)",
            "Model 4-GPU (sol/s)",
            "Paper (sol/s)",
        ],
    );
    let mut rows = Vec::new();
    let sizes: &[usize] = if large {
        &[1024, 2048, 4096, 8192, 16384, 32768]
    } else {
        &[1024, 2048, 4096]
    };
    for &n in sizes {
        let q = random::generate(n, 11);
        for occ in full_occupancy_configs(&spec, n) {
            // Measured: run the real machine with exactly this block
            // count. The budget grows with n because flips are accounted
            // at bulk-iteration boundaries and one iteration is O(n²).
            let budget = scale.ms(300 + n as u64 / 8);
            let mut cfg = report_config(occ.blocks_per_gpu as usize, budget);
            cfg.machine.device.bits_per_thread = None;
            let r = run(&q, cfg);
            let paper = PAPER_TABLE2
                .iter()
                .find(|&&(pn, pp, _)| pn == n && pp == occ.bits_per_thread)
                .map_or(f64::NAN, |&(_, _, tps)| tps * 1e12);
            let modeled = model.search_rate(n, &occ, 4);
            t.push_row(&[
                n.to_string(),
                occ.bits_per_thread.to_string(),
                occ.threads_per_block.to_string(),
                occ.blocks_per_gpu.to_string(),
                sci(r.search_rate),
                sci(modeled),
                sci(paper),
            ]);
            rows.push(Table2Row {
                bits: n,
                bits_per_thread: occ.bits_per_thread,
                threads_per_block: occ.threads_per_block,
                blocks_per_gpu: occ.blocks_per_gpu,
                measured_cpu_rate: r.search_rate,
                modeled_gpu_rate: modeled,
                paper_rate: paper,
            });
        }
    }
    println!("{}", t.render());
    write_json(out, "table2", &rows);
}

/// One Fig. 8 point.
#[derive(Serialize)]
pub struct Fig8Point {
    /// Problem bits.
    pub bits: usize,
    /// Device count.
    pub devices: usize,
    /// Measured CPU search rate (workers = 1 per device).
    pub measured_cpu_rate: f64,
    /// Modeled GPU search rate.
    pub modeled_gpu_rate: f64,
}

/// Fig. 8: search-rate scaling with the number of devices.
pub fn fig8(scale: Scale, out: &Path) {
    let spec = DeviceSpec::rtx_2080_ti();
    let model = TimingModel::default();
    let mut t = Table::new(
        "Fig. 8 — search-rate scaling with device count (n = 1024, p = 16)",
        &[
            "Devices",
            "Measured CPU (sol/s)",
            "CPU speedup",
            "Model GPU (sol/s)",
            "GPU speedup",
        ],
    );
    let n = 1024;
    let q = random::generate(n, 13);
    let occ = vgpu::occupancy(&spec, n, 16).expect("Table 2 config");
    let mut points = Vec::new();
    let mut base: Option<f64> = None;
    for devices in 1..=4usize {
        let mut cfg = report_config(8, scale.ms(400));
        cfg.machine.num_devices = devices;
        cfg.machine.device.workers = 1;
        let r = run(&q, cfg);
        let measured = r.search_rate;
        let speed = measured / *base.get_or_insert(measured);
        let modeled = model.search_rate(n, &occ, devices);
        t.push_row(&[
            devices.to_string(),
            sci(measured),
            format!("{speed:.2}×"),
            sci(modeled),
            format!("{:.2}×", modeled / model.search_rate(n, &occ, 1)),
        ]);
        points.push(Fig8Point {
            bits: n,
            devices,
            measured_cpu_rate: measured,
            modeled_gpu_rate: modeled,
        });
    }
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("{}", t.render());
    println!(
        "{}",
        crate::chart::bar_chart(
            "Fig. 8 (modeled GPU rate, sol/s):",
            &points
                .iter()
                .map(|p| (format!("{} device(s)", p.devices), p.modeled_gpu_rate))
                .collect::<Vec<_>>(),
            40,
        )
    );
    println!("(measured scaling requires ≥ devices+1 physical cores; this host has {cores})");
    write_json(out, "fig8", &points);
}

/// Table 3: cross-system comparison. Literature rows are constants from
/// the paper; our rows are measured (CPU) and modeled (GPU) peaks.
pub fn table3(scale: Scale, out: &Path) {
    let spec = DeviceSpec::rtx_2080_ti();
    let model = TimingModel::default();
    // Our modeled peak across Table 2 configurations.
    let model_peak = PAPER_TABLE2
        .iter()
        .map(|&(n, p, _)| model.search_rate_for(&spec, n, p, 4))
        .fold(0.0f64, f64::max);
    // Our measured CPU peak at n = 1024.
    let q = random::generate(1024, 17);
    let r = run(&q, report_config(64, scale.ms(400)));

    let mut t = Table::new(
        "Table 3 — comparison with existing systems",
        &[
            "System",
            "# Bits",
            "Connection",
            "Search rate (sol/s)",
            "Technology",
        ],
    );
    for (sys, bits, conn, rate, tech) in [
        (
            "D-Wave 2000Q",
            "2,048",
            "Chimera graph",
            "N/A",
            "quantum annealer",
        ),
        (
            "Ref. [22]",
            "1,024",
            "fully-connected",
            "2.04e10",
            "Intel Arria 10 FPGA",
        ),
        (
            "Ref. [29]",
            "4,096",
            "fully-connected",
            "N/A",
            "Intel Arria 10 GX1150 FPGA",
        ),
        (
            "Ref. [13]",
            "100,000",
            "fully-connected",
            "N/A",
            "Tesla V100 ×8",
        ),
        (
            "ABS (paper)",
            "32,768",
            "fully-connected",
            "1.24e12",
            "RTX 2080 Ti ×4",
        ),
    ] {
        t.push_row(&[
            sys.into(),
            bits.into(),
            conn.into(),
            rate.into(),
            tech.into(),
        ]);
    }
    t.push_row(&[
        "ABS (this repo, modeled)".into(),
        "32,768".into(),
        "fully-connected".into(),
        sci(model_peak),
        "calibrated RTX 2080 Ti ×4 model".into(),
    ]);
    t.push_row(&[
        "ABS (this repo, measured)".into(),
        "32,768".into(),
        "fully-connected".into(),
        sci(r.search_rate),
        "virtual GPU on this host CPU".into(),
    ]);
    println!("{}", t.render());

    #[derive(Serialize)]
    struct Out {
        modeled_peak: f64,
        measured_cpu_peak: f64,
        paper_peak: f64,
        fpga_ref22: f64,
        speedup_vs_fpga_modeled: f64,
    }
    write_json(
        out,
        "table3",
        &Out {
            modeled_peak: model_peak,
            measured_cpu_peak: r.search_rate,
            paper_peak: 1.24e12,
            fpga_ref22: 2.04e10,
            speedup_vs_fpga_modeled: model_peak / 2.04e10,
        },
    );
}
