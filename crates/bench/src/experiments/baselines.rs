//! Solver-quality comparison: ABS vs the classical baselines at a
//! matched wall-clock budget (a supplemental experiment; the paper
//! compares against hardware systems, we also compare against software
//! metaheuristics on the same host).

use super::{report_config, run};
use crate::table::Table;
use crate::{write_json, Scale};
use abs::StopCondition;
use qubo::{BitVec, Energy, Qubo};
use qubo_problems::{gset, maxcut, random, tsp, tsplib};
use serde::Serialize;
use std::path::Path;
use std::time::{Duration, Instant};

/// One comparison row.
#[derive(Serialize)]
pub struct BaselineRow {
    /// Workload label.
    pub workload: String,
    /// Solver label.
    pub solver: String,
    /// Best energy at the budget.
    pub best_energy: i64,
    /// Wall-clock actually used, seconds.
    pub elapsed_s: f64,
}

fn run_sa_for(q: &Qubo, budget: Duration, seed: u64) -> (Energy, f64) {
    // Calibrate SA's step count to the budget with a short probe.
    let probe_steps = 50_000u64;
    let t0 = Instant::now();
    let _ = qubo_baselines::sa::solve(
        q,
        &qubo_baselines::sa::SaConfig::for_instance(q, probe_steps, seed),
    );
    let per_step = t0.elapsed().as_secs_f64() / probe_steps as f64;
    let steps = ((budget.as_secs_f64() / per_step) as u64).max(probe_steps);
    let t1 = Instant::now();
    let r = qubo_baselines::sa::solve(
        q,
        &qubo_baselines::sa::SaConfig::for_instance(q, steps, seed),
    );
    (r.best_energy, t1.elapsed().as_secs_f64())
}

fn run_tabu_for(q: &Qubo, budget: Duration, seed: u64) -> (Energy, f64) {
    let probe_steps = 2_000u64;
    let t0 = Instant::now();
    let _ = qubo_baselines::tabu::solve(
        q,
        &qubo_baselines::tabu::TabuConfig {
            tenure: (q.n() as u64 / 16).max(1),
            steps: probe_steps,
            seed,
        },
    );
    let per_step = t0.elapsed().as_secs_f64() / probe_steps as f64;
    let steps = ((budget.as_secs_f64() / per_step) as u64).max(probe_steps);
    let t1 = Instant::now();
    let r = qubo_baselines::tabu::solve(
        q,
        &qubo_baselines::tabu::TabuConfig {
            tenure: (q.n() as u64 / 16).max(1),
            steps,
            seed,
        },
    );
    (r.best_energy, t1.elapsed().as_secs_f64())
}

fn compare_on(label: &str, q: &Qubo, budget_ms: u64, rows: &mut Vec<BaselineRow>, t: &mut Table) {
    let budget = Duration::from_millis(budget_ms);
    let mut record = |solver: &str, energy: Energy, elapsed: f64| {
        t.push_row(&[
            label.into(),
            solver.into(),
            energy.to_string(),
            format!("{elapsed:.2}"),
        ]);
        rows.push(BaselineRow {
            workload: label.into(),
            solver: solver.into(),
            best_energy: energy,
            elapsed_s: elapsed,
        });
    };

    let mut cfg = report_config(16, budget_ms);
    cfg.stop = StopCondition::timeout(budget);
    let t0 = Instant::now();
    let abs_r = run(q, cfg);
    record("ABS", abs_r.best_energy, t0.elapsed().as_secs_f64());

    let (sa_e, sa_t) = run_sa_for(q, budget, 1);
    record("SA", sa_e, sa_t);
    let (tb_e, tb_t) = run_tabu_for(q, budget, 1);
    record("tabu", tb_e, tb_t);

    let t0 = Instant::now();
    let mut greedy_best = Energy::MAX;
    let mut restarts = 0u64;
    while t0.elapsed() < budget {
        let r = qubo_baselines::greedy::solve(q, 1, 100 + restarts);
        greedy_best = greedy_best.min(r.best_energy);
        restarts += 1;
    }
    record("greedy×restarts", greedy_best, t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(2);
    let mut rand_best = Energy::MAX;
    while t0.elapsed() < budget {
        for _ in 0..200 {
            let x = BitVec::random(q.n(), &mut rng);
            rand_best = rand_best.min(q.energy(&x));
        }
    }
    record("random", rand_best, t0.elapsed().as_secs_f64());
}

/// Runs the comparison on one instance per workload family.
pub fn report(scale: Scale, out: &Path) {
    let mut t = Table::new(
        "Baselines — best energy at a matched wall-clock budget",
        &["Workload", "Solver", "Best energy", "Used (s)"],
    );
    let mut rows = Vec::new();

    let budget = scale.ms(1_000);

    // Dense random, 512 bits.
    let q = random::generate(512, 41);
    compare_on("random-512", &q, budget, &mut rows, &mut t);

    // Max-Cut, G1 stand-in.
    let graph = gset::generate_instance(gset::instance("G1").expect("catalog"), 0);
    let q = maxcut::to_qubo(&graph).expect("encodes");
    compare_on("maxcut-G1", &q, budget, &mut rows, &mut t);

    // TSP, ulysses16 stand-in (the hard one-hot family).
    let inst = tsplib::instance("ulysses16");
    let tq = tsp::to_qubo(&inst).expect("encodes");
    compare_on("tsp-ulysses16", tq.qubo(), budget, &mut rows, &mut t);

    println!("{}", t.render());
    write_json(out, "baselines", &rows);
}
