//! Lemmas 1–3 / Theorem 1: measured search efficiency of Algorithms 1–4.

use crate::table::Table;
use crate::{write_json, Scale};
use qubo::BitVec;
use qubo_problems::random;
use qubo_search::naive::{algorithm1, algorithm2, algorithm3, Acceptor};
use qubo_search::{local_search, DeltaTracker, WindowMinPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::path::Path;

/// One efficiency measurement.
#[derive(Serialize)]
pub struct EfficiencyRow {
    /// Problem bits.
    pub bits: usize,
    /// Steps `m`.
    pub steps: usize,
    /// Measured ops/solution, Algorithm 1 (Lemma 1: O(n²)).
    pub alg1: f64,
    /// Algorithm 2 (Lemma 2: O(n + n²/m)).
    pub alg2: f64,
    /// Algorithm 3 (Lemma 3: O(n)).
    pub alg3: f64,
    /// Algorithm 4 / ABS tracker (Theorem 1: O(1)).
    pub alg4: f64,
}

/// Measures the ops-per-evaluated-solution of the four algorithms.
pub fn report(scale: Scale, out: &Path) {
    let mut t = Table::new(
        "Search efficiency — operations per evaluated solution (Lemmas 1–3, Theorem 1)",
        &[
            "n",
            "m",
            "Alg 1 (≈n²)",
            "Alg 2 (≈n+n²/m)",
            "Alg 3 (≤n)",
            "Alg 4 (O(1))",
        ],
    );
    let mut rows = Vec::new();
    for n in [64usize, 128, 256, 512] {
        let m = (scale.steps(4 * n as u64)) as usize;
        let q = random::generate(n, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let start = BitVec::random(n, &mut rng);
        let e1 = algorithm1(&q, &start, m.min(2_000), Acceptor::Greedy, 5)
            .stats
            .efficiency();
        let e2 = algorithm2(&q, &start, m, Acceptor::Greedy, 5)
            .stats
            .efficiency();
        let e3 = algorithm3(&q, &start, m, Acceptor::Greedy, 5)
            .stats
            .efficiency();
        let e4 = {
            let mut tr = DeltaTracker::new(&q);
            let mut p = WindowMinPolicy::new(n / 8);
            local_search(&mut tr, &mut p, m);
            tr.work() as f64 / tr.evaluated() as f64
        };
        t.push_row(&[
            n.to_string(),
            m.to_string(),
            format!("{e1:.1}"),
            format!("{e2:.1}"),
            format!("{e3:.1}"),
            format!("{e4:.3}"),
        ]);
        rows.push(EfficiencyRow {
            bits: n,
            steps: m,
            alg1: e1,
            alg2: e2,
            alg3: e3,
            alg4: e4,
        });
    }
    println!("{}", t.render());
    println!("(Alg 1 is capped at 2 000 steps — its O(n²)/evaluation cost is the point)");
    write_json(out, "efficiency", &rows);
}
