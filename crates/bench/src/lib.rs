//! Benchmark harness regenerating every table and figure of the paper.
//!
//! The `report` binary (`cargo run --release -p abs-bench --bin report`)
//! exposes one subcommand per experiment:
//!
//! | subcommand  | regenerates |
//! |-------------|-------------|
//! | `table1a`   | Table 1 (a): time-to-solution, Max-Cut (G-set stand-ins) |
//! | `table1b`   | Table 1 (b): time-to-solution, TSP (TSPLIB stand-ins) |
//! | `table1c`   | Table 1 (c): time-to-solution, synthetic random |
//! | `table2`    | Table 2: search rate vs bits-per-thread (measured CPU + modeled GPU) |
//! | `fig8`      | Fig. 8: search-rate scaling with device count |
//! | `table3`    | Table 3: cross-system comparison |
//! | `efficiency`| Lemmas 1–3 / Theorem 1: measured search efficiency |
//! | `baselines` | ABS vs SA/tabu/greedy/random at matched wall-clock |
//! | `ablation`  | window / GA mix / pool / adaptive / policy-mix sweeps |
//! | `all`       | everything above |
//!
//! Each experiment prints a Markdown table with paper-reference columns
//! and writes machine-readable JSON next to it (under `results/`).
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiments;
pub mod table;

use std::path::Path;

/// Writes a serializable experiment result as pretty JSON under `dir`.
///
/// # Panics
/// Panics when the directory cannot be created or the file written —
/// the report binary treats that as fatal.
pub fn write_json<T: serde::Serialize>(dir: &Path, name: &str, value: &T) {
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialize");
    std::fs::write(&path, body).expect("write result json");
    println!("  → wrote {}", path.display());
}

/// Global scale knob: budgets are multiplied by this factor so `report
/// all` can run in seconds (scale 0.2) or do a thorough pass (scale 5).
#[derive(Clone, Copy, Debug)]
pub struct Scale(pub f64);

impl Scale {
    /// Scales a millisecond budget, keeping at least 20 ms.
    #[must_use]
    pub fn ms(&self, base: u64) -> u64 {
        ((base as f64 * self.0) as u64).max(20)
    }

    /// Scales an iteration/flip budget, keeping at least 1 000.
    #[must_use]
    pub fn steps(&self, base: u64) -> u64 {
        ((base as f64 * self.0) as u64).max(1_000)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self(1.0)
    }
}
