//! Minimal Markdown table rendering for the report binary.

/// A Markdown table under construction.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn push_row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as Markdown with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("\n### {}\n\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:width$} |", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats a rate in engineering notation (e.g. `1.24e12`).
#[must_use]
pub fn sci(v: f64) -> String {
    format!("{v:.3e}")
}

/// Formats seconds with millisecond precision.
#[must_use]
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.push_row(&["1".into(), "2".into()]);
        t.push_row(&["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| a   | long-header |"));
        assert!(s.contains("| 333 | 4           |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(sci(1.24e12), "1.240e12");
        assert_eq!(secs(0.0723), "0.072");
    }
}
