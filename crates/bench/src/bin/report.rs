//! `report` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p abs-bench --bin report -- all [--scale X] [--large] [--out DIR]
//! ```

#![forbid(unsafe_code)]

use abs_bench::experiments::{ablation, baselines, efficiency, throughput, time_to_solution};
use abs_bench::Scale;
use std::path::PathBuf;

const USAGE: &str = "\
report — regenerate the paper's tables and figures

USAGE:
    report <experiment> [--scale X] [--large] [--out DIR]

EXPERIMENTS:
    table1a     Max-Cut time-to-solution (G-set stand-ins)
    table1b     TSP time-to-solution (TSPLIB stand-ins)
    table1c     synthetic random time-to-solution
    table2      search rate vs bits-per-thread
    fig8        search-rate scaling with device count
    table3      cross-system comparison
    efficiency  Lemmas 1–3 / Theorem 1 measured search efficiency
    baselines   ABS vs SA/tabu/greedy/random at matched wall-clock
    ablation    window / GA-mix / pool-size / adaptive / policy sweeps
    all         everything above

OPTIONS:
    --scale X   multiply all budgets by X (default 1.0)
    --large     include the largest instances (G70, 16k/32k bits, st70)
    --out DIR   JSON output directory (default results/)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut scale = Scale::default();
    let mut large = false;
    let mut out = PathBuf::from("results");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().and_then(|s| s.parse().ok());
                match v {
                    Some(x) if x > 0.0 => scale = Scale(x),
                    _ => return usage_err("--scale needs a positive number"),
                }
            }
            "--large" => large = true,
            "--out" => match it.next() {
                Some(d) => out = PathBuf::from(d),
                None => return usage_err("--out needs a directory"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_owned());
            }
            other => return usage_err(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(experiment) = experiment else {
        println!("{USAGE}");
        return;
    };

    println!(
        "# ABS experiment report — {experiment} (scale {}, large: {large})",
        scale.0
    );
    match experiment.as_str() {
        "table1a" => time_to_solution::table1a(scale, large, &out),
        "table1b" => time_to_solution::table1b(scale, large, &out),
        "table1c" => time_to_solution::table1c(scale, large, &out),
        "table2" => throughput::table2(scale, large, &out),
        "fig8" => throughput::fig8(scale, &out),
        "table3" => throughput::table3(scale, &out),
        "efficiency" => efficiency::report(scale, &out),
        "baselines" => baselines::report(scale, &out),
        "ablation" => ablation::all(scale, &out),
        "all" => {
            time_to_solution::table1a(scale, large, &out);
            time_to_solution::table1b(scale, large, &out);
            time_to_solution::table1c(scale, large, &out);
            throughput::table2(scale, large, &out);
            throughput::fig8(scale, &out);
            throughput::table3(scale, &out);
            efficiency::report(scale, &out);
            baselines::report(scale, &out);
            ablation::all(scale, &out);
        }
        other => usage_err(&format!("unknown experiment {other:?}")),
    }
}

fn usage_err(msg: &str) {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}
