//! Configuration of an ABS run.

use qubo::{BitVec, Energy};
use qubo_ga::GaConfig;
use std::time::Duration;
use vgpu::{DeviceConfig, MachineConfig, WindowSchedule};

/// When the host stops the search. Conditions compose: the run stops as
/// soon as *any* active condition is met. At least one condition must be
/// set.
#[derive(Clone, Debug, Default)]
pub struct StopCondition {
    /// Stop once the best energy is `≤ target_energy` (the paper's
    /// time-to-solution experiments, Table 1).
    pub target_energy: Option<Energy>,
    /// Wall-clock budget.
    pub timeout: Option<Duration>,
    /// Budget on total device flips (deterministic-ish work budget for
    /// tests and benches; checked at host poll granularity).
    pub max_flips: Option<u64>,
}

impl StopCondition {
    /// Stop at a target energy.
    #[must_use]
    pub fn target(target_energy: Energy) -> Self {
        Self {
            target_energy: Some(target_energy),
            ..Self::default()
        }
    }

    /// Stop after a wall-clock duration.
    #[must_use]
    pub fn timeout(d: Duration) -> Self {
        Self {
            timeout: Some(d),
            ..Self::default()
        }
    }

    /// Stop after a total flip budget.
    #[must_use]
    pub fn flips(max: u64) -> Self {
        Self {
            max_flips: Some(max),
            ..Self::default()
        }
    }

    /// Adds a target energy to an existing condition.
    #[must_use]
    pub fn with_target(mut self, target_energy: Energy) -> Self {
        self.target_energy = Some(target_energy);
        self
    }

    /// Adds a timeout to an existing condition.
    #[must_use]
    pub fn with_timeout(mut self, d: Duration) -> Self {
        self.timeout = Some(d);
        self
    }

    /// `true` if at least one condition is set.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.target_energy.is_some() || self.timeout.is_some() || self.max_flips.is_some()
    }
}

/// Full configuration of an ABS run.
#[derive(Clone, Debug)]
pub struct AbsConfig {
    /// Solution-pool capacity `m` (§3.1).
    pub pool_size: usize,
    /// Genetic-operator mix.
    pub ga: GaConfig,
    /// Devices and per-device execution parameters.
    pub machine: MachineConfig,
    /// Targets pushed to each device at startup, as a multiple of its
    /// block count (the devices drain one target per bulk iteration).
    pub initial_targets_per_block: usize,
    /// Stop condition (must be bounded).
    pub stop: StopCondition,
    /// Master seed; pool, GA and policies derive their streams from it.
    pub seed: u64,
    /// Warm-start solutions: seeded into the pool (unevaluated — the
    /// host never computes energies) and shipped as the very first
    /// targets, so devices evaluate them exactly via straight search.
    /// Lengths must match the problem's bit count.
    pub initial_solutions: Vec<BitVec>,
}

impl Default for AbsConfig {
    fn default() -> Self {
        Self {
            pool_size: 64,
            ga: GaConfig::default(),
            machine: MachineConfig::default(),
            initial_targets_per_block: 2,
            stop: StopCondition::default(),
            seed: 0,
            initial_solutions: Vec::new(),
        }
    }
}

impl AbsConfig {
    /// A modest CPU preset for tests, examples and docs: one device,
    /// 8 blocks on up to 4 workers, short local searches.
    #[must_use]
    pub fn small() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get().min(4))
            .unwrap_or(1);
        Self {
            pool_size: 32,
            machine: MachineConfig {
                num_devices: 1,
                device: DeviceConfig {
                    blocks_override: Some(8),
                    workers,
                    local_steps: 128,
                    windows: WindowSchedule::PowersOfTwo,
                    ..DeviceConfig::default()
                },
            },
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on an unbounded stop condition, an empty pool, or an
    /// invalid GA mix.
    pub fn validate(&self) {
        assert!(self.stop.is_bounded(), "stop condition must be bounded");
        assert!(self.pool_size > 0, "pool must hold at least one solution");
        self.ga.validate();
        assert!(
            self.machine.num_devices > 0,
            "machine needs at least one device"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_constructors_and_composition() {
        let s = StopCondition::target(-5).with_timeout(Duration::from_secs(1));
        assert_eq!(s.target_energy, Some(-5));
        assert!(s.timeout.is_some());
        assert!(s.is_bounded());
        assert!(!StopCondition::default().is_bounded());
        assert!(StopCondition::flips(10).is_bounded());
    }

    #[test]
    #[should_panic(expected = "stop condition must be bounded")]
    fn unbounded_stop_rejected() {
        AbsConfig::default().validate();
    }

    #[test]
    fn small_preset_is_valid_once_bounded() {
        let mut c = AbsConfig::small();
        c.stop = StopCondition::flips(100);
        c.validate();
    }
}
