//! Configuration of an ABS run.

use crate::error::AbsError;
use qubo::{BitVec, Energy};
use qubo_ga::GaConfig;
use std::time::Duration;
use vgpu::{DeviceConfig, MachineConfig, WindowSchedule};

/// Host-side fault tolerance: how the solve loop detects devices that
/// stop making progress and how much it distrusts device-reported
/// energies.
///
/// The health region in [`vgpu::GlobalMem`] reports *loud* failures
/// (quarantined blocks, dead devices). Silent stalls — a device whose
/// counter simply stops moving — are invisible there, so the host
/// watchdog compares progress across devices: a device accrues one
/// *stale round* for each poll round in which some other device made
/// counter progress while it did not, and is declared stalled when the
/// deadline is exceeded. Its in-flight targets are requeued to healthy
/// devices and the solve completes in degraded mode.
#[derive(Clone, Debug)]
pub struct WatchdogConfig {
    /// Stale poll rounds (rounds where *other* devices progressed but
    /// this one did not) before a device is declared stalled. `0`
    /// disables stall detection. The default is deliberately large so
    /// healthy-but-slow devices on loaded CI machines are never
    /// misdiagnosed.
    pub stall_poll_rounds: u64,
    /// Absolute wall-clock ceiling on the solve, checked even while
    /// waiting for a first result. `None` means no ceiling. This is a
    /// backstop against total device failure, not a tuning knob — use
    /// [`StopCondition::timeout`] for ordinary time budgets.
    pub hard_timeout: Option<Duration>,
    /// Host-side energy audit stride: `0` audits only records that
    /// would improve the incumbent best (the default — the reported
    /// best is always exact); `k > 0` additionally re-computes the
    /// energy of every `k`-th received record. A deliberate deviation
    /// from the paper's "host never computes the energy" rule; see
    /// DESIGN.md.
    pub audit_stride: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            stall_poll_rounds: 100_000,
            hard_timeout: None,
            audit_stride: 0,
        }
    }
}

/// Metrics exposition settings.
///
/// The solver always maintains the telemetry registry and attaches a
/// final [`abs_telemetry::MetricsSnapshot`] to the
/// [`SolveResult`](crate::SolveResult); this config only controls
/// *periodic* file exposition during the run. The host writes the file
/// at poll boundaries — device code never touches the filesystem or a
/// clock (Fig. 5 discipline).
#[derive(Clone, Debug, Default)]
pub struct MetricsConfig {
    /// Periodic exposition file. Extension `.json` selects the JSON
    /// snapshot format; anything else gets Prometheus text. `None`
    /// disables periodic writes.
    pub out: Option<std::path::PathBuf>,
    /// Minimum interval between periodic writes. `None` with `out` set
    /// writes only the final snapshot (on solve completion).
    pub interval: Option<Duration>,
}

/// Crash-safe checkpointing of the solve session (DESIGN.md §11).
///
/// When `out` is set, the host serializes the session — GA pool, RNG
/// streams, best records with exact audited energies, and cumulative
/// accounting — to a versioned binary file with per-section CRC32,
/// published atomically (write-tmp / fsync / rename) so a crash at any
/// instant leaves either the previous generation or the new one, never a
/// torn file that silently resumes wrong. The last `keep` generations
/// are retained (`path`, `path.1`, `path.2`, …); restore falls back past
/// CRC-rejected generations to the newest valid one.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Checkpoint file path. `None` disables checkpointing entirely.
    pub out: Option<std::path::PathBuf>,
    /// Minimum interval between stride checkpoints written from the
    /// poll loop. `None` with `out` set writes only explicit
    /// checkpoints (graceful shutdown / `checkpoint_now`).
    pub interval: Option<Duration>,
    /// Checkpoint generations kept on disk, including the newest.
    /// Clamped to at least 1 when writing.
    pub keep: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            out: None,
            interval: None,
            keep: 3,
        }
    }
}

/// When the host stops the search. Conditions compose: the run stops as
/// soon as *any* active condition is met. At least one condition must be
/// set.
#[derive(Clone, Debug, Default)]
pub struct StopCondition {
    /// Stop once the best energy is `≤ target_energy` (the paper's
    /// time-to-solution experiments, Table 1).
    pub target_energy: Option<Energy>,
    /// Wall-clock budget.
    pub timeout: Option<Duration>,
    /// Budget on total device flips (deterministic-ish work budget for
    /// tests and benches; checked at host poll granularity).
    pub max_flips: Option<u64>,
}

impl StopCondition {
    /// Stop at a target energy.
    #[must_use]
    pub fn target(target_energy: Energy) -> Self {
        Self {
            target_energy: Some(target_energy),
            ..Self::default()
        }
    }

    /// Stop after a wall-clock duration.
    #[must_use]
    pub fn timeout(d: Duration) -> Self {
        Self {
            timeout: Some(d),
            ..Self::default()
        }
    }

    /// Stop after a total flip budget.
    #[must_use]
    pub fn flips(max: u64) -> Self {
        Self {
            max_flips: Some(max),
            ..Self::default()
        }
    }

    /// Adds a target energy to an existing condition.
    #[must_use]
    pub fn with_target(mut self, target_energy: Energy) -> Self {
        self.target_energy = Some(target_energy);
        self
    }

    /// Adds a timeout to an existing condition.
    #[must_use]
    pub fn with_timeout(mut self, d: Duration) -> Self {
        self.timeout = Some(d);
        self
    }

    /// `true` if at least one condition is set.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.target_energy.is_some() || self.timeout.is_some() || self.max_flips.is_some()
    }
}

/// Full configuration of an ABS run.
#[derive(Clone, Debug)]
pub struct AbsConfig {
    /// Solution-pool capacity `m` (§3.1).
    pub pool_size: usize,
    /// Genetic-operator mix.
    pub ga: GaConfig,
    /// Devices and per-device execution parameters.
    pub machine: MachineConfig,
    /// Targets pushed to each device at startup, as a multiple of its
    /// block count (the devices drain one target per bulk iteration).
    pub initial_targets_per_block: usize,
    /// Stop condition (must be bounded).
    pub stop: StopCondition,
    /// Master seed; pool, GA and policies derive their streams from it.
    pub seed: u64,
    /// Warm-start solutions: seeded into the pool (unevaluated — the
    /// host never computes energies) and shipped as the very first
    /// targets, so devices evaluate them exactly via straight search.
    /// Lengths must match the problem's bit count.
    pub initial_solutions: Vec<BitVec>,
    /// Stall detection, hard timeout, and host-side energy auditing.
    pub watchdog: WatchdogConfig,
    /// Periodic metrics exposition (the final snapshot is always
    /// attached to the result).
    pub metrics: MetricsConfig,
    /// Crash-safe session checkpointing (disabled by default).
    pub checkpoint: CheckpointConfig,
}

impl Default for AbsConfig {
    fn default() -> Self {
        Self {
            pool_size: 64,
            ga: GaConfig::default(),
            machine: MachineConfig::default(),
            initial_targets_per_block: 2,
            stop: StopCondition::default(),
            seed: 0,
            initial_solutions: Vec::new(),
            watchdog: WatchdogConfig::default(),
            metrics: MetricsConfig::default(),
            checkpoint: CheckpointConfig::default(),
        }
    }
}

impl AbsConfig {
    /// A modest CPU preset for tests, examples and docs: one device,
    /// 8 blocks on up to 4 workers, short local searches.
    #[must_use]
    pub fn small() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get().min(4))
            .unwrap_or(1);
        Self {
            pool_size: 32,
            machine: MachineConfig {
                num_devices: 1,
                device: DeviceConfig {
                    blocks_override: Some(8),
                    workers,
                    local_steps: 128,
                    windows: WindowSchedule::PowersOfTwo,
                    ..DeviceConfig::default()
                },
            },
            ..Self::default()
        }
    }

    /// Applies a granted device-pool lease geometry: the session runs
    /// on exactly the leased `devices × blocks_per_device`, no more.
    /// Scheduling glue for `vgpu::DevicePool` — the server's runner
    /// leases first, then shapes the machine with this.
    pub fn apply_lease(&mut self, devices: usize, blocks_per_device: usize) {
        self.machine.num_devices = devices.max(1);
        self.machine.device.blocks_override = Some(blocks_per_device.max(1));
    }

    /// Installs warm-start seeds (prior incumbents from a
    /// [`crate::ProblemCache`] hit): they join the GA pool unevaluated
    /// and ship as the very first targets, so the bulk search resumes
    /// from the cached bests instead of random bits.
    pub fn apply_warm_seeds(&mut self, seeds: Vec<qubo::BitVec>) {
        self.initial_solutions = seeds;
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`AbsError::InvalidConfig`] on an unbounded stop
    /// condition, an empty pool, an invalid GA mix, or a device-less
    /// machine.
    pub fn validate(&self) -> Result<(), AbsError> {
        if !self.stop.is_bounded() {
            return Err(AbsError::InvalidConfig("stop condition must be bounded"));
        }
        if self.pool_size == 0 {
            return Err(AbsError::InvalidConfig(
                "pool must hold at least one solution",
            ));
        }
        self.ga.check().map_err(AbsError::InvalidConfig)?;
        if self.machine.num_devices == 0 {
            return Err(AbsError::InvalidConfig("machine needs at least one device"));
        }
        if self.checkpoint.out.is_some() && self.checkpoint.keep == 0 {
            return Err(AbsError::InvalidConfig(
                "checkpointing must keep at least one generation",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_constructors_and_composition() {
        let s = StopCondition::target(-5).with_timeout(Duration::from_secs(1));
        assert_eq!(s.target_energy, Some(-5));
        assert!(s.timeout.is_some());
        assert!(s.is_bounded());
        assert!(!StopCondition::default().is_bounded());
        assert!(StopCondition::flips(10).is_bounded());
    }

    #[test]
    fn unbounded_stop_rejected() {
        assert_eq!(
            AbsConfig::default().validate(),
            Err(AbsError::InvalidConfig("stop condition must be bounded"))
        );
    }

    #[test]
    fn empty_pool_and_deviceless_machine_rejected() {
        let mut c = AbsConfig::small();
        c.stop = StopCondition::flips(100);
        c.pool_size = 0;
        assert!(matches!(c.validate(), Err(AbsError::InvalidConfig(_))));
        let mut c = AbsConfig::small();
        c.stop = StopCondition::flips(100);
        c.machine.num_devices = 0;
        assert!(matches!(c.validate(), Err(AbsError::InvalidConfig(_))));
    }

    #[test]
    fn small_preset_is_valid_once_bounded() {
        let mut c = AbsConfig::small();
        c.stop = StopCondition::flips(100);
        c.validate().unwrap();
    }

    #[test]
    fn checkpointing_with_zero_generations_is_rejected() {
        let mut c = AbsConfig::small();
        c.stop = StopCondition::flips(100);
        c.checkpoint.out = Some("ckpt.bin".into());
        c.checkpoint.keep = 0;
        assert!(matches!(c.validate(), Err(AbsError::InvalidConfig(_))));
        c.checkpoint.keep = 1;
        c.validate().unwrap();
        // keep == 0 without a path is inert, hence fine.
        c.checkpoint.out = None;
        c.checkpoint.keep = 0;
        c.validate().unwrap();
    }

    #[test]
    fn watchdog_defaults_are_conservative() {
        let w = WatchdogConfig::default();
        assert_eq!(w.stall_poll_rounds, 100_000);
        assert!(w.hard_timeout.is_none());
        assert_eq!(w.audit_stride, 0);
    }
}
