//! Ready-made configurations for the paper's workload families.
//!
//! The paper tunes little per family — the same kernel runs everything —
//! but budget-sensitive knobs (local-search length, window ladder,
//! mutation strength) have family-appropriate values, collected here so
//! examples, the CLI and the benchmark harness agree.

use crate::config::AbsConfig;
use qubo_ga::GaConfig;
use vgpu::{DeviceConfig, MachineConfig, WindowSchedule};

fn host_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A CPU-sized base: one device, 16 blocks, workers = host cores.
/// Stop condition intentionally unset — callers must bound the run.
#[must_use]
pub fn cpu_base() -> AbsConfig {
    AbsConfig {
        machine: MachineConfig {
            num_devices: 1,
            device: DeviceConfig {
                blocks_override: Some(16),
                workers: host_workers(),
                local_steps: 256,
                windows: WindowSchedule::PowersOfTwo,
                ..DeviceConfig::default()
            },
        },
        ..AbsConfig::default()
    }
}

/// Max-Cut (G-set-style) instances: sparse graphs reward longer local
/// searches and a mid-range window ladder.
#[must_use]
pub fn maxcut() -> AbsConfig {
    let mut cfg = cpu_base();
    cfg.machine.device.local_steps = 512;
    cfg.ga = GaConfig {
        mutation_flips: 8,
        ..GaConfig::default()
    };
    cfg
}

/// TSP QUBOs: hard one-hot instances — distinct tours are ≥ 4 flips
/// apart, so mutations are sized to one "move a city" step (4 flips)
/// and the full window ladder stays in play (measured better than a
/// small-window-only cycle: escaping a penalty wall needs the greedy
/// end of the ladder to repair one-hot violations quickly).
#[must_use]
pub fn tsp(bits: usize) -> AbsConfig {
    let mut cfg = cpu_base();
    cfg.machine.device.local_steps = bits.clamp(512, 2_048);
    cfg.ga = GaConfig {
        p_mutate: 0.5,
        p_crossover: 0.3,
        p_immigrant: 0.05,
        mutation_flips: 4,
    };
    cfg
}

/// Dense synthetic random instances: the easy family — defaults work;
/// larger instances get proportionally longer local searches.
#[must_use]
pub fn random(bits: usize) -> AbsConfig {
    let mut cfg = cpu_base();
    cfg.machine.device.local_steps = (bits / 2).clamp(128, 4_096);
    cfg
}

/// The paper's machine shape: four devices whose block counts come from
/// the occupancy calculator (auto bits-per-thread), one worker thread
/// per device. On a ≥ 5-core host this is the closest CPU analogue of
/// the 4× RTX 2080 Ti testbed.
#[must_use]
pub fn paper_machine() -> AbsConfig {
    AbsConfig {
        pool_size: 256,
        machine: MachineConfig {
            num_devices: 4,
            device: DeviceConfig {
                blocks_override: None, // occupancy-derived (e.g. 1088 at n = 1k)
                workers: 1,
                local_steps: 256,
                windows: WindowSchedule::PowersOfTwo,
                ..DeviceConfig::default()
            },
        },
        ..AbsConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StopCondition;
    use crate::solver::Abs;

    #[test]
    fn presets_validate_once_bounded() {
        for mut cfg in [cpu_base(), maxcut(), tsp(225), random(1024)] {
            cfg.stop = StopCondition::flips(10);
            cfg.validate().unwrap();
        }
        let mut pm = paper_machine();
        pm.stop = StopCondition::flips(10);
        pm.validate().unwrap();
    }

    #[test]
    fn tsp_preset_scales_local_steps_with_size() {
        assert_eq!(tsp(100).machine.device.local_steps, 512); // clamped low
        assert_eq!(tsp(2601).machine.device.local_steps, 2048);
        assert_eq!(tsp(100_000).machine.device.local_steps, 2048); // clamped high
    }

    #[test]
    fn paper_machine_resolves_occupancy_blocks() {
        let cfg = paper_machine();
        assert_eq!(cfg.machine.num_devices, 4);
        assert!(cfg.machine.device.blocks_override.is_none());
        // Resolution happens per problem size; verify via a device.
        let d = vgpu::Device::new(cfg.machine.device.clone());
        assert_eq!(d.resolve_blocks(1024), Ok(1088));
    }

    #[test]
    fn maxcut_preset_actually_solves() {
        let g =
            qubo_problems::gset::generate(64, 160, qubo_problems::gset::GsetFamily::RandomUnit, 3);
        let q = qubo_problems::maxcut::to_qubo(&g).unwrap();
        let mut cfg = maxcut();
        cfg.stop = StopCondition::flips(60_000);
        let r = Abs::new(cfg).unwrap().solve(&q).unwrap();
        assert!(-r.best_energy > 0, "no cut found");
        assert_eq!(r.best_energy, q.energy(&r.best));
    }
}
