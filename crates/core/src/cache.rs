//! Content-addressed warm-start cache for repeat solves.
//!
//! The multi-start literature (and the paper's own GA host) seeds new
//! search from diverse prior incumbents rather than from random bits.
//! [`ProblemCache`] applies that per *instance*: entries are keyed by
//! [`qubo::ContentHash`] — the canonical digest of `n` plus the upper
//! triangle of `W` — and hold
//!
//! * the decoded, padded/aligned [`Qubo`] behind an [`Arc`], so a
//!   repeat submission of the same matrix reuses one allocation
//!   (request dedup of the decode product), and
//! * up to [`ProblemCache::MAX_SEEDS`] distinct best solutions seen so
//!   far, best-energy first, ready to drop into
//!   [`crate::AbsConfig::initial_solutions`].
//!
//! A hit on a *different* matrix is impossible short of a 256-bit
//! collision, and a mutated matrix of the same size digests
//! differently — the staleness regression tests in the server suite
//! pin both properties. Eviction is least-recently-used over whole
//! entries; the cache is a bounded side table, not a store of record.

use qubo::{BitVec, ContentHash, Energy, Qubo};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// What a cache hit hands the solver.
#[derive(Clone, Debug)]
pub struct CacheHit {
    /// The cached decode of the instance (same padded layout every
    /// time).
    pub problem: Arc<Qubo>,
    /// Prior incumbents, best first — the GA pool's warm seeds.
    pub seeds: Vec<BitVec>,
}

/// Point-in-time cache accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct instances currently cached.
    pub entries: usize,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evicted: u64,
}

struct CacheEntry {
    problem: Arc<Qubo>,
    /// `(energy, bits)` sorted ascending by energy then bits; distinct.
    incumbents: Vec<(Energy, BitVec)>,
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<ContentHash, CacheEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evicted: u64,
}

/// Bounded, thread-safe map from instance digest to decoded problem +
/// best-known solutions. Shared by every solver worker in the server.
pub struct ProblemCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl ProblemCache {
    /// Seeds kept per instance; diverse-but-few, matching the
    /// GA pool's appetite for warm parents.
    pub const MAX_SEEDS: usize = 8;

    /// Builds a cache holding at most `capacity` distinct instances
    /// (floored at 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
                evicted: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks the digest up, refreshing recency. A hit returns the
    /// cached allocation and the current seed set (possibly empty if
    /// no solve of this instance has finished yet).
    #[must_use]
    pub fn lookup(&self, hash: &ContentHash) -> Option<CacheHit> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(hash) {
            Some(entry) => {
                entry.last_used = clock;
                let hit = CacheHit {
                    problem: Arc::clone(&entry.problem),
                    seeds: entry
                        .incumbents
                        .iter()
                        .map(|(_, bits)| bits.clone())
                        .collect(),
                };
                inner.hits += 1;
                Some(hit)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Ensures the instance is cached (without any incumbents yet) so
    /// later submissions of the same matrix share the decode. A
    /// no-op on an existing entry beyond refreshing recency.
    pub fn admit(&self, hash: ContentHash, problem: &Arc<Qubo>) {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(entry) = inner.entries.get_mut(&hash) {
            entry.last_used = clock;
            return;
        }
        inner.entries.insert(
            hash,
            CacheEntry {
                problem: Arc::clone(problem),
                incumbents: Vec::new(),
                last_used: clock,
            },
        );
        evict_to_capacity(&mut inner, self.capacity);
    }

    /// Records a finished solve's best solution under the digest,
    /// creating the entry if needed. Keeps the [`Self::MAX_SEEDS`]
    /// best *distinct* solutions, best energy first.
    pub fn record_best(
        &self,
        hash: ContentHash,
        problem: &Arc<Qubo>,
        energy: Energy,
        best: &BitVec,
    ) {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.entries.entry(hash).or_insert_with(|| CacheEntry {
            problem: Arc::clone(problem),
            incumbents: Vec::new(),
            last_used: clock,
        });
        entry.last_used = clock;
        if !entry.incumbents.iter().any(|(_, b)| b == best) {
            entry.incumbents.push((energy, best.clone()));
            entry.incumbents.sort();
            entry.incumbents.truncate(Self::MAX_SEEDS);
        }
        evict_to_capacity(&mut inner, self.capacity);
    }

    /// Point-in-time accounting snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            entries: inner.entries.len(),
            hits: inner.hits,
            misses: inner.misses,
            evicted: inner.evicted,
        }
    }
}

fn evict_to_capacity(inner: &mut CacheInner, capacity: usize) {
    while inner.entries.len() > capacity {
        let Some(victim) = inner
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(h, _)| *h)
        else {
            return;
        };
        inner.entries.remove(&victim);
        inner.evicted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(seed: u64, n: usize) -> Arc<Qubo> {
        let mut rng = StdRng::seed_from_u64(seed);
        Arc::new(Qubo::random(n, &mut rng))
    }

    fn bits(pattern: &[u8]) -> BitVec {
        BitVec::from_bits(pattern)
    }

    #[test]
    fn miss_then_admit_then_hit_shares_the_allocation() {
        let cache = ProblemCache::new(4);
        let q = problem(1, 8);
        let h = q.content_hash();
        assert!(cache.lookup(&h).is_none());
        cache.admit(h, &q);
        let hit = cache.lookup(&h).expect("admitted entry must hit");
        assert!(Arc::ptr_eq(&hit.problem, &q), "decode must be deduped");
        assert!(hit.seeds.is_empty(), "no solve has finished yet");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn record_best_orders_dedups_and_caps_seeds() {
        let cache = ProblemCache::new(4);
        let q = problem(2, 4);
        let h = q.content_hash();
        cache.record_best(h, &q, -3, &bits(&[1, 0, 1, 0]));
        cache.record_best(h, &q, -7, &bits(&[0, 1, 1, 0]));
        // Duplicate solution is ignored even with a different energy
        // label (first write wins; solutions are the identity).
        cache.record_best(h, &q, -9, &bits(&[1, 0, 1, 0]));
        let hit = cache.lookup(&h).unwrap();
        assert_eq!(hit.seeds.len(), 2);
        assert_eq!(hit.seeds[0], bits(&[0, 1, 1, 0]), "best energy first");
        // Flood with distinct solutions: the seed list stays capped.
        for i in 0..20i64 {
            let pattern = [
                (i & 1) as u8,
                ((i >> 1) & 1) as u8,
                ((i >> 2) & 1) as u8,
                ((i >> 3) & 1) as u8,
            ];
            cache.record_best(h, &q, -i, &bits(&pattern));
        }
        let hit = cache.lookup(&h).unwrap();
        assert_eq!(hit.seeds.len(), ProblemCache::MAX_SEEDS);
    }

    #[test]
    fn mutated_matrix_same_n_misses() {
        let cache = ProblemCache::new(4);
        let q = problem(3, 8);
        cache.record_best(q.content_hash(), &q, -1, &bits(&[1; 8]));
        let mut mutated = (*q).clone();
        mutated.set(2, 5, mutated.get(2, 5).wrapping_add(1));
        assert!(
            cache.lookup(&mutated.content_hash()).is_none(),
            "different W with the same n must MISS, never serve stale seeds"
        );
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = ProblemCache::new(2);
        let a = problem(10, 4);
        let b = problem(11, 4);
        let c = problem(12, 4);
        cache.admit(a.content_hash(), &a);
        cache.admit(b.content_hash(), &b);
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        assert!(cache.lookup(&a.content_hash()).is_some());
        cache.admit(c.content_hash(), &c);
        assert!(cache.lookup(&a.content_hash()).is_some());
        assert!(cache.lookup(&b.content_hash()).is_none());
        assert!(cache.lookup(&c.content_hash()).is_some());
        assert_eq!(cache.stats().evicted, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let cache = Arc::new(ProblemCache::new(8));
        let q = problem(20, 6);
        let h = q.content_hash();
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let cache = Arc::clone(&cache);
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..50i64 {
                    cache.record_best(h, &q, -(i % 5), &bits(&[t & 1, 1, 0, 1, 0, 1]));
                    let _ = cache.lookup(&h);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let hit = cache.lookup(&h).unwrap();
        assert!(!hit.seeds.is_empty());
        assert!(hit.seeds.len() <= ProblemCache::MAX_SEEDS);
    }
}
