//! Adaptive Bulk Search (ABS): a CPU-host + (virtual) multi-GPU framework
//! for quadratic unconstrained binary optimization.
//!
//! This crate ties the workspace together into the system of the paper's
//! Fig. 5: a host thread runs the genetic algorithm of [`qubo_ga`] over a
//! sorted, distinct solution pool, while every virtual device of
//! [`vgpu`] runs hundreds of asynchronous search blocks, each
//! alternating a straight search toward a GA-generated target with a
//! forced-flip local search ([`qubo_search`]), all at O(1) search
//! efficiency.
//!
//! # Quickstart
//!
//! ```
//! use abs::{Abs, AbsConfig, StopCondition};
//! use qubo::Qubo;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let problem = Qubo::random(64, &mut rng);
//!
//! let mut config = AbsConfig::small(); // modest CPU preset
//! config.stop = StopCondition::flips(200_000);
//! let result = Abs::new(config)
//!     .expect("valid config")
//!     .solve(&problem)
//!     .expect("solve");
//!
//! assert_eq!(result.best_energy, problem.energy(&result.best));
//! assert!(result.best_energy < 0);
//! assert!(!result.degraded);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod presets;
pub mod session;
pub mod solver;
pub mod stats;

pub use abs_telemetry::MetricsSnapshot;
pub use cache::{CacheHit, CacheStats, ProblemCache};
pub use checkpoint::{load_checkpoint, write_checkpoint, Checkpoint, DeviceBaseline};
pub use config::{AbsConfig, CheckpointConfig, MetricsConfig, StopCondition, WatchdogConfig};
pub use error::AbsError;
pub use session::{AbsSession, SessionStatus};
pub use solver::Abs;
pub use stats::{write_metrics, DeviceReport, DeviceStatus, HistoryPoint, SolveResult};
