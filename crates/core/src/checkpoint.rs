//! Crash-safe session checkpoints (DESIGN.md §11).
//!
//! A checkpoint is the host's durable snapshot of everything a resumed
//! session needs and nothing a device can recompute: the GA pool, the
//! two host RNG streams, the incumbent best with its exact audited
//! energy and history, cumulative host counters, and one accounting
//! baseline per device. The format is a versioned binary file:
//!
//! ```text
//! [ header | section × section_count | file CRC32 ]
//! header   = magic "ABSCKPT1" · version u32 · n u64 · seed u64
//!            · generation u64 · section_count u32 · header CRC32
//! section  = id u32 · payload_len u64 · payload · payload CRC32
//! ```
//!
//! All integers are little-endian. The trailing file CRC32 covers every
//! preceding byte, so *any* single-byte corruption — header, section
//! framing, payload, even the per-section CRCs themselves — is detected
//! before a single field is parsed; the header and per-section CRCs then
//! localize damage for diagnostics. Decoding never panics on corrupt
//! input: every read is bounds-checked and every failure is a clean
//! [`AbsError::Checkpoint`].
//!
//! Durability follows the classic atomic-publish protocol: encode, write
//! `<path>.tmp`, `fsync`, rotate the generation chain (`path` →
//! `path.1` → … keeping the last K), rename tmp over `path`, then
//! best-effort fsync the directory. A crash at any instant leaves the
//! previous generation readable. [`load_checkpoint`] probes `path`,
//! `path.1`, … and returns the newest generation that passes CRC,
//! counting the rejected ones.
//!
//! The host-side I/O faults of [`vgpu::FaultPlan`] (short write, torn
//! rename, bit flip on read) hook into [`write_checkpoint`] /
//! [`load_checkpoint`] so the crash-consistency story is rehearsed by
//! tests, not just asserted.

use crate::error::AbsError;
use crate::stats::HistoryPoint;
use qubo::{BitVec, Energy};
use qubo_ga::{OperatorUsage, PoolEntry, PoolOps};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use vgpu::FaultPlan;

/// File magic: "ABSCKPT1".
pub const MAGIC: [u8; 8] = *b"ABSCKPT1";
/// Format version written by this build. v2 added the cumulative flip
/// count to every history point.
pub const VERSION: u32 = 2;

/// Generations probed by [`load_checkpoint`] before giving up
/// (`path` itself plus `path.1` … `path.{MAX_GENERATIONS-1}`).
const MAX_GENERATIONS: usize = 16;

/// Decoded solution-vector length ceiling — far above any supported
/// problem size; a backstop against absurd allocations should corrupt
/// data ever slip past the CRCs.
const MAX_BITS: u64 = 1 << 24;

/// Decoded collection-length ceiling (pool entries, history points,
/// device baselines), same backstop rationale as [`MAX_BITS`].
const MAX_ITEMS: u64 = 1 << 24;

const SEC_RNG: u32 = 1;
const SEC_POOL: u32 = 2;
const SEC_BEST: u32 = 3;
const SEC_COUNTERS: u32 = 4;
const SEC_DEVICES: u32 = 5;
const SECTION_COUNT: u32 = 5;

/// Accounting carried over from the previous lives of a resumed device:
/// the device's cumulative totals at the moment the checkpoint was
/// taken (at a quiesce boundary, so they are mutually consistent — on
/// the dense arm `evaluated == (flips + units) · (n + 1)` holds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceBaseline {
    /// Total bit flips.
    pub flips: u64,
    /// Live search units (blocks) registered minus retired.
    pub units: u64,
    /// Total solution evaluations ([`vgpu::GlobalMem::total_evaluated`]).
    pub evaluated: u64,
    /// Bulk iterations completed.
    pub iterations: u64,
    /// Results accepted by the device's progress counter.
    pub results: u64,
    /// Malformed records rejected device-side.
    pub rejected_records: u64,
    /// Targets evicted by target-buffer overflow.
    pub dropped_targets: u64,
    /// Records lost to result-buffer overflow.
    pub overflow_results: u64,
    /// Telemetry events ever written to the device's ring.
    pub events_written: u64,
    /// Telemetry events lost to ring overwrite.
    pub events_overwritten: u64,
    /// Records the *host* audited and rejected for this device.
    pub host_rejected: u64,
    /// Targets requeued away from this device by the watchdog.
    pub requeued: u64,
}

/// Everything a resumed session restores. See the module docs for the
/// wire layout; field order here matches section order there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Problem bit count (resume refuses a different problem size).
    pub n: usize,
    /// Master seed of the originating run (informational; the RNG
    /// *streams* below are what resume actually uses).
    pub seed: u64,
    /// Write generation, 1-based: how many checkpoints this session
    /// chain has published, exposed as the `abs_session_generation`
    /// gauge.
    pub generation: u64,
    /// xoshiro256++ state of the host's master RNG.
    pub master_rng: [u64; 4],
    /// xoshiro256++ state of the GA target generator's RNG.
    pub gen_rng: [u64; 4],
    /// GA operator usage counters.
    pub usage: OperatorUsage,
    /// Pool capacity `m`.
    pub pool_capacity: usize,
    /// Pool entries, ascending by `(energy, bits)` as the pool stores
    /// them.
    pub pool_entries: Vec<PoolEntry>,
    /// Pool insertion statistics.
    pub pool_ops: PoolOps,
    /// Incumbent best solution with its exact audited energy.
    pub best: Option<(BitVec, Energy)>,
    /// Whether the target energy had been reached.
    pub reached_target: bool,
    /// Cumulative time-to-target, if the target was reached.
    pub time_to_target_ns: Option<u128>,
    /// Best-energy improvement history (cumulative elapsed timestamps).
    pub history: Vec<HistoryPoint>,
    /// Results received by the host, cumulative.
    pub received: u64,
    /// Results inserted into the pool, cumulative.
    pub inserted: u64,
    /// Cumulative solve wall-clock at checkpoint time.
    pub elapsed_ns: u128,
    /// One accounting baseline per device, in device order.
    pub devices: Vec<DeviceBaseline>,
}

// ---- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) --------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 of `bytes` (IEEE polynomial, the zlib/PNG variant).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- encoding ----------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bitvec(out: &mut Vec<u8>, x: &BitVec) {
    put_u64(out, x.len() as u64);
    for &w in x.words() {
        put_u64(out, w);
    }
}

fn put_section(out: &mut Vec<u8>, id: u32, payload: &[u8]) {
    put_u32(out, id);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u32(out, crc32(payload));
}

/// Serializes a checkpoint to its wire format.
#[must_use]
pub fn encode(ckpt: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, ckpt.n as u64);
    put_u64(&mut out, ckpt.seed);
    put_u64(&mut out, ckpt.generation);
    put_u32(&mut out, SECTION_COUNT);
    let c = crc32(&out);
    put_u32(&mut out, c);

    let mut p = Vec::new();
    for &w in &ckpt.master_rng {
        put_u64(&mut p, w);
    }
    for &w in &ckpt.gen_rng {
        put_u64(&mut p, w);
    }
    put_u64(&mut p, ckpt.usage.mutate);
    put_u64(&mut p, ckpt.usage.crossover);
    put_u64(&mut p, ckpt.usage.copy);
    put_u64(&mut p, ckpt.usage.immigrant);
    put_section(&mut out, SEC_RNG, &p);

    p.clear();
    put_u64(&mut p, ckpt.pool_capacity as u64);
    put_u64(&mut p, ckpt.pool_entries.len() as u64);
    for e in &ckpt.pool_entries {
        put_i64(&mut p, e.energy);
        put_bitvec(&mut p, &e.x);
    }
    put_u64(&mut p, ckpt.pool_ops.inserted);
    put_u64(&mut p, ckpt.pool_ops.duplicate);
    put_u64(&mut p, ckpt.pool_ops.worse);
    put_section(&mut out, SEC_POOL, &p);

    p.clear();
    match &ckpt.best {
        Some((x, e)) => {
            put_u8(&mut p, 1);
            put_i64(&mut p, *e);
            put_bitvec(&mut p, x);
        }
        None => put_u8(&mut p, 0),
    }
    put_u8(&mut p, u8::from(ckpt.reached_target));
    match ckpt.time_to_target_ns {
        Some(ns) => {
            put_u8(&mut p, 1);
            put_u128(&mut p, ns);
        }
        None => put_u8(&mut p, 0),
    }
    put_u64(&mut p, ckpt.history.len() as u64);
    for h in &ckpt.history {
        put_u128(&mut p, h.elapsed_ns);
        put_i64(&mut p, h.energy);
        put_u64(&mut p, h.flips);
    }
    put_section(&mut out, SEC_BEST, &p);

    p.clear();
    put_u64(&mut p, ckpt.received);
    put_u64(&mut p, ckpt.inserted);
    put_u128(&mut p, ckpt.elapsed_ns);
    put_section(&mut out, SEC_COUNTERS, &p);

    p.clear();
    put_u64(&mut p, ckpt.devices.len() as u64);
    for d in &ckpt.devices {
        for v in [
            d.flips,
            d.units,
            d.evaluated,
            d.iterations,
            d.results,
            d.rejected_records,
            d.dropped_targets,
            d.overflow_results,
            d.events_written,
            d.events_overwritten,
            d.host_rejected,
            d.requeued,
        ] {
            put_u64(&mut p, v);
        }
    }
    put_section(&mut out, SEC_DEVICES, &p);

    let c = crc32(&out);
    put_u32(&mut out, c);
    out
}

// ---- decoding ----------------------------------------------------------

fn corrupt(what: &str) -> AbsError {
    AbsError::Checkpoint(format!("corrupted checkpoint: {what}"))
}

/// A bounds-checked little-endian reader over one CRC-verified slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], AbsError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("truncated field"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn u8(&mut self) -> Result<u8, AbsError> {
        let b = self.take(1)?;
        Ok(b[0])
    }

    fn u32(&mut self) -> Result<u32, AbsError> {
        let b = self.take(4)?;
        // crc: this reader only runs over slices whose CRC32 was
        // verified by `decode` before any field is parsed.
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, AbsError> {
        let b = self.take(8)?;
        // crc: slice verified by `decode` before parsing (see u32).
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self) -> Result<i64, AbsError> {
        let b = self.take(8)?;
        // crc: slice verified by `decode` before parsing (see u32).
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn u128(&mut self) -> Result<u128, AbsError> {
        let b = self.take(16)?;
        // crc: slice verified by `decode` before parsing (see u32).
        Ok(u128::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12], b[13],
            b[14], b[15],
        ]))
    }

    fn rng_state(&mut self) -> Result<[u64; 4], AbsError> {
        Ok([self.u64()?, self.u64()?, self.u64()?, self.u64()?])
    }

    fn bitvec(&mut self) -> Result<BitVec, AbsError> {
        let len = self.u64()?;
        if len == 0 || len > MAX_BITS {
            return Err(corrupt("solution bit-length out of range"));
        }
        let len = len as usize;
        let words = len.div_ceil(64);
        let mut x = BitVec::zeros(len);
        for w in 0..words {
            let word = self.u64()?;
            for b in 0..64 {
                let i = w * 64 + b;
                if (word >> b) & 1 == 1 {
                    if i >= len {
                        return Err(corrupt("solution has set bits past its length"));
                    }
                    x.set(i, true);
                }
            }
        }
        Ok(x)
    }
}

/// Deserializes a checkpoint, verifying the file CRC, the header CRC and
/// every section CRC before parsing a single field.
///
/// # Errors
/// [`AbsError::Checkpoint`] on any truncation, CRC mismatch, unknown
/// version/section, or out-of-range field — never a panic.
pub fn decode(bytes: &[u8]) -> Result<Checkpoint, AbsError> {
    const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 4 + 4;
    if bytes.len() < HEADER_LEN + 4 {
        return Err(corrupt("file shorter than header"));
    }
    // Whole-file integrity first: any flipped byte anywhere (framing,
    // payloads, even the embedded CRCs) fails here with one clean error.
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let mut r = Reader::new(tail);
    // crc: the file CRC field itself, checked against the recomputation.
    let stored = r.u32()?;
    if crc32(body) != stored {
        return Err(corrupt("file CRC32 mismatch"));
    }

    let (head, mut rest) = body.split_at(HEADER_LEN);
    let mut r = Reader::new(head);
    if r.take(8)? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(AbsError::Checkpoint(format!(
            "unsupported checkpoint version {version} (this build reads {VERSION})"
        )));
    }
    let n = r.u64()?;
    if n == 0 || n > MAX_BITS {
        return Err(corrupt("problem size out of range"));
    }
    let seed = r.u64()?;
    let generation = r.u64()?;
    let section_count = r.u32()?;
    let header_crc = r.u32()?;
    if crc32(&head[..HEADER_LEN - 4]) != header_crc {
        return Err(corrupt("header CRC32 mismatch"));
    }
    if section_count != SECTION_COUNT {
        return Err(corrupt("unexpected section count"));
    }

    // Decoded payload of the BEST section: incumbent, reached-target
    // flag, time-to-target, history.
    type BestSection = (
        Option<(BitVec, Energy)>,
        bool,
        Option<u128>,
        Vec<HistoryPoint>,
    );
    let mut rng: Option<([u64; 4], [u64; 4], OperatorUsage)> = None;
    let mut pool: Option<(usize, Vec<PoolEntry>, PoolOps)> = None;
    let mut best: Option<BestSection> = None;
    let mut counters: Option<(u64, u64, u128)> = None;
    let mut devices: Option<Vec<DeviceBaseline>> = None;

    for _ in 0..section_count {
        let mut fr = Reader::new(rest);
        let id = fr.u32()?;
        let len = fr.u64()?;
        let len = usize::try_from(len).map_err(|_| corrupt("section length out of range"))?;
        let payload = fr.take(len)?;
        let section_crc = fr.u32()?;
        if crc32(payload) != section_crc {
            return Err(corrupt("section CRC32 mismatch"));
        }
        rest = &rest[fr.pos..];
        let mut r = Reader::new(payload);
        match id {
            SEC_RNG => {
                let master = r.rng_state()?;
                let gen = r.rng_state()?;
                let usage = OperatorUsage {
                    mutate: r.u64()?,
                    crossover: r.u64()?,
                    copy: r.u64()?,
                    immigrant: r.u64()?,
                };
                rng = Some((master, gen, usage));
            }
            SEC_POOL => {
                let capacity = r.u64()?;
                if capacity == 0 || capacity > MAX_ITEMS {
                    return Err(corrupt("pool capacity out of range"));
                }
                let count = r.u64()?;
                if count > capacity {
                    return Err(corrupt("pool count exceeds capacity"));
                }
                let mut entries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let energy = r.i64()?;
                    let x = r.bitvec()?;
                    entries.push(PoolEntry { energy, x });
                }
                let ops = PoolOps {
                    inserted: r.u64()?,
                    duplicate: r.u64()?,
                    worse: r.u64()?,
                };
                pool = Some((capacity as usize, entries, ops));
            }
            SEC_BEST => {
                let incumbent = match r.u8()? {
                    0 => None,
                    1 => {
                        let e = r.i64()?;
                        Some((r.bitvec()?, e))
                    }
                    _ => return Err(corrupt("best-present flag out of range")),
                };
                let reached = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(corrupt("reached-target flag out of range")),
                };
                let ttt = match r.u8()? {
                    0 => None,
                    1 => Some(r.u128()?),
                    _ => return Err(corrupt("time-to-target flag out of range")),
                };
                let count = r.u64()?;
                if count > MAX_ITEMS {
                    return Err(corrupt("history length out of range"));
                }
                let mut history = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let elapsed_ns = r.u128()?;
                    let energy = r.i64()?;
                    let flips = r.u64()?;
                    history.push(HistoryPoint {
                        elapsed_ns,
                        energy,
                        flips,
                    });
                }
                best = Some((incumbent, reached, ttt, history));
            }
            SEC_COUNTERS => {
                counters = Some((r.u64()?, r.u64()?, r.u128()?));
            }
            SEC_DEVICES => {
                let count = r.u64()?;
                if count == 0 || count > MAX_ITEMS {
                    return Err(corrupt("device count out of range"));
                }
                let mut devs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    devs.push(DeviceBaseline {
                        flips: r.u64()?,
                        units: r.u64()?,
                        evaluated: r.u64()?,
                        iterations: r.u64()?,
                        results: r.u64()?,
                        rejected_records: r.u64()?,
                        dropped_targets: r.u64()?,
                        overflow_results: r.u64()?,
                        events_written: r.u64()?,
                        events_overwritten: r.u64()?,
                        host_rejected: r.u64()?,
                        requeued: r.u64()?,
                    });
                }
                devices = Some(devs);
            }
            _ => return Err(corrupt("unknown section id")),
        }
        if !r.done() {
            return Err(corrupt("trailing bytes in section"));
        }
    }
    if !rest.is_empty() {
        return Err(corrupt("trailing bytes after sections"));
    }

    let (master_rng, gen_rng, usage) = rng.ok_or_else(|| corrupt("missing RNG section"))?;
    let (pool_capacity, pool_entries, pool_ops) =
        pool.ok_or_else(|| corrupt("missing pool section"))?;
    let (incumbent, reached_target, time_to_target_ns, history) =
        best.ok_or_else(|| corrupt("missing best section"))?;
    let (received, inserted, elapsed_ns) =
        counters.ok_or_else(|| corrupt("missing counters section"))?;
    let devices = devices.ok_or_else(|| corrupt("missing devices section"))?;

    Ok(Checkpoint {
        n: n as usize,
        seed,
        generation,
        master_rng,
        gen_rng,
        usage,
        pool_capacity,
        pool_entries,
        pool_ops,
        best: incumbent,
        reached_target,
        time_to_target_ns,
        history,
        received,
        inserted,
        elapsed_ns,
        devices,
    })
}

// ---- atomic publish / generation-chain load ----------------------------

fn with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

fn generation_path(path: &Path, i: usize) -> PathBuf {
    with_suffix(path, &format!(".{i}"))
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> AbsError {
    AbsError::Checkpoint(format!("{what} {}: {e}", path.display()))
}

/// Shifts the generation chain down one slot: `path.{keep-1}` falls off,
/// `path` becomes `path.1`. Missing links are skipped.
fn rotate(path: &Path, keep: usize) -> Result<(), AbsError> {
    if keep <= 1 {
        return Ok(());
    }
    for i in (1..keep.saturating_sub(1)).rev() {
        let from = generation_path(path, i);
        let to = generation_path(path, i + 1);
        match fs::rename(&from, &to) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("cannot rotate", &from, &e)),
        }
    }
    match fs::rename(path, generation_path(path, 1)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(io_err("cannot rotate", path, &e)),
    }
}

/// Atomically publishes `ckpt` at `path`, keeping the previous `keep - 1`
/// generations as `path.1` … The `fault` plan (keyed by `write_index`)
/// can inject a short write or a torn rename; both simulate crashes, so
/// they return `Ok` — the damage is discovered, by design, only at
/// [`load_checkpoint`] time. A planned write *denial*
/// ([`vgpu::FaultKind::DenyWrite`]) is different: it models a full disk
/// or revoked permission and returns the same [`AbsError::Checkpoint`]
/// a real filesystem refusal would, before any file is touched.
///
/// # Errors
/// [`AbsError::Checkpoint`] on a real (or injected) filesystem error.
pub fn write_checkpoint(
    path: &Path,
    ckpt: &Checkpoint,
    keep: usize,
    fault: Option<&FaultPlan>,
    write_index: u64,
) -> Result<(), AbsError> {
    if fault.is_some_and(|f| f.take_deny_write(write_index)) {
        let denied = std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "injected write denial",
        );
        return Err(io_err("cannot create", path, &denied));
    }
    let mut bytes = encode(ckpt);
    if let Some(keep_bytes) = fault.and_then(|f| f.take_short_write(write_index)) {
        // Simulated crash mid-write: only a prefix reaches the disk.
        bytes.truncate(keep_bytes);
    }
    let tmp = with_suffix(path, ".tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("cannot create", &tmp, &e))?;
        f.write_all(&bytes)
            .map_err(|e| io_err("cannot write", &tmp, &e))?;
        f.sync_all().map_err(|e| io_err("cannot fsync", &tmp, &e))?;
    }
    if fault.is_some_and(|f| f.take_torn_rename(write_index)) {
        // Simulated crash between fsync and rename: the tmp file is left
        // behind exactly as a real crash would leave it, and the
        // destination keeps the previous generation.
        return Ok(());
    }
    rotate(path, keep.max(1))?;
    fs::rename(&tmp, path).map_err(|e| io_err("cannot publish", path, &e))?;
    // Best-effort directory fsync so the rename itself is durable.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads the newest generation at `path` that passes CRC validation,
/// probing `path`, `path.1`, `path.2`, … and counting rejected (corrupt
/// or truncated) generations on the way. The `fault` plan can flip one
/// bit of a read, keyed by the read's ordinal within this call.
///
/// # Errors
/// [`AbsError::Checkpoint`] when no generation validates: the last
/// decode error if at least one candidate existed, otherwise "no
/// checkpoint found".
pub fn load_checkpoint(
    path: &Path,
    fault: Option<&FaultPlan>,
) -> Result<(Checkpoint, u64), AbsError> {
    let mut rejected = 0u64;
    let mut reads = 0u64;
    let mut last_err: Option<AbsError> = None;
    for i in 0..MAX_GENERATIONS {
        let candidate = if i == 0 {
            path.to_path_buf()
        } else {
            generation_path(path, i)
        };
        let mut bytes = match fs::read(&candidate) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(io_err("cannot read", &candidate, &e)),
        };
        if let Some(bit) = fault.and_then(|f| f.take_read_flip(reads)) {
            if !bytes.is_empty() {
                let bit = bit % (bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
        }
        reads += 1;
        match decode(&bytes) {
            Ok(ckpt) => return Ok((ckpt, rejected)),
            Err(e) => {
                rejected += 1;
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| {
        AbsError::Checkpoint(format!("no checkpoint found at {}", path.display()))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        BitVec::from_bit_str(s).unwrap()
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            n: 6,
            seed: 42,
            generation: 3,
            master_rng: [1, 2, 3, 4],
            gen_rng: [5, 6, 7, 8],
            usage: OperatorUsage {
                mutate: 10,
                crossover: 20,
                copy: 3,
                immigrant: 1,
            },
            pool_capacity: 8,
            pool_entries: vec![
                PoolEntry {
                    energy: -9,
                    x: bv("110010"),
                },
                PoolEntry {
                    energy: -4,
                    x: bv("000111"),
                },
            ],
            pool_ops: PoolOps {
                inserted: 5,
                duplicate: 2,
                worse: 7,
            },
            best: Some((bv("110010"), -9)),
            reached_target: false,
            time_to_target_ns: None,
            history: vec![
                HistoryPoint {
                    elapsed_ns: 1_000,
                    energy: -4,
                    flips: 64,
                },
                HistoryPoint {
                    elapsed_ns: 2_500,
                    energy: -9,
                    flips: 160,
                },
            ],
            received: 17,
            inserted: 5,
            elapsed_ns: 123_456_789,
            devices: vec![
                DeviceBaseline {
                    flips: 100,
                    units: 4,
                    evaluated: 728,
                    iterations: 25,
                    results: 17,
                    ..DeviceBaseline::default()
                },
                DeviceBaseline {
                    flips: 90,
                    units: 3,
                    evaluated: 651,
                    iterations: 23,
                    results: 15,
                    rejected_records: 1,
                    host_rejected: 1,
                    requeued: 2,
                    ..DeviceBaseline::default()
                },
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn codec_round_trips() {
        let ckpt = sample();
        let bytes = encode(&ckpt);
        assert_eq!(decode(&bytes).unwrap(), ckpt);
        // Edge shapes: empty pool/history, no best, target reached.
        let mut edge = sample();
        edge.pool_entries.clear();
        edge.history.clear();
        edge.best = None;
        edge.reached_target = true;
        edge.time_to_target_ns = Some(u128::from(u64::MAX) + 7);
        assert_eq!(decode(&encode(&edge)).unwrap(), edge);
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, AbsError::Checkpoint(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x40;
            let err = decode(&evil).unwrap_err();
            assert!(
                matches!(err, AbsError::Checkpoint(_)),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn wrong_version_is_named_in_the_error() {
        let mut ckpt = sample();
        ckpt.generation = 1;
        let mut bytes = encode(&ckpt);
        // Bump the version field (offset 8) and re-stamp both CRCs so
        // only the version check can object.
        bytes[8] = 9;
        const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 4 + 4;
        let hcrc = crc32(&bytes[..HEADER_LEN - 4]);
        bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&hcrc.to_le_bytes());
        let end = bytes.len() - 4;
        let fcrc = crc32(&bytes[..end]);
        bytes[end..].copy_from_slice(&fcrc.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version 9"), "{err}");
    }

    #[test]
    fn atomic_publish_rotates_generations() {
        let dir = std::env::temp_dir().join(format!("abs-ckpt-rotate-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.ckpt");
        for generation in 1..=4u64 {
            let mut ckpt = sample();
            ckpt.generation = generation;
            write_checkpoint(&path, &ckpt, 3, None, generation - 1).unwrap();
        }
        // keep = 3: path (gen 4), path.1 (gen 3), path.2 (gen 2).
        let (newest, rejected) = load_checkpoint(&path, None).unwrap();
        assert_eq!((newest.generation, rejected), (4, 0));
        let older = decode(&fs::read(generation_path(&path, 1)).unwrap()).unwrap();
        assert_eq!(older.generation, 3);
        let oldest = decode(&fs::read(generation_path(&path, 2)).unwrap()).unwrap();
        assert_eq!(oldest.generation, 2);
        assert!(!generation_path(&path, 3).exists(), "gen 1 rotated away");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_falls_back_to_previous_generation() {
        let dir = std::env::temp_dir().join(format!("abs-ckpt-short-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.ckpt");
        let plan = FaultPlan::new().short_write(1, 40);
        let mut ckpt = sample();
        ckpt.generation = 1;
        write_checkpoint(&path, &ckpt, 3, Some(&plan), 0).unwrap();
        ckpt.generation = 2;
        // The second write is torn short: its published file cannot pass
        // CRC, so load falls back to generation 1 and counts one reject.
        write_checkpoint(&path, &ckpt, 3, Some(&plan), 1).unwrap();
        let (restored, rejected) = load_checkpoint(&path, None).unwrap();
        assert_eq!((restored.generation, rejected), (1, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_rename_keeps_the_previous_generation_published() {
        let dir = std::env::temp_dir().join(format!("abs-ckpt-torn-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.ckpt");
        let plan = FaultPlan::new().torn_rename(1);
        let mut ckpt = sample();
        ckpt.generation = 1;
        write_checkpoint(&path, &ckpt, 3, Some(&plan), 0).unwrap();
        ckpt.generation = 2;
        write_checkpoint(&path, &ckpt, 3, Some(&plan), 1).unwrap();
        // The crash happened before rotation *and* rename: generation 1
        // is still the published file, with nothing rejected.
        let (restored, rejected) = load_checkpoint(&path, None).unwrap();
        assert_eq!((restored.generation, rejected), (1, 0));
        // The torn tmp file is left on disk, as after a real crash.
        assert!(with_suffix(&path, ".tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_on_read_rejects_to_the_older_generation() {
        let dir = std::env::temp_dir().join(format!("abs-ckpt-flip-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.ckpt");
        let mut ckpt = sample();
        ckpt.generation = 1;
        write_checkpoint(&path, &ckpt, 3, None, 0).unwrap();
        ckpt.generation = 2;
        write_checkpoint(&path, &ckpt, 3, None, 1).unwrap();
        // Read 0 (the newest generation) is corrupted in flight; the
        // loader must reject it by CRC and fall back to generation 1.
        let plan = FaultPlan::new().bit_flip_on_read(0, 1_000_003);
        let (restored, rejected) = load_checkpoint(&path, Some(&plan)).unwrap();
        assert_eq!((restored.generation, rejected), (1, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_generations_corrupt_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("abs-ckpt-dead-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.ckpt");
        assert!(matches!(
            load_checkpoint(&path, None),
            Err(AbsError::Checkpoint(_))
        ));
        fs::write(&path, b"not a checkpoint").unwrap();
        assert!(matches!(
            load_checkpoint(&path, None),
            Err(AbsError::Checkpoint(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
