//! Recoverable errors of the ABS host.
//!
//! User-input problems (invalid configuration, mismatched warm starts,
//! infeasible launch configurations) and total hardware failure are
//! reported as values rather than panics, so callers — the CLI in
//! particular — can turn them into clear messages and exit codes.

use std::fmt;
use vgpu::ResolveError;

/// Everything that can go wrong constructing or running [`crate::Abs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsError {
    /// The configuration failed validation (see
    /// [`crate::AbsConfig::validate`]).
    InvalidConfig(&'static str),
    /// A warm-start solution's bit-length does not match the problem.
    WarmStartLength {
        /// The problem's bit count.
        expected: usize,
        /// The offending warm start's bit count.
        got: usize,
    },
    /// A device cannot derive a launch configuration for this problem
    /// size.
    Occupancy {
        /// Index of the device that failed to resolve.
        device: usize,
        /// The occupancy calculator's refusal.
        source: ResolveError,
    },
    /// Every device died or stalled before producing a single result;
    /// there is no solution to report.
    AllDevicesFailed,
    /// The watchdog's hard timeout expired before any device produced a
    /// result.
    NoResult,
    /// A checkpoint could not be written, or no on-disk generation
    /// survived CRC validation at restore time.
    Checkpoint(String),
}

impl AbsError {
    /// `true` for errors caused by caller input (configuration, warm
    /// starts, problem size) rather than by the run itself — the CLI
    /// maps these to exit code 2 (usage) and the rest to 1 (runtime).
    #[must_use]
    pub fn is_usage(&self) -> bool {
        matches!(
            self,
            Self::InvalidConfig(_) | Self::WarmStartLength { .. } | Self::Occupancy { .. }
        )
    }
}

impl fmt::Display for AbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::WarmStartLength { expected, got } => write!(
                f,
                "warm-start solution has {got} bits, the problem has {expected}"
            ),
            Self::Occupancy { device, source } => {
                write!(f, "device {device} cannot launch: {source}")
            }
            Self::AllDevicesFailed => {
                write!(f, "all devices failed before producing a result")
            }
            Self::NoResult => write!(
                f,
                "watchdog hard timeout expired before any device produced a result"
            ),
            Self::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for AbsError {}

impl From<AbsError> for String {
    fn from(e: AbsError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_classification_matches_cli_exit_codes() {
        assert!(AbsError::InvalidConfig("x").is_usage());
        assert!(AbsError::WarmStartLength {
            expected: 8,
            got: 4
        }
        .is_usage());
        assert!(!AbsError::AllDevicesFailed.is_usage());
        assert!(!AbsError::NoResult.is_usage());
        // Checkpoint failures are runtime conditions, not caller mistakes.
        assert!(!AbsError::Checkpoint("torn".into()).is_usage());
    }

    #[test]
    fn messages_name_the_offending_numbers() {
        let e = AbsError::WarmStartLength {
            expected: 16,
            got: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("8 bits"));
        assert!(msg.contains("16"));
    }
}
