//! Results and statistics of an ABS run.

use qubo::{BitVec, Energy};
use serde::Serialize;
use std::time::Duration;

/// One point of the best-energy trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct HistoryPoint {
    /// Time since the start of the run, in nanoseconds (serialized as an
    /// integer for stable JSON).
    pub elapsed_ns: u128,
    /// Best energy known at that time.
    pub energy: Energy,
}

/// Outcome of [`crate::Abs::solve`].
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// Best solution found.
    pub best: BitVec,
    /// Its energy (always exact — energies travel with solutions from
    /// the devices, which track them incrementally and exactly).
    pub best_energy: Energy,
    /// Whether the target energy (if any) was reached.
    pub reached_target: bool,
    /// Time at which the target was first reached (the paper's
    /// *time-to-solution*, Table 1).
    pub time_to_target: Option<Duration>,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Total device flips.
    pub total_flips: u64,
    /// Total solutions evaluated (`flips × (n + 1)`).
    pub evaluated: u64,
    /// Solutions evaluated per second — the paper's *search rate* (§4.3).
    pub search_rate: f64,
    /// Bulk-search iterations completed across all blocks.
    pub iterations: u64,
    /// Results drained from devices.
    pub results_received: u64,
    /// Results that entered the pool (not duplicates, not worse than the
    /// whole pool).
    pub results_inserted: u64,
    /// Best-energy improvement trace.
    pub history: Vec<HistoryPoint>,
}

impl SolveResult {
    /// Fraction of device results that were novel enough to enter the
    /// pool — a diagnostic of GA diversity.
    #[must_use]
    pub fn insertion_ratio(&self) -> f64 {
        if self.results_received == 0 {
            0.0
        } else {
            self.results_inserted as f64 / self.results_received as f64
        }
    }

    /// Renders the best-energy trace as CSV (`elapsed_s,energy` with a
    /// header), for plotting convergence curves outside Rust.
    #[must_use]
    pub fn history_csv(&self) -> String {
        let mut out = String::from("elapsed_s,energy\n");
        for p in &self.history {
            out.push_str(&format!("{:.9},{}\n", p.elapsed_ns as f64 / 1e9, p.energy));
        }
        out
    }

    /// Writes the best-energy trace to a CSV file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_history_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.history_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(received: u64, inserted: u64) -> SolveResult {
        SolveResult {
            best: BitVec::zeros(4),
            best_energy: 0,
            reached_target: false,
            time_to_target: None,
            elapsed: Duration::from_millis(10),
            total_flips: 100,
            evaluated: 500,
            search_rate: 5e4,
            iterations: 10,
            results_received: received,
            results_inserted: inserted,
            history: vec![],
        }
    }

    #[test]
    fn insertion_ratio_handles_zero() {
        assert_eq!(dummy(0, 0).insertion_ratio(), 0.0);
        assert!((dummy(10, 4).insertion_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn history_csv_renders_and_roundtrips_through_disk() {
        let mut r = dummy(1, 1);
        r.history = vec![
            HistoryPoint {
                elapsed_ns: 1_000_000,
                energy: -5,
            },
            HistoryPoint {
                elapsed_ns: 2_500_000,
                energy: -9,
            },
        ];
        let csv = r.history_csv();
        assert_eq!(csv, "elapsed_s,energy\n0.001000000,-5\n0.002500000,-9\n");
        let path = std::env::temp_dir().join("abs-stats-test-history.csv");
        r.write_history_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), csv);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn history_point_serializes_stably() {
        let p = HistoryPoint {
            elapsed_ns: 1_500,
            energy: -42,
        };
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, r#"{"elapsed_ns":1500,"energy":-42}"#);
    }
}
