//! Results and statistics of an ABS run.

use qubo::{BitVec, Energy};
use serde::Serialize;
use std::time::Duration;

/// One point of the best-energy trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct HistoryPoint {
    /// Time since the start of the run, in nanoseconds (serialized as an
    /// integer for stable JSON).
    pub elapsed_ns: u128,
    /// Best energy known at that time.
    pub energy: Energy,
    /// Cumulative machine-wide device flips when this best arrived —
    /// the work-budget coordinate of the improvement trace (wall-clock
    /// is scheduler-dependent; flips are not). Cumulative across
    /// resumes, like `elapsed_ns`.
    pub flips: u64,
}

/// Health of one device as observed by the host at the end of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceStatus {
    /// All blocks ran to the end.
    Healthy,
    /// Some blocks were quarantined but the device kept producing.
    Degraded,
    /// Every block died (or the device exited early); nothing more will
    /// come from it.
    Dead,
    /// The device's counter stopped moving while other devices kept
    /// progressing; the watchdog excluded it and requeued its targets.
    Stalled,
}

impl DeviceStatus {
    /// Stable lower-case label for logs and JSON output (the CLI
    /// serializes this string — the serde shim cannot derive enums).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded => "degraded",
            Self::Dead => "dead",
            Self::Stalled => "stalled",
        }
    }

    /// `true` only for [`DeviceStatus::Healthy`].
    #[must_use]
    pub fn is_healthy(self) -> bool {
        self == Self::Healthy
    }
}

/// Per-device fault accounting for one solve.
#[derive(Clone, Debug)]
pub struct DeviceReport {
    /// Device index within the machine.
    pub device: usize,
    /// Final status as seen by the host.
    pub status: DeviceStatus,
    /// Blocks quarantined after panicking.
    pub dead_blocks: u64,
    /// Blocks the device launched.
    pub total_blocks: u64,
    /// Malformed records this device's buffer rejected (wrong
    /// bit-length) plus records the host's energy audit rejected.
    pub rejected_records: u64,
    /// In-flight targets the watchdog moved from this device to healthy
    /// ones after declaring it stalled or dead.
    pub requeued_targets: u64,
}

/// Outcome of [`crate::Abs::solve`].
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// Best solution found.
    pub best: BitVec,
    /// Its energy (always exact — energies travel with solutions from
    /// the devices, which track them incrementally and exactly).
    pub best_energy: Energy,
    /// Whether the target energy (if any) was reached.
    pub reached_target: bool,
    /// Time at which the target was first reached (the paper's
    /// *time-to-solution*, Table 1).
    pub time_to_target: Option<Duration>,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Total device flips.
    pub total_flips: u64,
    /// Total solutions evaluated. Dense arms report the Theorem-1
    /// projection `(flips + live search units) × (n+1)` exactly; the CSR
    /// arm reports actual touched neighbours (`deg(k) + 2` per flip plus
    /// `n + 1` per unit) — see DESIGN.md. Quarantined blocks retire
    /// their init unit, so only surviving blocks contribute.
    pub evaluated: u64,
    /// Solutions evaluated per second — the paper's *search rate* (§4.3).
    pub search_rate: f64,
    /// Bulk-search iterations completed across all blocks.
    pub iterations: u64,
    /// Results drained from devices.
    pub results_received: u64,
    /// Results that entered the pool (not duplicates, not worse than the
    /// whole pool).
    pub results_inserted: u64,
    /// Best-energy improvement trace.
    pub history: Vec<HistoryPoint>,
    /// `true` when any device ended the run in a non-healthy state.
    pub degraded: bool,
    /// Records rejected machine-wide: wrong bit-length at the device
    /// buffer, wrong length or failed energy audit at the host.
    pub rejected_records: u64,
    /// In-flight targets requeued from failed devices to healthy ones.
    pub requeued_targets: u64,
    /// Search units still live at the end of the run (blocks that
    /// initialized a tracker and were never quarantined).
    pub search_units: u64,
    /// Per-device health and fault accounting, in device order.
    pub devices: Vec<DeviceReport>,
    /// Final telemetry snapshot: every registered counter, gauge and
    /// histogram at the end of the run. Totals agree exactly with the
    /// scalar fields above (same final poll, same elapsed value).
    pub metrics: abs_telemetry::MetricsSnapshot,
}

impl SolveResult {
    /// Fraction of device results that were novel enough to enter the
    /// pool — a diagnostic of GA diversity.
    #[must_use]
    pub fn insertion_ratio(&self) -> f64 {
        if self.results_received == 0 {
            0.0
        } else {
            self.results_inserted as f64 / self.results_received as f64
        }
    }

    /// Renders the best-energy trace as CSV (`elapsed_s,energy,flips`
    /// with a header), for plotting convergence curves outside Rust.
    #[must_use]
    pub fn history_csv(&self) -> String {
        let mut out = String::from("elapsed_s,energy,flips\n");
        for p in &self.history {
            out.push_str(&format!(
                "{:.9},{},{}\n",
                p.elapsed_ns as f64 / 1e9,
                p.energy,
                p.flips
            ));
        }
        out
    }

    /// Writes the best-energy trace to a CSV file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_history_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.history_csv())
    }
}

/// Writes a metrics snapshot to `path`, picking the format from the
/// extension: `.json` gets the deterministic JSON snapshot, anything
/// else the Prometheus text exposition.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_metrics(
    path: &std::path::Path,
    snapshot: &abs_telemetry::MetricsSnapshot,
) -> std::io::Result<()> {
    let text = if path.extension().is_some_and(|e| e == "json") {
        abs_telemetry::expose::json_text(snapshot)
    } else {
        abs_telemetry::expose::prometheus_text(snapshot)
    };
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(received: u64, inserted: u64) -> SolveResult {
        SolveResult {
            best: BitVec::zeros(4),
            best_energy: 0,
            reached_target: false,
            time_to_target: None,
            elapsed: Duration::from_millis(10),
            total_flips: 100,
            evaluated: 500,
            search_rate: 5e4,
            iterations: 10,
            results_received: received,
            results_inserted: inserted,
            history: vec![],
            degraded: false,
            rejected_records: 0,
            requeued_targets: 0,
            search_units: 1,
            devices: vec![],
            metrics: abs_telemetry::MetricsSnapshot::default(),
        }
    }

    #[test]
    fn insertion_ratio_handles_zero() {
        assert_eq!(dummy(0, 0).insertion_ratio(), 0.0);
        assert!((dummy(10, 4).insertion_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn history_csv_renders_and_roundtrips_through_disk() {
        let mut r = dummy(1, 1);
        r.history = vec![
            HistoryPoint {
                elapsed_ns: 1_000_000,
                energy: -5,
                flips: 120,
            },
            HistoryPoint {
                elapsed_ns: 2_500_000,
                energy: -9,
                flips: 480,
            },
        ];
        let csv = r.history_csv();
        assert_eq!(
            csv,
            "elapsed_s,energy,flips\n0.001000000,-5,120\n0.002500000,-9,480\n"
        );
        let path = std::env::temp_dir().join("abs-stats-test-history.csv");
        r.write_history_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), csv);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn device_status_labels_are_stable() {
        assert_eq!(DeviceStatus::Healthy.label(), "healthy");
        assert_eq!(DeviceStatus::Degraded.label(), "degraded");
        assert_eq!(DeviceStatus::Dead.label(), "dead");
        assert_eq!(DeviceStatus::Stalled.label(), "stalled");
        assert!(DeviceStatus::Healthy.is_healthy());
        assert!(!DeviceStatus::Stalled.is_healthy());
    }

    #[test]
    fn history_point_serializes_stably() {
        let p = HistoryPoint {
            elapsed_ns: 1_500,
            energy: -42,
            flips: 7,
        };
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, r#"{"elapsed_ns":1500,"energy":-42,"flips":7}"#);
    }
}
