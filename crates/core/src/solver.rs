//! The ABS host: GA bookkeeping plus the asynchronous polling loop of
//! §3.1, driving a [`vgpu::Machine`].

use crate::config::AbsConfig;
use crate::stats::{HistoryPoint, SolveResult};
use qubo::{BitVec, Energy, Qubo};
use qubo_ga::{InsertOutcome, SolutionPool, TargetGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;
use vgpu::{GlobalMem, Machine};

/// The Adaptive Bulk Search solver.
///
/// One `Abs` value owns a validated configuration and can solve any
/// number of problems; each [`Abs::solve`] call builds a fresh virtual
/// machine, runs the host loop on the calling thread, and joins all
/// device threads before returning.
pub struct Abs {
    config: AbsConfig,
}

impl Abs {
    /// Creates a solver.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`AbsConfig::validate`]).
    #[must_use]
    pub fn new(config: AbsConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AbsConfig {
        &self.config
    }

    /// Runs the full ABS system on `qubo` until the stop condition fires.
    ///
    /// The host (this thread) performs §3.1: it seeds the target buffers
    /// from a random pool, then loops — polling each device's counter,
    /// draining new solutions into the sorted distinct pool, and pushing
    /// exactly as many freshly bred targets as solutions arrived. The
    /// host never evaluates the energy function.
    #[must_use]
    pub fn solve(&self, qubo: &Qubo) -> SolveResult {
        let n = qubo.n();
        let machine = Machine::new(&self.config.machine);
        let blocks: Vec<usize> = machine
            .devices()
            .iter()
            .map(|d| d.resolve_blocks(n))
            .collect();
        machine.run(qubo, |mems| self.host_loop(qubo, mems, &blocks))
    }

    fn host_loop(&self, qubo: &Qubo, mems: &[Arc<GlobalMem>], blocks: &[usize]) -> SolveResult {
        let n = qubo.n();
        let cfg = &self.config;
        let start = Instant::now();

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut pool = SolutionPool::random(cfg.pool_size, n, &mut rng);
        let mut gen = TargetGenerator::new(n, cfg.ga, cfg.seed ^ 0x9e37_79b9_7f4a_7c15);

        // Warm starts: into the pool as unevaluated parents, and to the
        // front of every target queue so devices price them exactly.
        for warm in &cfg.initial_solutions {
            assert_eq!(
                warm.len(),
                n,
                "initial solution length does not match the problem"
            );
            let _ = pool.insert(warm.clone(), qubo::energy::UNEVALUATED);
        }

        // Step 1: seed every device's target buffer.
        for (mem, &b) in mems.iter().zip(blocks) {
            for warm in &cfg.initial_solutions {
                mem.push_target(warm.clone());
            }
            for _ in 0..b.max(1) * cfg.initial_targets_per_block.max(1) {
                mem.push_target(gen.generate(&pool));
            }
        }

        let mut last_counter = vec![0u64; mems.len()];
        let mut best: Option<BitVec> = None;
        let mut best_energy = Energy::MAX;
        let mut history = Vec::new();
        let mut received = 0u64;
        let mut inserted = 0u64;
        let mut reached_target = false;
        let mut time_to_target = None;

        let total_flips =
            |mems: &[Arc<GlobalMem>]| -> u64 { mems.iter().map(|m| m.total_flips()).sum() };

        loop {
            // Steps 2–4: poll counters, drain, insert, re-target.
            let mut progressed = false;
            for (i, mem) in mems.iter().enumerate() {
                let c = mem.counter();
                if c == last_counter[i] {
                    continue;
                }
                last_counter[i] = c;
                progressed = true;
                let records = mem.drain_results();
                let arrived = records.len();
                for rec in records {
                    received += 1;
                    if rec.energy < best_energy {
                        best_energy = rec.energy;
                        best = Some(rec.x.clone());
                        history.push(HistoryPoint {
                            elapsed_ns: start.elapsed().as_nanos(),
                            energy: rec.energy,
                        });
                        if let Some(t) = cfg.stop.target_energy {
                            if rec.energy <= t && time_to_target.is_none() {
                                reached_target = true;
                                time_to_target = Some(start.elapsed());
                            }
                        }
                    }
                    if pool.insert(rec.x, rec.energy) == InsertOutcome::Inserted {
                        inserted += 1;
                    }
                }
                // "The number of generated solutions is set to be the
                // same as the number of newly arrived solutions."
                for _ in 0..arrived {
                    mem.push_target(gen.generate(&pool));
                }
            }

            // Stop checks.
            if reached_target {
                break;
            }
            if let Some(to) = cfg.stop.timeout {
                if start.elapsed() >= to {
                    break;
                }
            }
            if let Some(mf) = cfg.stop.max_flips {
                if total_flips(mems) >= mf {
                    break;
                }
            }
            if !progressed {
                std::thread::yield_now();
            }
        }

        // Degenerate budgets can stop before any result arrived; the
        // devices are still running (the stop flag is raised only when
        // this closure returns), so one result is guaranteed to come.
        if best.is_none() {
            'wait: loop {
                for mem in mems {
                    for rec in mem.drain_results() {
                        received += 1;
                        if rec.energy < best_energy {
                            best_energy = rec.energy;
                            best = Some(rec.x);
                        }
                    }
                }
                if best.is_some() {
                    break 'wait;
                }
                std::thread::yield_now();
            }
        }

        let elapsed = start.elapsed();
        let flips = total_flips(mems);
        let evaluated = flips * (n as u64 + 1);
        SolveResult {
            best: best.expect("at least one device result"),
            best_energy,
            reached_target,
            time_to_target,
            elapsed,
            total_flips: flips,
            evaluated,
            search_rate: evaluated as f64 / elapsed.as_secs_f64().max(1e-12),
            iterations: mems.iter().map(|m| m.total_iterations()).sum(),
            results_received: received,
            results_inserted: inserted,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StopCondition;
    use std::time::Duration;

    fn brute_force(q: &Qubo) -> (BitVec, Energy) {
        let n = q.n();
        assert!(n <= 20);
        let mut best = BitVec::zeros(n);
        let mut best_e = q.energy(&best);
        for bits in 1u32..(1 << n) {
            let x = BitVec::from_bits(&(0..n).map(|i| ((bits >> i) & 1) as u8).collect::<Vec<_>>());
            let e = q.energy(&x);
            if e < best_e {
                best_e = e;
                best = x;
            }
        }
        (best, best_e)
    }

    #[test]
    fn finds_exact_optimum_of_small_problem() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = Qubo::random(16, &mut rng);
        let (_, opt) = brute_force(&q);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::target(opt).with_timeout(Duration::from_secs(30));
        let r = Abs::new(cfg).solve(&q);
        assert!(
            r.reached_target,
            "optimum {opt} not reached, got {}",
            r.best_energy
        );
        assert_eq!(r.best_energy, opt);
        assert_eq!(r.best_energy, q.energy(&r.best));
        assert!(r.time_to_target.is_some());
    }

    #[test]
    fn flip_budget_stops_the_run() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = Qubo::random(64, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(50_000);
        let r = Abs::new(cfg).solve(&q);
        assert!(r.total_flips >= 50_000);
        assert_eq!(r.evaluated, r.total_flips * 65);
        assert!(!r.reached_target);
        assert!(r.search_rate > 0.0);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn timeout_stops_the_run() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = Qubo::random(128, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::timeout(Duration::from_millis(200));
        let t0 = Instant::now();
        let r = Abs::new(cfg).solve(&q);
        assert!(t0.elapsed() < Duration::from_secs(20));
        assert!(r.elapsed >= Duration::from_millis(200));
        assert!(r.results_received > 0);
    }

    #[test]
    fn history_is_monotone_decreasing() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = Qubo::random(96, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(200_000);
        let r = Abs::new(cfg).solve(&q);
        assert!(!r.history.is_empty());
        for w in r.history.windows(2) {
            assert!(w[1].energy < w[0].energy, "history must strictly improve");
            assert!(w[1].elapsed_ns >= w[0].elapsed_ns);
        }
        assert_eq!(r.history.last().unwrap().energy, r.best_energy);
    }

    #[test]
    fn multi_device_run_aggregates_stats() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = Qubo::random(48, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.num_devices = 3;
        cfg.stop = StopCondition::flips(60_000);
        let r = Abs::new(cfg).solve(&q);
        assert!(r.iterations > 0);
        assert!(r.results_received >= r.results_inserted);
        assert!(r.insertion_ratio() <= 1.0);
    }

    #[test]
    fn degenerate_budget_still_returns_a_result() {
        let mut rng = StdRng::seed_from_u64(6);
        let q = Qubo::random(32, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(1); // stops before first poll sees much
        let r = Abs::new(cfg).solve(&q);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn better_than_random_sampling_at_equal_budget() {
        // Sanity: ABS with a flip budget must beat the best of an equal
        // number of uniformly random solutions.
        let mut rng = StdRng::seed_from_u64(7);
        let q = Qubo::random(128, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(100_000);
        let r = Abs::new(cfg).solve(&q);
        let mut rand_best = Energy::MAX;
        for _ in 0..2_000 {
            let x = BitVec::random(128, &mut rng);
            rand_best = rand_best.min(q.energy(&x));
        }
        assert!(
            r.best_energy < rand_best,
            "ABS {} vs random {rand_best}",
            r.best_energy
        );
    }

    #[test]
    fn adaptive_mode_solves_correctly() {
        // The future-work adaptive window switching must not break
        // correctness: energies remain exact and small optima are found.
        let mut rng = StdRng::seed_from_u64(8);
        let q = Qubo::random(14, &mut rng);
        let (_, opt) = brute_force(&q);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.adaptive = Some(vgpu::AdaptiveConfig { patience: 3 });
        cfg.stop = StopCondition::target(opt).with_timeout(Duration::from_secs(30));
        let r = Abs::new(cfg).solve(&q);
        assert!(r.reached_target);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn warm_start_reaches_a_known_target_immediately() {
        // Plant the exact optimum as a warm start: the first straight
        // search evaluates it, so the target is hit with a tiny budget.
        let mut rng = StdRng::seed_from_u64(9);
        let q = Qubo::random(18, &mut rng);
        let (opt_x, opt_e) = brute_force(&q);
        let mut cfg = AbsConfig::small();
        cfg.initial_solutions = vec![opt_x.clone()];
        cfg.stop = StopCondition::target(opt_e).with_timeout(Duration::from_secs(20));
        let r = Abs::new(cfg).solve(&q);
        assert!(r.reached_target);
        assert_eq!(r.best_energy, opt_e);
    }

    #[test]
    #[should_panic(expected = "initial solution length")]
    fn warm_start_length_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(10);
        let q = Qubo::random(16, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.initial_solutions = vec![BitVec::zeros(8)];
        cfg.stop = StopCondition::flips(100);
        let _ = Abs::new(cfg).solve(&q);
    }

    #[test]
    fn config_accessor_roundtrips() {
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(10);
        cfg.pool_size = 11;
        let solver = Abs::new(cfg);
        assert_eq!(solver.config().pool_size, 11);
    }
}
