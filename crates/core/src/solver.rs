//! The ABS solver facade: [`Abs`] owns a validated configuration and
//! runs each solve as a [`crate::AbsSession`] driven to completion on
//! the calling thread — the asynchronous polling loop of §3.1, hardened
//! with a watchdog that survives dead blocks, dead devices, silent
//! stalls, and malformed records (see DESIGN.md, "Fault model and
//! degraded mode"). The session layer (crate::session) adds the
//! resumable lifecycle: start / poll / steal-best / checkpoint / stop.

use crate::config::AbsConfig;
use crate::error::AbsError;
use crate::session::AbsSession;
use crate::stats::SolveResult;
use qubo::Qubo;

/// The Adaptive Bulk Search solver.
///
/// One `Abs` value owns a validated configuration and can solve any
/// number of problems; each [`Abs::solve`] call builds a fresh virtual
/// machine, runs the host loop on the calling thread, and joins all
/// device threads before returning. For an explicit lifecycle
/// (graceful shutdown, checkpoint/resume, stealing the best mid-run),
/// drive a [`crate::AbsSession`] directly.
#[derive(Debug)]
pub struct Abs {
    config: AbsConfig,
}

impl Abs {
    /// Creates a solver.
    ///
    /// # Errors
    /// Returns [`AbsError::InvalidConfig`] if the configuration fails
    /// [`AbsConfig::validate`].
    pub fn new(config: AbsConfig) -> Result<Self, AbsError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AbsConfig {
        &self.config
    }

    /// Runs the full ABS system on `qubo` until the stop condition fires.
    ///
    /// The host (this thread) performs §3.1: it seeds the target buffers
    /// from a random pool, then loops — polling each device's counter,
    /// draining new solutions into the sorted distinct pool, and pushing
    /// exactly as many freshly bred targets as solutions arrived. The
    /// watchdog of [`crate::WatchdogConfig`] runs alongside: devices
    /// whose health region reports death, or whose counter stalls while
    /// others progress, are excluded and their in-flight targets
    /// requeued, so the solve completes in degraded mode instead of
    /// hanging.
    ///
    /// # Errors
    /// [`AbsError::WarmStartLength`] if a warm start's bit-length does
    /// not match `qubo`; [`AbsError::Occupancy`] if a device cannot
    /// derive a launch configuration for this problem size;
    /// [`AbsError::AllDevicesFailed`] if every device fails before a
    /// single result arrives; [`AbsError::NoResult`] if the watchdog's
    /// hard timeout expires first.
    pub fn solve(&self, qubo: &Qubo) -> Result<SolveResult, AbsError> {
        AbsSession::start(self.config.clone(), qubo)?.run_to_completion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StopCondition;
    use crate::stats::DeviceStatus;
    use qubo::{BitVec, Energy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn brute_force(q: &Qubo) -> (BitVec, Energy) {
        let n = q.n();
        assert!(n <= 20);
        let mut best = BitVec::zeros(n);
        let mut best_e = q.energy(&best);
        for bits in 1u32..(1 << n) {
            let x = BitVec::from_bits(&(0..n).map(|i| ((bits >> i) & 1) as u8).collect::<Vec<_>>());
            let e = q.energy(&x);
            if e < best_e {
                best_e = e;
                best = x;
            }
        }
        (best, best_e)
    }

    fn solve(cfg: AbsConfig, q: &Qubo) -> SolveResult {
        Abs::new(cfg)
            .expect("valid config")
            .solve(q)
            .expect("solve")
    }

    #[test]
    fn finds_exact_optimum_of_small_problem() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = Qubo::random(16, &mut rng);
        let (_, opt) = brute_force(&q);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::target(opt).with_timeout(Duration::from_secs(30));
        let r = solve(cfg, &q);
        assert!(
            r.reached_target,
            "optimum {opt} not reached, got {}",
            r.best_energy
        );
        assert_eq!(r.best_energy, opt);
        assert_eq!(r.best_energy, q.energy(&r.best));
        assert!(r.time_to_target.is_some());
        assert!(!r.degraded);
        assert!(r.devices.iter().all(|d| d.status.is_healthy()));
    }

    #[test]
    fn flip_budget_stops_the_run() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = Qubo::random(64, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(50_000);
        let r = solve(cfg, &q);
        assert!(r.total_flips >= 50_000);
        // Healthy run: every block keeps its init unit, so the machine
        // total is (flips + units) × (n + 1).
        assert_eq!(r.search_units, 8);
        assert_eq!(r.evaluated, (r.total_flips + r.search_units) * 65);
        assert!(!r.reached_target);
        assert!(r.search_rate > 0.0);
        assert_eq!(r.best_energy, q.energy(&r.best));
        assert_eq!(r.rejected_records, 0);
        assert_eq!(r.requeued_targets, 0);
    }

    #[test]
    fn timeout_stops_the_run() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = Qubo::random(128, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::timeout(Duration::from_millis(200));
        let t0 = Instant::now();
        let r = solve(cfg, &q);
        assert!(t0.elapsed() < Duration::from_secs(20));
        assert!(r.elapsed >= Duration::from_millis(200));
        assert!(r.results_received > 0);
    }

    #[test]
    fn history_is_monotone_decreasing() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = Qubo::random(96, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(200_000);
        let r = solve(cfg, &q);
        assert!(!r.history.is_empty());
        for w in r.history.windows(2) {
            assert!(w[1].energy < w[0].energy, "history must strictly improve");
            assert!(w[1].elapsed_ns >= w[0].elapsed_ns);
        }
        assert_eq!(r.history.last().unwrap().energy, r.best_energy);
    }

    #[test]
    fn multi_device_run_aggregates_stats() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = Qubo::random(48, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.num_devices = 3;
        cfg.stop = StopCondition::flips(60_000);
        let r = solve(cfg, &q);
        assert!(r.iterations > 0);
        assert!(r.results_received >= r.results_inserted);
        assert!(r.insertion_ratio() <= 1.0);
        assert_eq!(r.devices.len(), 3);
        assert_eq!(r.search_units, 24);
    }

    #[test]
    fn degenerate_budget_still_returns_a_result() {
        let mut rng = StdRng::seed_from_u64(6);
        let q = Qubo::random(32, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(1); // stops before first poll sees much
        let r = solve(cfg, &q);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn better_than_random_sampling_at_equal_budget() {
        // Sanity: ABS with a flip budget must beat the best of an equal
        // number of uniformly random solutions.
        let mut rng = StdRng::seed_from_u64(7);
        let q = Qubo::random(128, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(100_000);
        let r = solve(cfg, &q);
        let mut rand_best = Energy::MAX;
        for _ in 0..2_000 {
            let x = BitVec::random(128, &mut rng);
            rand_best = rand_best.min(q.energy(&x));
        }
        assert!(
            r.best_energy < rand_best,
            "ABS {} vs random {rand_best}",
            r.best_energy
        );
    }

    #[test]
    fn adaptive_mode_solves_correctly() {
        // The future-work adaptive window switching must not break
        // correctness: energies remain exact and small optima are found.
        let mut rng = StdRng::seed_from_u64(8);
        let q = Qubo::random(14, &mut rng);
        let (_, opt) = brute_force(&q);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.adaptive = Some(vgpu::AdaptiveConfig { patience: 3 });
        cfg.stop = StopCondition::target(opt).with_timeout(Duration::from_secs(30));
        let r = solve(cfg, &q);
        assert!(r.reached_target);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn warm_start_reaches_a_known_target_immediately() {
        // Plant the exact optimum as a warm start: the first straight
        // search evaluates it, so the target is hit with a tiny budget.
        let mut rng = StdRng::seed_from_u64(9);
        let q = Qubo::random(18, &mut rng);
        let (opt_x, opt_e) = brute_force(&q);
        let mut cfg = AbsConfig::small();
        cfg.initial_solutions = vec![opt_x.clone()];
        cfg.stop = StopCondition::target(opt_e).with_timeout(Duration::from_secs(20));
        let r = solve(cfg, &q);
        assert!(r.reached_target);
        assert_eq!(r.best_energy, opt_e);
    }

    #[test]
    fn warm_start_length_mismatch_is_an_error() {
        let mut rng = StdRng::seed_from_u64(10);
        let q = Qubo::random(16, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.initial_solutions = vec![BitVec::zeros(8)];
        cfg.stop = StopCondition::flips(100);
        let err = Abs::new(cfg).unwrap().solve(&q).unwrap_err();
        assert_eq!(
            err,
            AbsError::WarmStartLength {
                expected: 16,
                got: 8
            }
        );
        assert!(err.is_usage());
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let cfg = AbsConfig::default(); // unbounded stop
        let err = Abs::new(cfg).unwrap_err();
        assert!(matches!(err, AbsError::InvalidConfig(_)));
        assert!(err.is_usage());
    }

    #[test]
    fn infeasible_problem_size_is_an_occupancy_error() {
        // Without a blocks override, the occupancy calculator cannot map
        // n = 7 onto full warps, so resolve_blocks refuses — the solver
        // must surface that as an error before spawning threads.
        let mut rng = StdRng::seed_from_u64(12);
        let q = Qubo::random(7, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.blocks_override = None;
        cfg.stop = StopCondition::flips(100);
        let err = Abs::new(cfg).unwrap().solve(&q).unwrap_err();
        assert!(matches!(err, AbsError::Occupancy { device: 0, .. }));
        assert!(err.is_usage());
    }

    #[test]
    fn config_accessor_roundtrips() {
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(10);
        cfg.pool_size = 11;
        let solver = Abs::new(cfg).unwrap();
        assert_eq!(solver.config().pool_size, 11);
    }

    #[test]
    fn dead_device_fails_the_solve_instead_of_hanging() {
        // Satellite 1 regression: one device, every block dead on
        // arrival. The pre-hardening host would spin forever in the
        // final wait; the watchdog now reports AllDevicesFailed.
        use vgpu::FaultPlan;
        let mut rng = StdRng::seed_from_u64(13);
        let q = Qubo::random(16, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.blocks_override = Some(2);
        cfg.machine.device.fault = Some(Arc::new(
            FaultPlan::new().panic_block(0, 0, 0).panic_block(0, 1, 0),
        ));
        cfg.stop = StopCondition::timeout(Duration::from_secs(30));
        let err = Abs::new(cfg).unwrap().solve(&q).unwrap_err();
        assert_eq!(err, AbsError::AllDevicesFailed);
        assert!(!err.is_usage());
    }

    #[test]
    fn quarantined_block_degrades_but_does_not_fail_the_solve() {
        use vgpu::FaultPlan;
        let mut rng = StdRng::seed_from_u64(14);
        let q = Qubo::random(32, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.blocks_override = Some(4);
        cfg.machine.device.fault = Some(Arc::new(FaultPlan::new().panic_block(0, 1, 2)));
        cfg.stop = StopCondition::flips(30_000);
        let r = solve(cfg, &q);
        assert!(r.degraded);
        assert_eq!(r.devices[0].status, DeviceStatus::Degraded);
        assert_eq!(r.devices[0].dead_blocks, 1);
        assert_eq!(r.search_units, 3, "dead block retires its unit");
        assert_eq!(r.evaluated, (r.total_flips + 3) * 33);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn hard_timeout_returns_no_result_when_nothing_arrives() {
        use vgpu::FaultPlan;
        let mut rng = StdRng::seed_from_u64(15);
        let q = Qubo::random(16, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.blocks_override = Some(1);
        // The only device stalls immediately and never produces; health
        // stays Healthy (a stall is silent), so only the hard timeout
        // can end the run.
        cfg.machine.device.fault = Some(Arc::new(FaultPlan::new().stall_device(0, 0)));
        cfg.stop = StopCondition::timeout(Duration::from_secs(60));
        cfg.watchdog.hard_timeout = Some(Duration::from_millis(300));
        let t0 = Instant::now();
        let err = Abs::new(cfg).unwrap().solve(&q).unwrap_err();
        assert_eq!(err, AbsError::NoResult);
        assert!(t0.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn stalled_device_is_excluded_and_its_targets_requeued() {
        use vgpu::FaultPlan;
        let mut rng = StdRng::seed_from_u64(16);
        let q = Qubo::random(32, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.num_devices = 2;
        cfg.machine.device.blocks_override = Some(2);
        // Device 1 stalls before consuming anything; device 0 keeps
        // producing, so the watchdog's relative-progress clock runs.
        cfg.machine.device.fault = Some(Arc::new(FaultPlan::new().stall_device(1, 0)));
        // The host drains results in bulk, so a run needs enough poll
        // rounds for staleness to accrue: use a wall-clock stop.
        cfg.watchdog.stall_poll_rounds = 10;
        cfg.stop = StopCondition::timeout(Duration::from_millis(400));
        let r = solve(cfg, &q);
        assert!(r.degraded);
        assert_eq!(r.devices[1].status, DeviceStatus::Stalled);
        // Everything seeded to device 1 was still in its queue:
        // 2 blocks × initial_targets_per_block (2).
        assert_eq!(r.devices[1].requeued_targets, 4);
        assert_eq!(r.requeued_targets, 4);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn corrupted_improvement_is_audited_and_rejected() {
        use vgpu::{Corruption, FaultPlan};
        let mut rng = StdRng::seed_from_u64(17);
        let q = Qubo::random(32, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.blocks_override = Some(2);
        // Block 0 emits a record claiming an impossibly good energy for
        // the all-zeros solution; the host audit must re-price it and
        // throw it out.
        cfg.machine.device.fault = Some(Arc::new(FaultPlan::new().corrupt_record(
            0,
            0,
            1,
            Corruption::WrongEnergy,
        )));
        cfg.stop = StopCondition::flips(30_000);
        let r = solve(cfg, &q);
        assert_eq!(r.rejected_records, 1);
        assert_eq!(r.devices[0].rejected_records, 1);
        assert_eq!(r.best_energy, q.energy(&r.best), "best stays exact");
        assert!(r.best_energy > Energy::MIN / 2);
    }
}
