//! The ABS host: GA bookkeeping plus the asynchronous polling loop of
//! §3.1, driving a [`vgpu::Machine`] — hardened with a watchdog that
//! survives dead blocks, dead devices, silent stalls, and malformed
//! records (see DESIGN.md, "Fault model and degraded mode").

use crate::config::AbsConfig;
use crate::error::AbsError;
use crate::stats::{write_metrics, DeviceReport, DeviceStatus, HistoryPoint, SolveResult};
use abs_telemetry::{Aggregator, DeviceSample, HostSample};
use qubo::{BitVec, Energy, Qubo};
use qubo_ga::{InsertOutcome, PoolOps, SolutionPool, TargetGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vgpu::{GlobalMem, HealthStatus, Machine};

/// The Adaptive Bulk Search solver.
///
/// One `Abs` value owns a validated configuration and can solve any
/// number of problems; each [`Abs::solve`] call builds a fresh virtual
/// machine, runs the host loop on the calling thread, and joins all
/// device threads before returning.
#[derive(Debug)]
pub struct Abs {
    config: AbsConfig,
}

/// Host-side view of one device during the polling loop.
struct DeviceState {
    /// Counter value at the last poll.
    last_counter: u64,
    /// Consecutive poll rounds in which *other* devices progressed but
    /// this one did not (the watchdog's staleness clock).
    stale_rounds: u64,
    /// The watchdog excluded this device (stalled or dead): its targets
    /// were requeued and it receives no new work.
    excluded: bool,
    /// Status to report if excluded (`Stalled` or `Dead`).
    excluded_as: DeviceStatus,
    /// Targets moved *from* this device to healthy ones.
    requeued: u64,
    /// Records the host rejected from this device (wrong length seen
    /// host-side, or failed energy audit).
    host_rejected: u64,
}

/// What the host loop hands to [`Abs::finish`]: everything the final
/// [`SolveResult`] needs that is *not* read from the device memories.
/// The memory-derived counters are read only after the machine joins
/// its device threads.
struct HostOutcome {
    start: Instant,
    best: BitVec,
    best_energy: Energy,
    reached_target: bool,
    time_to_target: Option<Duration>,
    history: Vec<HistoryPoint>,
    received: u64,
    inserted: u64,
    devs: Vec<DeviceState>,
    aggregator: Aggregator,
    pool_ops: PoolOps,
}

impl Abs {
    /// Creates a solver.
    ///
    /// # Errors
    /// Returns [`AbsError::InvalidConfig`] if the configuration fails
    /// [`AbsConfig::validate`].
    pub fn new(config: AbsConfig) -> Result<Self, AbsError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AbsConfig {
        &self.config
    }

    /// Runs the full ABS system on `qubo` until the stop condition fires.
    ///
    /// The host (this thread) performs §3.1: it seeds the target buffers
    /// from a random pool, then loops — polling each device's counter,
    /// draining new solutions into the sorted distinct pool, and pushing
    /// exactly as many freshly bred targets as solutions arrived. The
    /// watchdog of [`crate::WatchdogConfig`] runs alongside: devices
    /// whose health region reports death, or whose counter stalls while
    /// others progress, are excluded and their in-flight targets
    /// requeued, so the solve completes in degraded mode instead of
    /// hanging.
    ///
    /// # Errors
    /// [`AbsError::WarmStartLength`] if a warm start's bit-length does
    /// not match `qubo`; [`AbsError::Occupancy`] if a device cannot
    /// derive a launch configuration for this problem size;
    /// [`AbsError::AllDevicesFailed`] if every device fails before a
    /// single result arrives; [`AbsError::NoResult`] if the watchdog's
    /// hard timeout expires first.
    pub fn solve(&self, qubo: &Qubo) -> Result<SolveResult, AbsError> {
        let n = qubo.n();
        for warm in &self.config.initial_solutions {
            if warm.len() != n {
                return Err(AbsError::WarmStartLength {
                    expected: n,
                    got: warm.len(),
                });
            }
        }
        let machine = Machine::new(&self.config.machine);
        let blocks: Vec<usize> = machine
            .devices()
            .iter()
            .enumerate()
            .map(|(i, d)| {
                d.resolve_blocks(n)
                    .map_err(|source| AbsError::Occupancy { device: i, source })
            })
            .collect::<Result<_, _>>()?;
        // `machine.run` joins every device thread before returning, so
        // the accounting in `finish` reads quiescent counters — reading
        // them inside the host closure would race late-starting workers.
        let outcome = machine.run(qubo, |mems| self.host_loop(qubo, mems, &blocks))?;
        let result = Self::finish(n, outcome, &machine.mems());
        if let Some(path) = &self.config.metrics.out {
            // Best-effort final exposition; the CLI re-writes this file
            // itself and surfaces I/O errors to the user.
            let _ = write_metrics(path, &result.metrics);
        }
        Ok(result)
    }

    fn host_loop(
        &self,
        qubo: &Qubo,
        mems: &[Arc<GlobalMem>],
        blocks: &[usize],
    ) -> Result<HostOutcome, AbsError> {
        let n = qubo.n();
        let cfg = &self.config;
        let start = Instant::now();

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut pool = SolutionPool::random(cfg.pool_size, n, &mut rng);
        let mut gen = TargetGenerator::new(n, cfg.ga, cfg.seed ^ 0x9e37_79b9_7f4a_7c15);

        // Warm starts (lengths already checked in `solve`): into the
        // pool as unevaluated parents, and to the front of every target
        // queue so devices price them exactly.
        for warm in &cfg.initial_solutions {
            let _ = pool.insert(warm.clone(), qubo::energy::UNEVALUATED);
        }

        // Step 1: seed every device's target buffer.
        for (mem, &b) in mems.iter().zip(blocks) {
            for warm in &cfg.initial_solutions {
                mem.push_target(warm.clone());
            }
            for _ in 0..b.max(1) * cfg.initial_targets_per_block.max(1) {
                mem.push_target(gen.generate(&pool));
            }
        }

        let mut devs: Vec<DeviceState> = mems
            .iter()
            .map(|_| DeviceState {
                last_counter: 0,
                stale_rounds: 0,
                excluded: false,
                excluded_as: DeviceStatus::Healthy,
                requeued: 0,
                host_rejected: 0,
            })
            .collect();
        let mut best: Option<BitVec> = None;
        let mut best_energy = Energy::MAX;
        let mut history = Vec::new();
        let mut received = 0u64;
        let mut inserted = 0u64;
        let mut reached_target = false;
        let mut time_to_target = None;

        let total_flips =
            |mems: &[Arc<GlobalMem>]| -> u64 { mems.iter().map(|m| m.total_flips()).sum() };
        let hard_deadline = cfg.watchdog.hard_timeout.map(|d| start + d);

        // Telemetry: the aggregator folds device counters and drained
        // event rings at the poll cadence; wall-clock is stamped here,
        // on the host, never on the device (Fig. 5 discipline).
        let mut aggregator = Aggregator::new(mems.len(), n);
        let metrics_out = cfg.metrics.out.as_deref();
        let mut next_metrics_write = cfg
            .metrics
            .interval
            .filter(|_| metrics_out.is_some())
            .map(|iv| start + iv);

        'poll: loop {
            // Watchdog: loud failures first. A device whose health
            // region says Dead will never move its counter again.
            for i in 0..mems.len() {
                if !devs[i].excluded && mems[i].health().status() == HealthStatus::Dead {
                    Self::fail_device(i, DeviceStatus::Dead, mems, &mut devs);
                }
            }

            // Steps 2–4: poll counters, drain, insert, re-target.
            let mut progressed_any = false;
            for (i, mem) in mems.iter().enumerate() {
                if devs[i].excluded {
                    continue;
                }
                let c = mem.counter();
                if c == devs[i].last_counter {
                    continue;
                }
                devs[i].last_counter = c;
                devs[i].stale_rounds = 0;
                progressed_any = true;
                let records = mem.drain_results();
                let mut arrived = 0usize;
                for rec in records {
                    received += 1;
                    if !self.accept_record(qubo, &rec.x, rec.energy, best_energy, received) {
                        devs[i].host_rejected += 1;
                        continue;
                    }
                    arrived += 1;
                    if rec.energy < best_energy {
                        best_energy = rec.energy;
                        best = Some(rec.x.clone());
                        history.push(HistoryPoint {
                            elapsed_ns: start.elapsed().as_nanos(),
                            energy: rec.energy,
                        });
                        if let Some(t) = cfg.stop.target_energy {
                            if rec.energy <= t && time_to_target.is_none() {
                                reached_target = true;
                                time_to_target = Some(start.elapsed());
                            }
                        }
                    }
                    if pool.insert(rec.x, rec.energy) == InsertOutcome::Inserted {
                        inserted += 1;
                    }
                }
                // "The number of generated solutions is set to be the
                // same as the number of newly arrived solutions."
                for _ in 0..arrived {
                    mem.push_target(gen.generate(&pool));
                }
            }

            // Watchdog: silent stalls. Staleness accrues only in rounds
            // where some *other* device progressed, so a globally slow
            // machine (loaded CI box) never trips it.
            if progressed_any && cfg.watchdog.stall_poll_rounds > 0 {
                for i in 0..mems.len() {
                    if devs[i].excluded || mems[i].counter() != devs[i].last_counter {
                        continue;
                    }
                    devs[i].stale_rounds += 1;
                    if devs[i].stale_rounds > cfg.watchdog.stall_poll_rounds {
                        Self::fail_device(i, DeviceStatus::Stalled, mems, &mut devs);
                    }
                }
            }

            // Telemetry folds on the same cadence results are drained;
            // idle spin rounds leave the device rings untouched.
            if progressed_any {
                Self::poll_metrics(
                    &mut aggregator,
                    n,
                    mems,
                    &devs,
                    pool.ops(),
                    received,
                    inserted,
                    start.elapsed().as_secs_f64(),
                );
            }
            if let (Some(path), Some(due)) = (metrics_out, next_metrics_write) {
                if Instant::now() >= due {
                    if !progressed_any {
                        Self::poll_metrics(
                            &mut aggregator,
                            n,
                            mems,
                            &devs,
                            pool.ops(),
                            received,
                            inserted,
                            start.elapsed().as_secs_f64(),
                        );
                    }
                    // Periodic exposition is best-effort: an unwritable
                    // path must not kill a running solve (the final
                    // snapshot write surfaces errors via the CLI).
                    let _ = write_metrics(path, &aggregator.snapshot());
                    next_metrics_write = cfg.metrics.interval.map(|iv| Instant::now() + iv);
                }
            }

            // Stop checks.
            if reached_target {
                break;
            }
            if let Some(to) = cfg.stop.timeout {
                if start.elapsed() >= to {
                    break;
                }
            }
            if let Some(mf) = cfg.stop.max_flips {
                if total_flips(mems) >= mf {
                    break;
                }
            }
            if let Some(deadline) = hard_deadline {
                if Instant::now() >= deadline {
                    if best.is_some() {
                        break;
                    }
                    return Err(AbsError::NoResult);
                }
            }
            if devs.iter().all(|d| d.excluded) {
                if best.is_some() {
                    break 'poll;
                }
                return Err(AbsError::AllDevicesFailed);
            }
            if !progressed_any {
                std::thread::yield_now();
            }
        }

        // Degenerate budgets can stop before any result arrived; the
        // surviving devices are still running (the stop flag is raised
        // only when this closure returns), so a result will come —
        // unless every device has failed, which the wait must detect
        // instead of spinning forever (the pre-hardening host hung
        // here).
        if best.is_none() {
            'wait: loop {
                for (i, mem) in mems.iter().enumerate() {
                    for rec in mem.drain_results() {
                        received += 1;
                        if !self.accept_record(qubo, &rec.x, rec.energy, best_energy, received) {
                            devs[i].host_rejected += 1;
                            continue;
                        }
                        if rec.energy < best_energy {
                            best_energy = rec.energy;
                            best = Some(rec.x);
                        }
                    }
                    if !devs[i].excluded && mems[i].health().status() == HealthStatus::Dead {
                        Self::fail_device(i, DeviceStatus::Dead, mems, &mut devs);
                    }
                }
                if best.is_some() {
                    break 'wait;
                }
                if let Some(deadline) = hard_deadline {
                    if Instant::now() >= deadline {
                        return Err(AbsError::NoResult);
                    }
                }
                if devs.iter().all(|d| d.excluded) {
                    return Err(AbsError::AllDevicesFailed);
                }
                std::thread::yield_now();
            }
        }

        // The wait loop above only exits with a result or an early
        // `Err`, so `best` is always populated here; `NoResult` keeps the
        // path panic-free if that ever changes.
        let Some(best) = best else {
            return Err(AbsError::NoResult);
        };
        Ok(HostOutcome {
            start,
            best,
            best_energy,
            reached_target,
            time_to_target,
            history,
            received,
            inserted,
            devs,
            aggregator,
            pool_ops: pool.ops(),
        })
    }

    /// Final accounting, run after every device thread has been joined:
    /// only then are the per-device counters (units, flips, health)
    /// guaranteed quiescent — a fast stop can otherwise beat a device's
    /// workers to their first `add_units`.
    fn finish(n: usize, mut o: HostOutcome, mems: &[Arc<GlobalMem>]) -> SolveResult {
        let elapsed = o.start.elapsed();
        // Final authoritative telemetry poll over quiescent counters,
        // using the same elapsed value as the result's own rate field —
        // so the snapshot and the SolveResult agree exactly.
        Self::poll_metrics(
            &mut o.aggregator,
            n,
            mems,
            &o.devs,
            o.pool_ops,
            o.received,
            o.inserted,
            elapsed.as_secs_f64(),
        );
        let metrics = o.aggregator.snapshot();
        let flips: u64 = mems.iter().map(|m| m.total_flips()).sum();
        let units: u64 = mems.iter().map(|m| m.total_units()).sum();
        let evaluated: u64 = mems.iter().map(|m| m.total_evaluated(n)).sum();
        let devices: Vec<DeviceReport> = mems
            .iter()
            .zip(&o.devs)
            .enumerate()
            .map(|(i, (mem, d))| {
                let health = mem.health();
                let status = if d.excluded {
                    d.excluded_as
                } else {
                    match health.status() {
                        HealthStatus::Healthy => DeviceStatus::Healthy,
                        HealthStatus::Degraded { .. } => DeviceStatus::Degraded,
                        HealthStatus::Dead => DeviceStatus::Dead,
                    }
                };
                DeviceReport {
                    device: i,
                    status,
                    dead_blocks: health.dead_blocks(),
                    total_blocks: health.total_blocks(),
                    rejected_records: mem.rejected_records() + d.host_rejected,
                    requeued_targets: d.requeued,
                }
            })
            .collect();
        SolveResult {
            best: o.best,
            best_energy: o.best_energy,
            reached_target: o.reached_target,
            time_to_target: o.time_to_target,
            elapsed,
            total_flips: flips,
            evaluated,
            search_rate: evaluated as f64 / elapsed.as_secs_f64().max(1e-12),
            iterations: mems.iter().map(|m| m.total_iterations()).sum(),
            results_received: o.received,
            results_inserted: o.inserted,
            history: o.history,
            degraded: devices.iter().any(|d| !d.status.is_healthy()),
            rejected_records: devices.iter().map(|d| d.rejected_records).sum(),
            requeued_targets: devices.iter().map(|d| d.requeued_targets).sum(),
            search_units: units,
            devices,
            metrics,
        }
    }

    /// Reads one device's counters, health label and drained events
    /// into a telemetry sample. Host-side only: this is the Fig. 5
    /// "host polls an atomic" moment for the telemetry plane.
    fn device_sample(mem: &GlobalMem, d: &DeviceState, n: usize) -> DeviceSample {
        let health = mem.health();
        let label = if d.excluded {
            d.excluded_as.label()
        } else {
            match health.status() {
                HealthStatus::Healthy => "healthy",
                HealthStatus::Degraded { .. } => "degraded",
                HealthStatus::Dead => "dead",
            }
        };
        let drained = mem.drain_events();
        DeviceSample {
            flips: mem.total_flips(),
            units: mem.total_units(),
            evaluated: mem.total_evaluated(n),
            iterations: mem.total_iterations(),
            results: mem.counter(),
            rejected_records: mem.rejected_records(),
            dropped_targets: mem.dropped_targets(),
            overflow_results: mem.overflow_results(),
            dead_blocks: health.dead_blocks(),
            total_blocks: health.total_blocks(),
            health: label,
            kernel: mem.flip_kernel_name(),
            storage: mem.matrix_storage_name(),
            events: drained.events,
            events_written: drained.written,
            events_overwritten: drained.overwritten,
        }
    }

    /// Folds the current host+device state into the aggregator. The
    /// host stamps `elapsed_secs` here, at the poll boundary.
    #[allow(clippy::too_many_arguments)]
    fn poll_metrics(
        aggregator: &mut Aggregator,
        n: usize,
        mems: &[Arc<GlobalMem>],
        devs: &[DeviceState],
        pool_ops: PoolOps,
        received: u64,
        inserted: u64,
        elapsed_secs: f64,
    ) {
        let samples: Vec<DeviceSample> = mems
            .iter()
            .zip(devs)
            .map(|(m, d)| Self::device_sample(m, d, n))
            .collect();
        let host = HostSample {
            results_received: received,
            results_inserted: inserted,
            pool_inserted: pool_ops.inserted,
            pool_duplicate: pool_ops.duplicate,
            pool_worse: pool_ops.worse,
            host_rejected: devs.iter().map(|d| d.host_rejected).sum(),
            requeued_targets: devs.iter().map(|d| d.requeued).sum(),
            elapsed_secs,
        };
        aggregator.poll(&samples, &host);
    }

    /// Host-side record validation: a defensive length check on every
    /// record, plus the energy audit of [`crate::WatchdogConfig`] — a
    /// record is audited when it would improve the incumbent best (so
    /// the reported best is always exact) or when the audit stride
    /// samples it. Returns `false` for records that must be discarded.
    ///
    /// This is the documented deviation from the paper's "host never
    /// computes the energy" rule: with real hardware the device is
    /// trusted; here the fault model explicitly includes corrupted
    /// records, so claimed improvements are re-priced before they can
    /// displace the best.
    fn accept_record(
        &self,
        qubo: &Qubo,
        x: &BitVec,
        claimed: Energy,
        best_energy: Energy,
        received: u64,
    ) -> bool {
        if x.len() != qubo.n() {
            return false;
        }
        let stride = self.config.watchdog.audit_stride;
        let improves = claimed < best_energy;
        let sampled = stride > 0 && received.is_multiple_of(stride);
        if improves || sampled {
            return qubo.energy(x) == claimed;
        }
        true
    }

    /// Excludes device `i`: stops it, drains its in-flight targets and
    /// deals them round-robin to the remaining devices (counted on the
    /// failed device's report), and records the status it failed as.
    fn fail_device(
        i: usize,
        status: DeviceStatus,
        mems: &[Arc<GlobalMem>],
        devs: &mut [DeviceState],
    ) {
        devs[i].excluded = true;
        devs[i].excluded_as = status;
        mems[i].request_stop();
        let orphans = mems[i].drain_targets();
        let healthy: Vec<usize> = (0..mems.len()).filter(|&j| !devs[j].excluded).collect();
        if healthy.is_empty() {
            return;
        }
        for (k, t) in orphans.into_iter().enumerate() {
            mems[healthy[k % healthy.len()]].push_target(t);
            devs[i].requeued += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StopCondition;
    use std::time::Duration;

    fn brute_force(q: &Qubo) -> (BitVec, Energy) {
        let n = q.n();
        assert!(n <= 20);
        let mut best = BitVec::zeros(n);
        let mut best_e = q.energy(&best);
        for bits in 1u32..(1 << n) {
            let x = BitVec::from_bits(&(0..n).map(|i| ((bits >> i) & 1) as u8).collect::<Vec<_>>());
            let e = q.energy(&x);
            if e < best_e {
                best_e = e;
                best = x;
            }
        }
        (best, best_e)
    }

    fn solve(cfg: AbsConfig, q: &Qubo) -> SolveResult {
        Abs::new(cfg)
            .expect("valid config")
            .solve(q)
            .expect("solve")
    }

    #[test]
    fn finds_exact_optimum_of_small_problem() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = Qubo::random(16, &mut rng);
        let (_, opt) = brute_force(&q);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::target(opt).with_timeout(Duration::from_secs(30));
        let r = solve(cfg, &q);
        assert!(
            r.reached_target,
            "optimum {opt} not reached, got {}",
            r.best_energy
        );
        assert_eq!(r.best_energy, opt);
        assert_eq!(r.best_energy, q.energy(&r.best));
        assert!(r.time_to_target.is_some());
        assert!(!r.degraded);
        assert!(r.devices.iter().all(|d| d.status.is_healthy()));
    }

    #[test]
    fn flip_budget_stops_the_run() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = Qubo::random(64, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(50_000);
        let r = solve(cfg, &q);
        assert!(r.total_flips >= 50_000);
        // Healthy run: every block keeps its init unit, so the machine
        // total is (flips + units) × (n + 1).
        assert_eq!(r.search_units, 8);
        assert_eq!(r.evaluated, (r.total_flips + r.search_units) * 65);
        assert!(!r.reached_target);
        assert!(r.search_rate > 0.0);
        assert_eq!(r.best_energy, q.energy(&r.best));
        assert_eq!(r.rejected_records, 0);
        assert_eq!(r.requeued_targets, 0);
    }

    #[test]
    fn timeout_stops_the_run() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = Qubo::random(128, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::timeout(Duration::from_millis(200));
        let t0 = Instant::now();
        let r = solve(cfg, &q);
        assert!(t0.elapsed() < Duration::from_secs(20));
        assert!(r.elapsed >= Duration::from_millis(200));
        assert!(r.results_received > 0);
    }

    #[test]
    fn history_is_monotone_decreasing() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = Qubo::random(96, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(200_000);
        let r = solve(cfg, &q);
        assert!(!r.history.is_empty());
        for w in r.history.windows(2) {
            assert!(w[1].energy < w[0].energy, "history must strictly improve");
            assert!(w[1].elapsed_ns >= w[0].elapsed_ns);
        }
        assert_eq!(r.history.last().unwrap().energy, r.best_energy);
    }

    #[test]
    fn multi_device_run_aggregates_stats() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = Qubo::random(48, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.num_devices = 3;
        cfg.stop = StopCondition::flips(60_000);
        let r = solve(cfg, &q);
        assert!(r.iterations > 0);
        assert!(r.results_received >= r.results_inserted);
        assert!(r.insertion_ratio() <= 1.0);
        assert_eq!(r.devices.len(), 3);
        assert_eq!(r.search_units, 24);
    }

    #[test]
    fn degenerate_budget_still_returns_a_result() {
        let mut rng = StdRng::seed_from_u64(6);
        let q = Qubo::random(32, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(1); // stops before first poll sees much
        let r = solve(cfg, &q);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn better_than_random_sampling_at_equal_budget() {
        // Sanity: ABS with a flip budget must beat the best of an equal
        // number of uniformly random solutions.
        let mut rng = StdRng::seed_from_u64(7);
        let q = Qubo::random(128, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(100_000);
        let r = solve(cfg, &q);
        let mut rand_best = Energy::MAX;
        for _ in 0..2_000 {
            let x = BitVec::random(128, &mut rng);
            rand_best = rand_best.min(q.energy(&x));
        }
        assert!(
            r.best_energy < rand_best,
            "ABS {} vs random {rand_best}",
            r.best_energy
        );
    }

    #[test]
    fn adaptive_mode_solves_correctly() {
        // The future-work adaptive window switching must not break
        // correctness: energies remain exact and small optima are found.
        let mut rng = StdRng::seed_from_u64(8);
        let q = Qubo::random(14, &mut rng);
        let (_, opt) = brute_force(&q);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.adaptive = Some(vgpu::AdaptiveConfig { patience: 3 });
        cfg.stop = StopCondition::target(opt).with_timeout(Duration::from_secs(30));
        let r = solve(cfg, &q);
        assert!(r.reached_target);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn warm_start_reaches_a_known_target_immediately() {
        // Plant the exact optimum as a warm start: the first straight
        // search evaluates it, so the target is hit with a tiny budget.
        let mut rng = StdRng::seed_from_u64(9);
        let q = Qubo::random(18, &mut rng);
        let (opt_x, opt_e) = brute_force(&q);
        let mut cfg = AbsConfig::small();
        cfg.initial_solutions = vec![opt_x.clone()];
        cfg.stop = StopCondition::target(opt_e).with_timeout(Duration::from_secs(20));
        let r = solve(cfg, &q);
        assert!(r.reached_target);
        assert_eq!(r.best_energy, opt_e);
    }

    #[test]
    fn warm_start_length_mismatch_is_an_error() {
        let mut rng = StdRng::seed_from_u64(10);
        let q = Qubo::random(16, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.initial_solutions = vec![BitVec::zeros(8)];
        cfg.stop = StopCondition::flips(100);
        let err = Abs::new(cfg).unwrap().solve(&q).unwrap_err();
        assert_eq!(
            err,
            AbsError::WarmStartLength {
                expected: 16,
                got: 8
            }
        );
        assert!(err.is_usage());
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let cfg = AbsConfig::default(); // unbounded stop
        let err = Abs::new(cfg).unwrap_err();
        assert!(matches!(err, AbsError::InvalidConfig(_)));
        assert!(err.is_usage());
    }

    #[test]
    fn infeasible_problem_size_is_an_occupancy_error() {
        // Without a blocks override, the occupancy calculator cannot map
        // n = 7 onto full warps, so resolve_blocks refuses — the solver
        // must surface that as an error before spawning threads.
        let mut rng = StdRng::seed_from_u64(12);
        let q = Qubo::random(7, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.blocks_override = None;
        cfg.stop = StopCondition::flips(100);
        let err = Abs::new(cfg).unwrap().solve(&q).unwrap_err();
        assert!(matches!(err, AbsError::Occupancy { device: 0, .. }));
        assert!(err.is_usage());
    }

    #[test]
    fn config_accessor_roundtrips() {
        let mut cfg = AbsConfig::small();
        cfg.stop = StopCondition::flips(10);
        cfg.pool_size = 11;
        let solver = Abs::new(cfg).unwrap();
        assert_eq!(solver.config().pool_size, 11);
    }

    #[test]
    fn dead_device_fails_the_solve_instead_of_hanging() {
        // Satellite 1 regression: one device, every block dead on
        // arrival. The pre-hardening host would spin forever in the
        // final wait; the watchdog now reports AllDevicesFailed.
        use vgpu::FaultPlan;
        let mut rng = StdRng::seed_from_u64(13);
        let q = Qubo::random(16, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.blocks_override = Some(2);
        cfg.machine.device.fault = Some(Arc::new(
            FaultPlan::new().panic_block(0, 0, 0).panic_block(0, 1, 0),
        ));
        cfg.stop = StopCondition::timeout(Duration::from_secs(30));
        let err = Abs::new(cfg).unwrap().solve(&q).unwrap_err();
        assert_eq!(err, AbsError::AllDevicesFailed);
        assert!(!err.is_usage());
    }

    #[test]
    fn quarantined_block_degrades_but_does_not_fail_the_solve() {
        use vgpu::FaultPlan;
        let mut rng = StdRng::seed_from_u64(14);
        let q = Qubo::random(32, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.blocks_override = Some(4);
        cfg.machine.device.fault = Some(Arc::new(FaultPlan::new().panic_block(0, 1, 2)));
        cfg.stop = StopCondition::flips(30_000);
        let r = solve(cfg, &q);
        assert!(r.degraded);
        assert_eq!(r.devices[0].status, DeviceStatus::Degraded);
        assert_eq!(r.devices[0].dead_blocks, 1);
        assert_eq!(r.search_units, 3, "dead block retires its unit");
        assert_eq!(r.evaluated, (r.total_flips + 3) * 33);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn hard_timeout_returns_no_result_when_nothing_arrives() {
        use vgpu::FaultPlan;
        let mut rng = StdRng::seed_from_u64(15);
        let q = Qubo::random(16, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.blocks_override = Some(1);
        // The only device stalls immediately and never produces; health
        // stays Healthy (a stall is silent), so only the hard timeout
        // can end the run.
        cfg.machine.device.fault = Some(Arc::new(FaultPlan::new().stall_device(0, 0)));
        cfg.stop = StopCondition::timeout(Duration::from_secs(60));
        cfg.watchdog.hard_timeout = Some(Duration::from_millis(300));
        let t0 = Instant::now();
        let err = Abs::new(cfg).unwrap().solve(&q).unwrap_err();
        assert_eq!(err, AbsError::NoResult);
        assert!(t0.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn stalled_device_is_excluded_and_its_targets_requeued() {
        use vgpu::FaultPlan;
        let mut rng = StdRng::seed_from_u64(16);
        let q = Qubo::random(32, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.num_devices = 2;
        cfg.machine.device.blocks_override = Some(2);
        // Device 1 stalls before consuming anything; device 0 keeps
        // producing, so the watchdog's relative-progress clock runs.
        cfg.machine.device.fault = Some(Arc::new(FaultPlan::new().stall_device(1, 0)));
        // The host drains results in bulk, so a run needs enough poll
        // rounds for staleness to accrue: use a wall-clock stop.
        cfg.watchdog.stall_poll_rounds = 10;
        cfg.stop = StopCondition::timeout(Duration::from_millis(400));
        let r = solve(cfg, &q);
        assert!(r.degraded);
        assert_eq!(r.devices[1].status, DeviceStatus::Stalled);
        // Everything seeded to device 1 was still in its queue:
        // 2 blocks × initial_targets_per_block (2).
        assert_eq!(r.devices[1].requeued_targets, 4);
        assert_eq!(r.requeued_targets, 4);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn corrupted_improvement_is_audited_and_rejected() {
        use vgpu::{Corruption, FaultPlan};
        let mut rng = StdRng::seed_from_u64(17);
        let q = Qubo::random(32, &mut rng);
        let mut cfg = AbsConfig::small();
        cfg.machine.device.blocks_override = Some(2);
        // Block 0 emits a record claiming an impossibly good energy for
        // the all-zeros solution; the host audit must re-price it and
        // throw it out.
        cfg.machine.device.fault = Some(Arc::new(FaultPlan::new().corrupt_record(
            0,
            0,
            1,
            Corruption::WrongEnergy,
        )));
        cfg.stop = StopCondition::flips(30_000);
        let r = solve(cfg, &q);
        assert_eq!(r.rejected_records, 1);
        assert_eq!(r.devices[0].rejected_records, 1);
        assert_eq!(r.best_energy, q.energy(&r.best), "best stays exact");
        assert!(r.best_energy > Energy::MIN / 2);
    }
}
