//! Resumable solve sessions: the §3.1 host loop as a value.
//!
//! [`crate::Abs::solve`] runs start-to-finish on the calling thread. An
//! [`AbsSession`] unbundles that into an explicit lifecycle so callers —
//! the CLI's signal handler in particular — can stop a solve gracefully,
//! checkpoint it, and resume it in a later process:
//!
//! * [`AbsSession::start`] spawns the device threads and seeds the
//!   target buffers; [`AbsSession::resume`] does the same from an
//!   on-disk [`Checkpoint`] instead of a fresh pool.
//! * [`AbsSession::poll`] runs one host poll round (drain results, breed
//!   targets, watchdog, telemetry, stride checkpoints) and reports
//!   whether a stop condition has fired.
//! * [`AbsSession::best`] steals the incumbent best at any time without
//!   disturbing the run.
//! * [`AbsSession::checkpoint_now`] quiesces the devices at a consistent
//!   counter boundary and atomically publishes a checkpoint.
//! * [`AbsSession::stop`] ends the run: joins every device thread,
//!   drains the event rings one final time, and returns a
//!   [`SolveResult`] whose scalar fields agree exactly with its metrics
//!   snapshot — including after an early stop.
//!
//! Resumed sessions account *cumulatively*: wall-clock, flip budgets,
//! history timestamps and every counter continue from the checkpointed
//! baseline, so a solve split across N processes reports the same totals
//! as one uninterrupted run (the kill-and-resume acceptance tests hold
//! this exactly).

use crate::checkpoint::{load_checkpoint, write_checkpoint, Checkpoint, DeviceBaseline};
use crate::config::AbsConfig;
use crate::error::AbsError;
use crate::stats::{write_metrics, DeviceReport, DeviceStatus, HistoryPoint, SolveResult};
use abs_telemetry::{Aggregator, DeviceSample, HostSample};
use qubo::{BitVec, Energy, Qubo};
use qubo_ga::{InsertOutcome, SolutionPool, TargetGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vgpu::{GlobalMem, HealthStatus, Machine, RunningMachine};

/// How long [`AbsSession::checkpoint_now`] waits for every live worker
/// to acknowledge the pause barrier before snapshotting anyway. A
/// stalled worker never acks, but its counters are frozen by virtue of
/// being stalled, so the snapshot is consistent either way.
const QUIESCE_DEADLINE: Duration = Duration::from_millis(250);

/// What one [`AbsSession::poll`] round observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionStatus {
    /// No stop condition has fired; keep polling.
    Running,
    /// A stop condition fired (target reached, timeout, flip budget, or
    /// hard deadline with a best in hand). Call [`AbsSession::stop`].
    StopConditionMet,
}

/// Host-side view of one device during the polling loop.
struct DeviceState {
    /// Counter value at the last poll.
    last_counter: u64,
    /// Consecutive poll rounds in which *other* devices progressed but
    /// this one did not (the watchdog's staleness clock).
    stale_rounds: u64,
    /// The watchdog excluded this device (stalled or dead): its targets
    /// were requeued and it receives no new work.
    excluded: bool,
    /// Status to report if excluded (`Stalled` or `Dead`).
    excluded_as: DeviceStatus,
    /// Targets moved *from* this device to healthy ones (cumulative
    /// across resumes).
    requeued: u64,
    /// Records the host rejected from this device (wrong length seen
    /// host-side, or failed energy audit; cumulative across resumes).
    host_rejected: u64,
}

/// A live, resumable ABS solve.
///
/// Construction ([`start`](AbsSession::start) /
/// [`resume`](AbsSession::resume)) spawns the device threads; dropping
/// the session stops and joins them. The host poll loop does *not* run
/// on its own thread — the owner drives it by calling
/// [`poll`](AbsSession::poll), typically via
/// [`run_to_completion`](AbsSession::run_to_completion).
pub struct AbsSession {
    config: AbsConfig,
    qubo: Arc<Qubo>,
    n: usize,
    machine: RunningMachine,
    start: Instant,
    rng: StdRng,
    pool: SolutionPool,
    gen: TargetGenerator,
    devs: Vec<DeviceState>,
    best: Option<BitVec>,
    best_energy: Energy,
    reached_target: bool,
    time_to_target: Option<Duration>,
    history: Vec<HistoryPoint>,
    received: u64,
    inserted: u64,
    aggregator: Aggregator,
    hard_deadline: Option<Instant>,
    next_metrics_write: Option<Instant>,
    next_checkpoint: Option<Instant>,
    /// Wall-clock accumulated by previous lives of this session chain.
    base_elapsed: Duration,
    /// Seed recorded in checkpoints: the original run's, surviving
    /// resumes for provenance.
    seed: u64,
    /// Per-device accounting carried over from previous lives (the
    /// device-side counters; host-side ones live in [`DeviceState`]).
    baselines: Vec<DeviceBaseline>,
    /// Checkpoint generation last published (or restored from).
    generation: u64,
    ckpt_writes: u64,
    ckpt_restores: u64,
    ckpt_rejected: u64,
    stop_met: bool,
}

impl std::fmt::Debug for AbsSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbsSession")
            .field("n", &self.n)
            .field("generation", &self.generation)
            .field("best_energy", &self.best_energy)
            .field("received", &self.received)
            .field("stop_met", &self.stop_met)
            .finish_non_exhaustive()
    }
}

impl AbsSession {
    /// Starts a fresh session: validates the configuration, seeds the
    /// pool and every device's target buffer, and spawns the device
    /// threads.
    ///
    /// # Errors
    /// [`AbsError::InvalidConfig`], [`AbsError::WarmStartLength`] or
    /// [`AbsError::Occupancy`], exactly as [`crate::Abs::solve`].
    pub fn start(config: AbsConfig, qubo: &Qubo) -> Result<Self, AbsError> {
        config.validate()?;
        let n = qubo.n();
        for warm in &config.initial_solutions {
            if warm.len() != n {
                return Err(AbsError::WarmStartLength {
                    expected: n,
                    got: warm.len(),
                });
            }
        }
        let machine = Machine::new(&config.machine);
        let blocks = Self::resolve_blocks(&machine, n)?;

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut pool = SolutionPool::random(config.pool_size, n, &mut rng);
        let mut gen = TargetGenerator::new(n, config.ga, config.seed ^ 0x9e37_79b9_7f4a_7c15);

        // Warm starts (lengths checked above): into the pool as
        // unevaluated parents, and to the front of every target queue so
        // devices price them exactly.
        for warm in &config.initial_solutions {
            let _ = pool.insert(warm.clone(), qubo::energy::UNEVALUATED);
        }
        // Step 1: seed every device's target buffer, then launch.
        let mems = machine.mems();
        for (mem, &b) in mems.iter().zip(&blocks) {
            for warm in &config.initial_solutions {
                mem.push_target(warm.clone());
            }
            for _ in 0..b.max(1) * config.initial_targets_per_block.max(1) {
                mem.push_target(gen.generate(&pool));
            }
        }
        let num_devices = mems.len();
        let seed = config.seed;
        Ok(Self::assemble(
            config,
            Arc::new(qubo.clone()),
            n,
            machine,
            rng,
            pool,
            gen,
            Restored {
                num_devices,
                seed,
                ..Restored::default()
            },
        ))
    }

    /// Resumes a session from the newest valid checkpoint generation at
    /// `path`: the pool, RNG streams, best record, history and all
    /// cumulative accounting continue exactly where the checkpoint left
    /// them; a fresh machine is spawned and re-seeded from the restored
    /// pool (in-flight device work at checkpoint time is regenerated,
    /// not replayed).
    ///
    /// The restored best is re-audited against `qubo` — a checkpoint
    /// from a different problem is rejected even when `n` matches.
    ///
    /// # Errors
    /// [`AbsError::Checkpoint`] when no on-disk generation passes CRC
    /// validation or the checkpoint does not match `qubo`/`config`;
    /// otherwise as [`AbsSession::start`].
    pub fn resume(config: AbsConfig, qubo: &Qubo, path: &Path) -> Result<Self, AbsError> {
        config.validate()?;
        let fault = config.machine.device.fault.clone();
        let (ckpt, rejected) = load_checkpoint(path, fault.as_deref())?;
        Self::resume_from(config, qubo, ckpt, rejected)
    }

    /// Resumes from an already-loaded [`Checkpoint`] (the
    /// [`AbsSession::resume`] path after disk validation).
    ///
    /// # Errors
    /// As [`AbsSession::resume`].
    pub fn resume_from(
        config: AbsConfig,
        qubo: &Qubo,
        ckpt: Checkpoint,
        rejected: u64,
    ) -> Result<Self, AbsError> {
        config.validate()?;
        let n = qubo.n();
        if ckpt.n != n {
            return Err(AbsError::Checkpoint(format!(
                "checkpoint is for an {}-bit problem, this one has {n} bits",
                ckpt.n
            )));
        }
        if ckpt.devices.len() != config.machine.num_devices {
            return Err(AbsError::Checkpoint(format!(
                "checkpoint has {} device baselines, the machine has {} devices",
                ckpt.devices.len(),
                config.machine.num_devices
            )));
        }
        // Re-audit the incumbent: energies in a valid checkpoint are
        // exact, so a mismatch means the checkpoint belongs to a
        // different problem of the same size.
        if let Some((x, e)) = &ckpt.best {
            if x.len() != n || qubo.energy(x) != *e {
                return Err(AbsError::Checkpoint(
                    "restored best solution fails the energy re-audit \
                     (checkpoint from a different problem?)"
                        .into(),
                ));
            }
        }
        let pool = SolutionPool::restore(ckpt.pool_capacity, ckpt.pool_entries, ckpt.pool_ops)
            .map_err(|m| AbsError::Checkpoint(format!("restored pool invalid: {m}")))?;
        if pool.is_empty() {
            return Err(AbsError::Checkpoint("restored pool is empty".into()));
        }
        let mut gen = TargetGenerator::restore(n, config.ga, ckpt.gen_rng, ckpt.usage);
        let rng = StdRng::from_state(ckpt.master_rng);

        let machine = Machine::new(&config.machine);
        let blocks = Self::resolve_blocks(&machine, n)?;
        // Re-seed the fresh machine from the restored pool: no warm
        // starts (they were consumed by the original life), just bred
        // targets, drawn from the restored generator stream.
        let mems = machine.mems();
        for (mem, &b) in mems.iter().zip(&blocks) {
            for _ in 0..b.max(1) * config.initial_targets_per_block.max(1) {
                mem.push_target(gen.generate(&pool));
            }
        }
        let num_devices = mems.len();
        // Host-side per-device counters continue in DeviceState (the
        // authoritative copy); the stored baselines keep only the
        // device-side counters, zeroing the host-side pair so nothing is
        // double-counted when the next checkpoint folds them back.
        let baselines: Vec<DeviceBaseline> = ckpt
            .devices
            .iter()
            .map(|b| DeviceBaseline {
                host_rejected: 0,
                requeued: 0,
                ..*b
            })
            .collect();
        let restored = Restored {
            num_devices,
            seed: ckpt.seed,
            best: ckpt.best,
            reached_target: ckpt.reached_target,
            time_to_target: ckpt.time_to_target_ns.map(duration_from_ns),
            history: ckpt.history,
            received: ckpt.received,
            inserted: ckpt.inserted,
            base_elapsed: duration_from_ns(ckpt.elapsed_ns),
            host_sides: ckpt
                .devices
                .iter()
                .map(|b| (b.host_rejected, b.requeued))
                .collect(),
            baselines,
            generation: ckpt.generation,
            ckpt_restores: 1,
            ckpt_rejected: rejected,
        };
        Ok(Self::assemble(
            config,
            Arc::new(qubo.clone()),
            n,
            machine,
            rng,
            pool,
            gen,
            restored,
        ))
    }

    fn resolve_blocks(machine: &Machine, n: usize) -> Result<Vec<usize>, AbsError> {
        machine
            .devices()
            .iter()
            .enumerate()
            .map(|(i, d)| {
                d.resolve_blocks(n)
                    .map_err(|source| AbsError::Occupancy { device: i, source })
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        config: AbsConfig,
        qubo: Arc<Qubo>,
        n: usize,
        machine: Machine,
        rng: StdRng,
        pool: SolutionPool,
        gen: TargetGenerator,
        r: Restored,
    ) -> Self {
        let start = Instant::now();
        let devs: Vec<DeviceState> = (0..r.num_devices)
            .map(|i| {
                let (host_rejected, requeued) = r.host_sides.get(i).copied().unwrap_or((0, 0));
                DeviceState {
                    last_counter: 0,
                    stale_rounds: 0,
                    excluded: false,
                    excluded_as: DeviceStatus::Healthy,
                    requeued,
                    host_rejected,
                }
            })
            .collect();
        let baselines = if r.baselines.is_empty() {
            vec![DeviceBaseline::default(); r.num_devices]
        } else {
            r.baselines
        };
        let best_energy = r.best.as_ref().map_or(Energy::MAX, |(_, e)| *e);
        // A restored incumbent may already satisfy *this* config's
        // target (resume can tighten or add one): judge it now, or the
        // target-reached stop would wait forever for an improvement.
        let mut reached_target = r.reached_target;
        let mut time_to_target = r.time_to_target;
        if let Some(t) = config.stop.target_energy {
            if r.best.is_some() && best_energy <= t && time_to_target.is_none() {
                reached_target = true;
                time_to_target = Some(r.base_elapsed);
            }
        }
        let aggregator = Aggregator::new(r.num_devices, n);
        let machine = machine.start(Arc::clone(&qubo));
        Self {
            hard_deadline: config.watchdog.hard_timeout.map(|d| start + d),
            next_metrics_write: config
                .metrics
                .interval
                .filter(|_| config.metrics.out.is_some())
                .map(|iv| start + iv),
            next_checkpoint: config
                .checkpoint
                .interval
                .filter(|_| config.checkpoint.out.is_some())
                .map(|iv| start + iv),
            config,
            qubo,
            n,
            machine,
            start,
            rng,
            pool,
            gen,
            devs,
            best: r.best.as_ref().map(|(x, _)| x.clone()),
            best_energy,
            reached_target,
            time_to_target,
            history: r.history,
            received: r.received,
            inserted: r.inserted,
            aggregator,
            base_elapsed: r.base_elapsed,
            seed: r.seed,
            baselines,
            generation: r.generation,
            ckpt_writes: 0,
            ckpt_restores: r.ckpt_restores,
            ckpt_rejected: r.ckpt_rejected,
            stop_met: false,
        }
    }

    /// The configuration this session runs under.
    #[must_use]
    pub fn config(&self) -> &AbsConfig {
        &self.config
    }

    /// Steals the incumbent best without disturbing the run.
    #[must_use]
    pub fn best(&self) -> Option<(&BitVec, Energy)> {
        self.best.as_ref().map(|x| (x, self.best_energy))
    }

    /// Checkpoint generation last published by (or restored into) this
    /// session chain; 0 before the first write.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cumulative solve wall-clock: previous lives plus this one.
    #[must_use]
    pub fn total_elapsed(&self) -> Duration {
        self.base_elapsed + self.start.elapsed()
    }

    /// Cumulative device flips: checkpointed baseline plus live counters.
    #[must_use]
    pub fn total_flips(&self) -> u64 {
        let base: u64 = self.baselines.iter().map(|b| b.flips).sum();
        let live: u64 = self.machine.mems().iter().map(|m| m.total_flips()).sum();
        base + live
    }

    /// Cumulative search units started, baseline plus live — the `m` of
    /// the Theorem-1 projection `(flips + m) × (n + 1)`.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        let base: u64 = self.baselines.iter().map(|b| b.units).sum();
        let live: u64 = self.machine.mems().iter().map(|m| m.total_units()).sum();
        base + live
    }

    /// Cumulative solutions evaluated, baseline plus live.
    #[must_use]
    pub fn total_evaluated(&self) -> u64 {
        let base: u64 = self.baselines.iter().map(|b| b.evaluated).sum();
        let live: u64 = self
            .machine
            .mems()
            .iter()
            .map(|m| m.total_evaluated(self.n))
            .sum();
        base + live
    }

    /// A live snapshot of the telemetry registry, as folded at the most
    /// recent progressed [`poll`](AbsSession::poll) round. This is what
    /// a long-running host (the `abs-server` `/metrics` endpoint)
    /// exposes mid-solve; the authoritative end-of-run snapshot still
    /// arrives in [`SolveResult::metrics`](crate::SolveResult).
    #[must_use]
    pub fn metrics_snapshot(&self) -> abs_telemetry::MetricsSnapshot {
        self.aggregator.snapshot()
    }

    /// Runs one host poll round: watchdog, drain/insert/re-target,
    /// telemetry fold, periodic metrics and stride checkpoints, stop
    /// checks. Yields the thread when nothing progressed, so a driver
    /// loop does not busy-spin.
    ///
    /// # Errors
    /// [`AbsError::NoResult`] when the watchdog hard timeout expires
    /// with no result in hand; [`AbsError::AllDevicesFailed`] when every
    /// device is excluded before a result arrives. The session is
    /// consumed by `Drop` in both cases (device threads are joined).
    pub fn poll(&mut self) -> Result<SessionStatus, AbsError> {
        if self.stop_met {
            return Ok(SessionStatus::StopConditionMet);
        }
        let mems = self.machine.mems().to_vec();

        // Watchdog: loud failures first. A device whose health region
        // says Dead will never move its counter again.
        for i in 0..mems.len() {
            if !self.devs[i].excluded && mems[i].health().status() == HealthStatus::Dead {
                Self::fail_device(i, DeviceStatus::Dead, &mems, &mut self.devs);
            }
        }

        // Steps 2–4: poll counters, drain, insert, re-target.
        let mut progressed_any = false;
        for (i, mem) in mems.iter().enumerate() {
            if self.devs[i].excluded {
                continue;
            }
            let c = mem.counter();
            if c == self.devs[i].last_counter {
                continue;
            }
            self.devs[i].last_counter = c;
            self.devs[i].stale_rounds = 0;
            progressed_any = true;
            let records = mem.drain_results();
            let mut arrived = 0usize;
            for rec in records {
                self.received += 1;
                if !self.accept_record(&rec.x, rec.energy) {
                    self.devs[i].host_rejected += 1;
                    continue;
                }
                arrived += 1;
                if rec.energy < self.best_energy {
                    self.best_energy = rec.energy;
                    self.best = Some(rec.x.clone());
                    let flips_now = {
                        let base: u64 = self.baselines.iter().map(|b| b.flips).sum();
                        base + mems.iter().map(|m| m.total_flips()).sum::<u64>()
                    };
                    self.history.push(HistoryPoint {
                        elapsed_ns: self.total_elapsed().as_nanos(),
                        energy: rec.energy,
                        flips: flips_now,
                    });
                    if let Some(t) = self.config.stop.target_energy {
                        if rec.energy <= t && self.time_to_target.is_none() {
                            self.reached_target = true;
                            self.time_to_target = Some(self.total_elapsed());
                        }
                    }
                }
                if self.pool.insert(rec.x, rec.energy) == InsertOutcome::Inserted {
                    self.inserted += 1;
                }
            }
            // "The number of generated solutions is set to be the same
            // as the number of newly arrived solutions."
            for _ in 0..arrived {
                mem.push_target(self.gen.generate(&self.pool));
            }
        }

        // Watchdog: silent stalls. Staleness accrues only in rounds
        // where some *other* device progressed, so a globally slow
        // machine (loaded CI box) never trips it.
        if progressed_any && self.config.watchdog.stall_poll_rounds > 0 {
            for i in 0..mems.len() {
                if self.devs[i].excluded || mems[i].counter() != self.devs[i].last_counter {
                    continue;
                }
                self.devs[i].stale_rounds += 1;
                if self.devs[i].stale_rounds > self.config.watchdog.stall_poll_rounds {
                    Self::fail_device(i, DeviceStatus::Stalled, &mems, &mut self.devs);
                }
            }
        }

        // Telemetry folds on the same cadence results are drained; idle
        // spin rounds leave the device rings untouched.
        if progressed_any {
            self.poll_metrics(&mems);
        }
        if let Some(due) = self.next_metrics_write {
            if Instant::now() >= due {
                if !progressed_any {
                    self.poll_metrics(&mems);
                }
                if let Some(path) = self.config.metrics.out.clone() {
                    // Periodic exposition is best-effort: an unwritable
                    // path must not kill a running solve.
                    let _ = write_metrics(&path, &self.aggregator.snapshot());
                }
                self.next_metrics_write =
                    self.config.metrics.interval.map(|iv| Instant::now() + iv);
            }
        }
        // Stride checkpoints: quiesce, snapshot, publish. A failed write
        // is a real error — silently losing durability defeats the
        // feature — but the stride only arms when checkpointing is on.
        if let Some(due) = self.next_checkpoint {
            if Instant::now() >= due {
                self.checkpoint_now()?;
                self.next_checkpoint = self
                    .config
                    .checkpoint
                    .interval
                    .map(|iv| Instant::now() + iv);
            }
        }

        // Stop checks — all cumulative across resumes.
        if self.reached_target {
            self.stop_met = true;
            return Ok(SessionStatus::StopConditionMet);
        }
        if let Some(to) = self.config.stop.timeout {
            if self.total_elapsed() >= to {
                self.stop_met = true;
                return Ok(SessionStatus::StopConditionMet);
            }
        }
        if let Some(mf) = self.config.stop.max_flips {
            if self.total_flips() >= mf {
                self.stop_met = true;
                return Ok(SessionStatus::StopConditionMet);
            }
        }
        if let Some(deadline) = self.hard_deadline {
            if Instant::now() >= deadline {
                if self.best.is_some() {
                    self.stop_met = true;
                    return Ok(SessionStatus::StopConditionMet);
                }
                return Err(AbsError::NoResult);
            }
        }
        if self.devs.iter().all(|d| d.excluded) {
            if self.best.is_some() {
                self.stop_met = true;
                return Ok(SessionStatus::StopConditionMet);
            }
            return Err(AbsError::AllDevicesFailed);
        }
        if !progressed_any {
            std::thread::yield_now();
        }
        Ok(SessionStatus::Running)
    }

    /// Quiesces every device at a consistent counter boundary and
    /// atomically publishes a checkpoint at the configured path. The
    /// pause barrier is released *before* the file I/O, so the devices
    /// only stall for the in-memory snapshot.
    ///
    /// # Errors
    /// [`AbsError::Checkpoint`] when no checkpoint path is configured or
    /// the filesystem refuses the write.
    pub fn checkpoint_now(&mut self) -> Result<(), AbsError> {
        let Some(path) = self.config.checkpoint.out.clone() else {
            return Err(AbsError::Checkpoint("no checkpoint path configured".into()));
        };
        let ckpt = self.quiesce_and_snapshot();
        let fault = self.config.machine.device.fault.clone();
        write_checkpoint(
            &path,
            &ckpt,
            self.config.checkpoint.keep.max(1),
            fault.as_deref(),
            self.ckpt_writes,
        )?;
        self.ckpt_writes += 1;
        self.generation = ckpt.generation;
        Ok(())
    }

    /// Pauses the workers, snapshots the full session state in memory,
    /// and releases the pause barrier before returning.
    fn quiesce_and_snapshot(&mut self) -> Checkpoint {
        let mems = self.machine.mems().to_vec();
        for mem in &mems {
            mem.request_pause();
        }
        let deadline = Instant::now() + QUIESCE_DEADLINE;
        while !mems.iter().all(|m| m.quiesced()) && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let devices: Vec<DeviceBaseline> = mems
            .iter()
            .zip(&self.devs)
            .zip(&self.baselines)
            .map(|((mem, d), base)| {
                let stats = mem.event_stats();
                DeviceBaseline {
                    flips: base.flips + mem.total_flips(),
                    units: base.units + mem.total_units(),
                    evaluated: base.evaluated + mem.total_evaluated(self.n),
                    iterations: base.iterations + mem.total_iterations(),
                    results: base.results + mem.counter(),
                    rejected_records: base.rejected_records + mem.rejected_records(),
                    dropped_targets: base.dropped_targets + mem.dropped_targets(),
                    overflow_results: base.overflow_results + mem.overflow_results(),
                    events_written: base.events_written + stats.written,
                    events_overwritten: base.events_overwritten + stats.overwritten,
                    host_rejected: d.host_rejected,
                    requeued: d.requeued,
                }
            })
            .collect();
        let ckpt = Checkpoint {
            n: self.n,
            seed: self.seed,
            generation: self.generation + 1,
            master_rng: self.rng.state(),
            gen_rng: self.gen.rng_state(),
            usage: self.gen.usage(),
            pool_capacity: self.pool.capacity(),
            pool_entries: self.pool.iter().cloned().collect(),
            pool_ops: self.pool.ops(),
            best: self.best.clone().map(|x| (x, self.best_energy)),
            reached_target: self.reached_target,
            time_to_target_ns: self.time_to_target.map(|d| d.as_nanos()),
            history: self.history.clone(),
            received: self.received,
            inserted: self.inserted,
            elapsed_ns: self.total_elapsed().as_nanos(),
            devices,
        };
        for mem in &mems {
            mem.release_pause();
        }
        ckpt
    }

    /// Ends the run: waits for a first result if none has arrived yet,
    /// stops and joins every device thread, folds one final telemetry
    /// poll over the quiescent (and fully drained) counters, and builds
    /// the result. The final metrics snapshot and the scalar fields
    /// agree exactly — also when the caller stops early, before any
    /// stop condition fired.
    ///
    /// # Errors
    /// [`AbsError::NoResult`] / [`AbsError::AllDevicesFailed`] when the
    /// run ends with no result at all.
    pub fn stop(mut self) -> Result<SolveResult, AbsError> {
        let mems = self.machine.mems().to_vec();
        // Degenerate budgets (or an early caller stop) can end the poll
        // phase before any result arrived; the devices are still running
        // here, so a result will come — unless every device has failed,
        // which the wait must detect instead of spinning forever.
        if self.best.is_none() {
            'wait: loop {
                for (i, mem) in mems.iter().enumerate() {
                    for rec in mem.drain_results() {
                        self.received += 1;
                        if !self.accept_record(&rec.x, rec.energy) {
                            self.devs[i].host_rejected += 1;
                            continue;
                        }
                        if rec.energy < self.best_energy {
                            self.best_energy = rec.energy;
                            self.best = Some(rec.x);
                        }
                    }
                    if !self.devs[i].excluded && mems[i].health().status() == HealthStatus::Dead {
                        Self::fail_device(i, DeviceStatus::Dead, &mems, &mut self.devs);
                    }
                }
                if self.best.is_some() {
                    break 'wait;
                }
                if let Some(deadline) = self.hard_deadline {
                    if Instant::now() >= deadline {
                        return Err(AbsError::NoResult);
                    }
                }
                if self.devs.iter().all(|d| d.excluded) {
                    return Err(AbsError::AllDevicesFailed);
                }
                std::thread::yield_now();
            }
        }
        // Join every device thread before the final accounting: only
        // then are the per-device counters quiescent — a fast stop can
        // otherwise beat a device's workers to their first add_units.
        self.machine.join();
        let elapsed = self.total_elapsed();
        // Final authoritative telemetry poll: drains the event rings
        // (device_sample drains) and stamps the same elapsed value the
        // result's own rate field uses, so snapshot and SolveResult
        // agree exactly — including on the early-stop path.
        self.poll_metrics_at(&mems, elapsed.as_secs_f64());
        let metrics = self.aggregator.snapshot();

        let fold = |f: fn(&DeviceBaseline) -> u64, live: &dyn Fn(&GlobalMem) -> u64| -> u64 {
            self.baselines.iter().map(f).sum::<u64>() + mems.iter().map(|m| live(m)).sum::<u64>()
        };
        let n = self.n;
        let flips = fold(|b| b.flips, &|m| m.total_flips());
        let units = fold(|b| b.units, &|m| m.total_units());
        let evaluated = fold(|b| b.evaluated, &|m| m.total_evaluated(n));
        let iterations = fold(|b| b.iterations, &|m| m.total_iterations());
        let devices: Vec<DeviceReport> = mems
            .iter()
            .zip(&self.devs)
            .zip(&self.baselines)
            .enumerate()
            .map(|(i, ((mem, d), base))| {
                let health = mem.health();
                let status = if d.excluded {
                    d.excluded_as
                } else {
                    match health.status() {
                        HealthStatus::Healthy => DeviceStatus::Healthy,
                        HealthStatus::Degraded { .. } => DeviceStatus::Degraded,
                        HealthStatus::Dead => DeviceStatus::Dead,
                    }
                };
                DeviceReport {
                    device: i,
                    status,
                    dead_blocks: health.dead_blocks(),
                    total_blocks: health.total_blocks(),
                    rejected_records: base.rejected_records
                        + mem.rejected_records()
                        + d.host_rejected,
                    requeued_targets: d.requeued,
                }
            })
            .collect();
        let Some(best) = self.best.take() else {
            return Err(AbsError::NoResult);
        };
        let result = SolveResult {
            best,
            best_energy: self.best_energy,
            reached_target: self.reached_target,
            time_to_target: self.time_to_target,
            elapsed,
            total_flips: flips,
            evaluated,
            search_rate: evaluated as f64 / elapsed.as_secs_f64().max(1e-12),
            iterations,
            results_received: self.received,
            results_inserted: self.inserted,
            history: std::mem::take(&mut self.history),
            degraded: devices.iter().any(|d| !d.status.is_healthy()),
            rejected_records: devices.iter().map(|d| d.rejected_records).sum(),
            requeued_targets: devices.iter().map(|d| d.requeued_targets).sum(),
            search_units: units,
            devices,
            metrics,
        };
        if let Some(path) = &self.config.metrics.out {
            // Best-effort final exposition; the CLI re-writes this file
            // itself and surfaces I/O errors to the user.
            let _ = write_metrics(path, &result.metrics);
        }
        Ok(result)
    }

    /// Drives [`poll`](AbsSession::poll) until a stop condition fires,
    /// then [`stop`](AbsSession::stop)s. This is [`crate::Abs::solve`].
    ///
    /// # Errors
    /// As [`AbsSession::poll`] and [`AbsSession::stop`].
    pub fn run_to_completion(mut self) -> Result<SolveResult, AbsError> {
        loop {
            if self.poll()? == SessionStatus::StopConditionMet {
                return self.stop();
            }
        }
    }

    /// Folds the current host+device state into the aggregator, stamping
    /// the cumulative elapsed time at this poll boundary.
    fn poll_metrics(&mut self, mems: &[Arc<GlobalMem>]) {
        self.poll_metrics_at(mems, self.total_elapsed().as_secs_f64());
    }

    fn poll_metrics_at(&mut self, mems: &[Arc<GlobalMem>], elapsed_secs: f64) {
        let samples: Vec<DeviceSample> = mems
            .iter()
            .zip(&self.devs)
            .zip(&self.baselines)
            .map(|((m, d), base)| Self::device_sample(m, d, base, self.n))
            .collect();
        let pool_ops = self.pool.ops();
        let host = HostSample {
            results_received: self.received,
            results_inserted: self.inserted,
            pool_inserted: pool_ops.inserted,
            pool_duplicate: pool_ops.duplicate,
            pool_worse: pool_ops.worse,
            host_rejected: self.devs.iter().map(|d| d.host_rejected).sum(),
            requeued_targets: self.devs.iter().map(|d| d.requeued).sum(),
            checkpoint_writes: self.ckpt_writes,
            checkpoint_restores: self.ckpt_restores,
            checkpoint_rejected: self.ckpt_rejected,
            session_generation: self.generation,
            elapsed_secs,
        };
        self.aggregator.poll(&samples, &host);
    }

    /// Reads one device's counters, health label and drained events into
    /// a telemetry sample, folding in the checkpointed baseline so every
    /// series continues monotonically across resumes.
    fn device_sample(
        mem: &GlobalMem,
        d: &DeviceState,
        base: &DeviceBaseline,
        n: usize,
    ) -> DeviceSample {
        let health = mem.health();
        let label = if d.excluded {
            d.excluded_as.label()
        } else {
            match health.status() {
                HealthStatus::Healthy => "healthy",
                HealthStatus::Degraded { .. } => "degraded",
                HealthStatus::Dead => "dead",
            }
        };
        let drained = mem.drain_events();
        DeviceSample {
            flips: base.flips + mem.total_flips(),
            units: base.units + mem.total_units(),
            evaluated: base.evaluated + mem.total_evaluated(n),
            iterations: base.iterations + mem.total_iterations(),
            results: base.results + mem.counter(),
            rejected_records: base.rejected_records + mem.rejected_records(),
            dropped_targets: base.dropped_targets + mem.dropped_targets(),
            overflow_results: base.overflow_results + mem.overflow_results(),
            dead_blocks: health.dead_blocks(),
            total_blocks: health.total_blocks(),
            health: label,
            kernel: mem.flip_kernel_name(),
            storage: mem.matrix_storage_name(),
            events: drained.events,
            events_written: base.events_written + drained.written,
            events_overwritten: base.events_overwritten + drained.overwritten,
        }
    }

    /// Host-side record validation: a defensive length check on every
    /// record, plus the energy audit of [`crate::WatchdogConfig`] — a
    /// record is audited when it would improve the incumbent best (so
    /// the reported best is always exact) or when the audit stride
    /// samples it. Returns `false` for records that must be discarded.
    ///
    /// This is the documented deviation from the paper's "host never
    /// computes the energy" rule: with real hardware the device is
    /// trusted; here the fault model explicitly includes corrupted
    /// records, so claimed improvements are re-priced before they can
    /// displace the best.
    fn accept_record(&self, x: &BitVec, claimed: Energy) -> bool {
        if x.len() != self.n {
            return false;
        }
        let stride = self.config.watchdog.audit_stride;
        let improves = claimed < self.best_energy;
        let sampled = stride > 0 && self.received.is_multiple_of(stride);
        if improves || sampled {
            return self.qubo.energy(x) == claimed;
        }
        true
    }

    /// Excludes device `i`: stops it, drains its in-flight targets and
    /// deals them round-robin to the remaining devices (counted on the
    /// failed device's report), and records the status it failed as.
    fn fail_device(
        i: usize,
        status: DeviceStatus,
        mems: &[Arc<GlobalMem>],
        devs: &mut [DeviceState],
    ) {
        devs[i].excluded = true;
        devs[i].excluded_as = status;
        mems[i].request_stop();
        let orphans = mems[i].drain_targets();
        let healthy: Vec<usize> = (0..mems.len()).filter(|&j| !devs[j].excluded).collect();
        if healthy.is_empty() {
            return;
        }
        for (k, t) in orphans.into_iter().enumerate() {
            mems[healthy[k % healthy.len()]].push_target(t);
            devs[i].requeued += 1;
        }
    }
}

/// State threaded from `start`/`resume_from` into `assemble`: zeroed for
/// a fresh session, populated from the checkpoint for a resumed one.
#[derive(Default)]
struct Restored {
    num_devices: usize,
    seed: u64,
    best: Option<(BitVec, Energy)>,
    reached_target: bool,
    time_to_target: Option<Duration>,
    history: Vec<HistoryPoint>,
    received: u64,
    inserted: u64,
    base_elapsed: Duration,
    /// Per-device `(host_rejected, requeued)` pairs.
    host_sides: Vec<(u64, u64)>,
    baselines: Vec<DeviceBaseline>,
    generation: u64,
    ckpt_restores: u64,
    ckpt_rejected: u64,
}

/// Converts checkpointed nanoseconds (u128, as `Duration::as_nanos`
/// yields) back to a `Duration` without truncating past u64.
fn duration_from_ns(ns: u128) -> Duration {
    let secs = (ns / 1_000_000_000) as u64;
    let nanos = (ns % 1_000_000_000) as u32;
    Duration::new(secs, nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StopCondition;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "abs-session-{}-{}-{tag}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("ckpt.bin")
    }

    fn small_cfg(stop: StopCondition) -> AbsConfig {
        let mut cfg = AbsConfig::small();
        cfg.stop = stop;
        cfg
    }

    #[test]
    fn session_lifecycle_matches_solve() {
        let mut rng = StdRng::seed_from_u64(21);
        let q = Qubo::random(64, &mut rng);
        let cfg = small_cfg(StopCondition::flips(50_000));
        let session = AbsSession::start(cfg, &q).unwrap();
        let r = session.run_to_completion().unwrap();
        assert!(r.total_flips >= 50_000);
        assert_eq!(r.search_units, 8);
        assert_eq!(r.evaluated, (r.total_flips + r.search_units) * 65);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn early_stop_returns_an_exact_result() {
        // Stop long before the flip budget: the result must still carry
        // an exact best and self-consistent accounting.
        let mut rng = StdRng::seed_from_u64(22);
        let q = Qubo::random(48, &mut rng);
        let cfg = small_cfg(StopCondition::flips(u64::MAX / 2));
        let mut session = AbsSession::start(cfg, &q).unwrap();
        for _ in 0..50 {
            session.poll().unwrap();
        }
        let r = session.stop().unwrap();
        assert_eq!(r.best_energy, q.energy(&r.best));
        assert_eq!(r.evaluated, (r.total_flips + r.search_units) * 49);
        assert!(!r.reached_target);
    }

    #[test]
    fn steal_best_observes_improvements_without_stopping() {
        let mut rng = StdRng::seed_from_u64(23);
        let q = Qubo::random(64, &mut rng);
        let cfg = small_cfg(StopCondition::flips(u64::MAX / 2));
        let mut session = AbsSession::start(cfg, &q).unwrap();
        let mut seen = None;
        for _ in 0..100_000 {
            session.poll().unwrap();
            if let Some((x, e)) = session.best() {
                assert_eq!(q.energy(x), e, "stolen best must be exact");
                seen = Some(e);
                break;
            }
        }
        assert!(seen.is_some(), "no best observed in 100k polls");
        let r = session.stop().unwrap();
        assert!(r.best_energy <= seen.unwrap());
    }

    #[test]
    fn checkpoint_now_requires_a_configured_path() {
        let mut rng = StdRng::seed_from_u64(24);
        let q = Qubo::random(32, &mut rng);
        let cfg = small_cfg(StopCondition::flips(1_000));
        let mut session = AbsSession::start(cfg, &q).unwrap();
        let err = session.checkpoint_now().unwrap_err();
        assert!(matches!(err, AbsError::Checkpoint(_)));
        let _ = session.stop().unwrap();
    }

    #[test]
    fn checkpoint_and_resume_continue_cumulative_accounting() {
        let mut rng = StdRng::seed_from_u64(25);
        let q = Qubo::random(48, &mut rng);
        let path = temp_path("cumulative");

        let mut cfg = small_cfg(StopCondition::flips(u64::MAX / 2));
        cfg.checkpoint.out = Some(path.clone());
        let mut session = AbsSession::start(cfg.clone(), &q).unwrap();
        // Poll until some work happened, then checkpoint and abandon the
        // session (drop joins the machine — a graceful "crash").
        while session.total_flips() < 5_000 {
            session.poll().unwrap();
        }
        session.checkpoint_now().unwrap();
        assert_eq!(session.generation(), 1);
        let flips_at_ckpt = {
            let (ckpt, rejected) = load_checkpoint(&path, None).unwrap();
            assert_eq!(rejected, 0);
            assert_eq!(ckpt.generation, 1);
            let base: u64 = ckpt.devices.iter().map(|b| b.flips).sum();
            // Quiesce consistency: the dense invariant holds on the
            // checkpointed baseline itself.
            let units: u64 = ckpt.devices.iter().map(|b| b.units).sum();
            let evaluated: u64 = ckpt.devices.iter().map(|b| b.evaluated).sum();
            assert_eq!(evaluated, (base + units) * 49);
            base
        };
        assert!(flips_at_ckpt >= 5_000);
        drop(session);

        // Resume with a *cumulative* flip budget only slightly above the
        // checkpoint: the restored baseline must count toward it.
        let mut cfg2 = cfg;
        cfg2.stop = StopCondition::flips(flips_at_ckpt + 1_000);
        let session = AbsSession::resume(cfg2, &q, &path).unwrap();
        assert_eq!(session.generation(), 1);
        assert!(session.total_flips() >= flips_at_ckpt);
        let r = session.run_to_completion().unwrap();
        assert!(r.total_flips >= flips_at_ckpt + 1_000);
        assert_eq!(r.best_energy, q.energy(&r.best));
        // Resumed run re-registers its 8 blocks on top of the baseline's.
        assert_eq!(r.search_units, 16);
        assert_eq!(r.evaluated, (r.total_flips + r.search_units) * 49);
        // Telemetry agrees with the folded scalars on the final poll.
        assert_eq!(r.metrics.counter_total("abs_flips_total"), r.total_flips);
        assert_eq!(r.metrics.counter_total("abs_checkpoint_restores_total"), 1);
        assert_eq!(r.metrics.gauge("abs_session_generation"), Some(1.0));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn resume_rejects_a_mismatched_problem() {
        let mut rng = StdRng::seed_from_u64(26);
        let q = Qubo::random(32, &mut rng);
        let path = temp_path("mismatch");
        let mut cfg = small_cfg(StopCondition::flips(u64::MAX / 2));
        cfg.checkpoint.out = Some(path.clone());
        let mut session = AbsSession::start(cfg.clone(), &q).unwrap();
        while session.best().is_none() {
            session.poll().unwrap();
        }
        session.checkpoint_now().unwrap();
        drop(session);

        // Wrong size: refused by the n check.
        let q16 = Qubo::random(16, &mut rng);
        let err = AbsSession::resume(cfg.clone(), &q16, &path).unwrap_err();
        assert!(matches!(err, AbsError::Checkpoint(_)));
        // Same size, different problem: refused by the best re-audit.
        let q32 = Qubo::random(32, &mut rng);
        let err = AbsSession::resume(cfg.clone(), &q32, &path).unwrap_err();
        assert!(matches!(err, AbsError::Checkpoint(_)));
        // Wrong device count: refused by the baseline check.
        let mut cfg2 = cfg;
        cfg2.machine.num_devices = 2;
        let err = AbsSession::resume(cfg2, &q, &path).unwrap_err();
        assert!(matches!(err, AbsError::Checkpoint(_)));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn denied_checkpoint_write_surfaces_through_poll() {
        // A stride checkpoint whose write the filesystem refuses must
        // come back as `Err(Checkpoint)` from `poll`, not vanish into a
        // log line — the serving layer turns this into `Failed{reason}`.
        let mut rng = StdRng::seed_from_u64(29);
        let q = Qubo::random(32, &mut rng);
        let path = temp_path("deny");
        let mut cfg = small_cfg(StopCondition::flips(u64::MAX / 2));
        cfg.checkpoint.out = Some(path.clone());
        cfg.checkpoint.interval = Some(Duration::from_millis(1));
        cfg.machine.device.fault = Some(std::sync::Arc::new(
            vgpu::FaultPlan::default().deny_write(0),
        ));
        let mut session = AbsSession::start(cfg, &q).unwrap();
        let err = loop {
            match session.poll() {
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        match err {
            AbsError::Checkpoint(reason) => {
                assert!(reason.contains("injected write denial"), "{reason}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn stride_checkpoints_fire_from_the_poll_loop() {
        let mut rng = StdRng::seed_from_u64(27);
        let q = Qubo::random(32, &mut rng);
        let path = temp_path("stride");
        let mut cfg = small_cfg(StopCondition::timeout(Duration::from_millis(400)));
        cfg.checkpoint.out = Some(path.clone());
        cfg.checkpoint.interval = Some(Duration::from_millis(50));
        let session = AbsSession::start(cfg, &q).unwrap();
        let r = session.run_to_completion().unwrap();
        let (ckpt, _) = load_checkpoint(&path, None).unwrap();
        assert!(ckpt.generation >= 1, "at least one stride checkpoint");
        assert!(r.metrics.counter_total("abs_checkpoint_writes_total") >= 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
