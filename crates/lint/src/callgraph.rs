//! Workspace symbol table and conservative call graph.
//!
//! Resolution is heuristic — abs-lint has no type information — and
//! errs toward *more* edges inside the workspace and *no* edges into
//! code it cannot see:
//!
//! * `Type::helper(...)` resolves to workspace fns in an `impl Type`
//!   block (any file). An uppercase segment with no workspace impl is
//!   an external type (`u64::from_le_bytes`) — no edge.
//! * `self.helper(...)` resolves to methods of the caller's impl type,
//!   falling back to every workspace method of that name.
//! * `x.helper(...)` (receiver type unknown) resolves to **every**
//!   workspace method named `helper` — the deliberate
//!   over-approximation that makes zone propagation conservative.
//! * `helper(...)` resolves to free fns only, preferring the caller's
//!   module, then file, then crate.
//! * Macros never form edges (the reachability pass reads their names
//!   directly).
//!
//! A call edge can be severed by an audited `// zone: host-only --`
//! comment on (or just above) the call line, asserting the callee runs
//! only on host threads. That comment is an invariant claim like
//! `// SAFETY:` — it is how a genuinely-host-only helper that shares a
//! name with device-reachable code is kept out of the device closure,
//! and every one of them is grep-able.

use crate::lexer::Lexed;
use crate::parse::{Call, FnItem, ParsedFile, Recv};
use crate::zones::Zone;
use std::collections::HashMap;

/// Comment prefix that severs the outgoing call edges of a line.
pub const EDGE_CUT_KEY: &str = "zone: host-only";

/// A cut comment covers its own span plus the next line, exactly like
/// an `abs-lint: allow` marker — wide enough for the comment-above-call
/// idiom, narrow enough not to swallow the following statement.
const CUT_WINDOW: u32 = 1;

/// One source file prepared for graph building.
#[derive(Debug)]
pub struct GraphFile {
    /// Workspace-relative `/`-separated path.
    pub rel_path: String,
    /// Path-based zone of the file.
    pub zone: Zone,
    /// Lexer output (tokens + comments), kept for the body scans of the
    /// whole-program passes.
    pub lexed: Lexed,
    /// Parsed item skeleton.
    pub parsed: ParsedFile,
    /// Lines whose outgoing call edges are severed by an
    /// [`EDGE_CUT_KEY`] comment.
    pub cut_lines: Vec<u32>,
}

impl GraphFile {
    /// Builds a graph file from a lexed + parsed source.
    #[must_use]
    pub fn new(rel_path: String, zone: Zone, lexed: Lexed, parsed: ParsedFile) -> Self {
        // A cut comment covers its own line span plus the next
        // CUT_WINDOW lines, mirroring `comment_near`.
        let mut cut_lines = Vec::new();
        for c in &lexed.comments {
            if c.text.contains(EDGE_CUT_KEY) {
                for l in c.line..=c.end_line + CUT_WINDOW {
                    cut_lines.push(l);
                }
            }
        }
        Self {
            rel_path,
            zone,
            lexed,
            parsed,
            cut_lines,
        }
    }
}

/// One call-graph node: a non-test fn item in one file.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Index into [`Graph::files`].
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub fn_idx: usize,
}

/// One resolved call edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee node index.
    pub callee: usize,
    /// Call-site line in the caller's file.
    pub line: u32,
}

/// Predecessor bookkeeping from a reachability walk: how a node was
/// first reached.
#[derive(Clone, Copy, Debug)]
pub struct Provenance {
    /// Predecessor node (`None` for entry points).
    pub pred: Option<usize>,
    /// Call-site line in the predecessor's file (0 for entry points).
    pub line: u32,
}

/// The whole-workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All prepared files.
    pub files: Vec<GraphFile>,
    /// All non-test fn nodes.
    pub nodes: Vec<Node>,
    /// Name → node indices.
    pub by_name: HashMap<String, Vec<usize>>,
    /// Outgoing edges per node (parallel to `nodes`).
    pub edges: Vec<Vec<Edge>>,
}

fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

/// Whether a lowercase path segment is this crate's import name. The
/// workspace convention maps `crates/<dir>` to a lib imported as
/// `<dir>`, `abs_<dir>`, or `qubo_<dir>` (hyphens become underscores);
/// `crates/core` is imported as plain `abs`.
fn crate_import_matches(seg: &str, krate: &str) -> bool {
    seg == krate
        || seg.strip_suffix(krate).is_some_and(|p| p.ends_with('_'))
        || (seg == "abs" && krate == "core")
}

fn file_stem(rel_path: &str) -> &str {
    rel_path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("")
}

impl Graph {
    /// Builds the graph over `files`.
    #[must_use]
    pub fn build(files: Vec<GraphFile>) -> Self {
        let mut g = Graph {
            files,
            ..Graph::default()
        };
        for (fi, f) in g.files.iter().enumerate() {
            for (ii, item) in f.parsed.fns.iter().enumerate() {
                if item.is_test {
                    continue;
                }
                let ni = g.nodes.len();
                g.nodes.push(Node {
                    file: fi,
                    fn_idx: ii,
                });
                g.by_name.entry(item.name.clone()).or_default().push(ni);
            }
        }
        g.edges = vec![Vec::new(); g.nodes.len()];
        for ni in 0..g.nodes.len() {
            let node = g.nodes[ni];
            let file = &g.files[node.file];
            let item = &file.parsed.fns[node.fn_idx];
            let mut out: Vec<Edge> = Vec::new();
            for call in &item.calls {
                if file.cut_lines.contains(&call.line) {
                    continue;
                }
                for callee in resolve_call(&g, call, ni) {
                    if callee != ni && !out.iter().any(|e| e.callee == callee) {
                        out.push(Edge {
                            callee,
                            line: call.line,
                        });
                    }
                }
            }
            g.edges[ni] = out;
        }
        g
    }

    /// The fn item of a node.
    #[must_use]
    pub fn item(&self, ni: usize) -> &FnItem {
        let n = self.nodes[ni];
        &self.files[n.file].parsed.fns[n.fn_idx]
    }

    /// The file path of a node.
    #[must_use]
    pub fn path(&self, ni: usize) -> &str {
        &self.files[self.nodes[ni].file].rel_path
    }

    /// Display name of a node (`Type::fn` or `fn`).
    #[must_use]
    pub fn display(&self, ni: usize) -> String {
        let item = self.item(ni);
        match &item.impl_ty {
            Some(t) => format!("{t}::{}", item.name),
            None => item.name.clone(),
        }
    }

    /// Breadth-first reachability from `entries`, returning provenance
    /// for every reached node (including the entries themselves).
    #[must_use]
    pub fn reachable(&self, entries: &[usize]) -> HashMap<usize, Provenance> {
        let mut seen: HashMap<usize, Provenance> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in entries {
            if seen
                .insert(
                    e,
                    Provenance {
                        pred: None,
                        line: 0,
                    },
                )
                .is_none()
            {
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for e in &self.edges[n] {
                if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(e.callee) {
                    slot.insert(Provenance {
                        pred: Some(n),
                        line: e.line,
                    });
                    queue.push_back(e.callee);
                }
            }
        }
        seen
    }

    /// Renders the call chain that reached `node` as
    /// `entry (file:line) → ... → node`, following provenance.
    #[must_use]
    pub fn chain(&self, reach: &HashMap<usize, Provenance>, node: usize) -> String {
        let mut hops: Vec<String> = Vec::new();
        let mut cur = node;
        let mut guard = 0usize;
        while let Some(p) = reach.get(&cur) {
            match p.pred {
                Some(pred) => {
                    hops.push(format!(
                        "{} ({}:{})",
                        self.display(cur),
                        self.path(pred),
                        p.line
                    ));
                    cur = pred;
                }
                None => {
                    hops.push(self.display(cur));
                    break;
                }
            }
            guard += 1;
            if guard > self.nodes.len() + 1 {
                break; // defensive: provenance is acyclic by construction
            }
        }
        hops.reverse();
        hops.join(" -> ")
    }
}

/// One preference tier of free-fn resolution (module, file, crate).
type Tier<'a> = Box<dyn Fn(&usize) -> bool + 'a>;

/// Resolves one call site to candidate callee nodes.
fn resolve_call(g: &Graph, call: &Call, caller: usize) -> Vec<usize> {
    let Some(cands) = g.by_name.get(&call.name) else {
        return Vec::new();
    };
    let caller_node = g.nodes[caller];
    let caller_item = g.item(caller);
    let caller_path = &g.files[caller_node.file].rel_path;
    let methods = |c: &usize| g.item(*c).impl_ty.is_some();
    match &call.recv {
        Recv::Macro => Vec::new(),
        Recv::Path(seg) if seg == "Self" => {
            let own: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| g.item(c).impl_ty == caller_item.impl_ty)
                .collect();
            if own.is_empty() {
                cands.iter().copied().filter(methods).collect()
            } else {
                own
            }
        }
        Recv::Path(seg) if seg.starts_with(char::is_uppercase) => {
            // Workspace type: its impls; external type: no edge.
            cands
                .iter()
                .copied()
                .filter(|&c| g.item(c).impl_ty.as_deref() == Some(seg.as_str()))
                .collect()
        }
        Recv::Path(seg) => {
            // Module path segment: same-module / same-stem free fns,
            // `crate`/`self`/`super` scoped to the caller's crate.
            let scoped: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    let item = g.item(c);
                    let path = g.path(c);
                    if item.impl_ty.is_some() {
                        return false;
                    }
                    match seg.as_str() {
                        "crate" | "super" | "self" => crate_of(path) == crate_of(caller_path),
                        s => {
                            item.module.last().is_some_and(|m| m == s)
                                || file_stem(path) == s
                                || crate_import_matches(s, crate_of(path))
                        }
                    }
                })
                .collect();
            scoped
        }
        Recv::SelfRecv => {
            let own: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    g.item(c).impl_ty.is_some() && g.item(c).impl_ty == caller_item.impl_ty
                })
                .collect();
            if own.is_empty() {
                cands.iter().copied().filter(methods).collect()
            } else {
                own
            }
        }
        Recv::Var => cands.iter().copied().filter(methods).collect(),
        Recv::Free => {
            let free: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| g.item(c).impl_ty.is_none())
                .collect();
            let tiers: [Tier<'_>; 3] = [
                Box::new(|&c: &usize| {
                    g.path(c) == caller_path && g.item(c).module == caller_item.module
                }),
                Box::new(|&c: &usize| g.path(c) == caller_path),
                Box::new(|&c: &usize| crate_of(g.path(c)) == crate_of(caller_path)),
            ];
            for tier in &tiers {
                let t: Vec<usize> = free.iter().copied().filter(|c| tier(c)).collect();
                if !t.is_empty() {
                    return t;
                }
            }
            free
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;
    use crate::zones::classify;

    fn build(files: &[(&str, &str)]) -> Graph {
        let gfs = files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let parsed = parse(&lexed);
                GraphFile::new(path.to_string(), classify(path), lexed, parsed)
            })
            .collect();
        Graph::build(gfs)
    }

    fn node(g: &Graph, name: &str) -> usize {
        g.by_name[name][0]
    }

    #[test]
    fn cross_file_edges_resolve_by_name_and_receiver() {
        let g = build(&[
            (
                "crates/search/src/tracker.rs",
                "impl Tracker { fn flip(&mut self) { self.step(); helper(); } \
                 fn step(&mut self) {} }\nfn helper() { qubo::Matrix::get(); }",
            ),
            (
                "crates/qubo/src/matrix.rs",
                "impl Matrix { fn get() {} }\nfn unrelated() {}",
            ),
        ]);
        let flip = node(&g, "flip");
        let callees: Vec<String> = g.edges[flip].iter().map(|e| g.display(e.callee)).collect();
        assert!(
            callees.contains(&"Tracker::step".to_string()),
            "{callees:?}"
        );
        assert!(callees.contains(&"helper".to_string()));
        // helper -> Matrix::get across crates via the Type:: path.
        let helper = node(&g, "helper");
        let callees: Vec<String> = g.edges[helper]
            .iter()
            .map(|e| g.display(e.callee))
            .collect();
        assert_eq!(callees, ["Matrix::get"]);
        // unrelated is not reachable from flip.
        let reach = g.reachable(&[flip]);
        assert!(!reach.contains_key(&node(&g, "unrelated")));
        assert!(reach.contains_key(&node(&g, "get")));
    }

    #[test]
    fn unknown_receiver_fans_out_to_all_methods_only() {
        let g = build(&[
            (
                "crates/search/src/local.rs",
                "fn drive(x: &mut T) { x.update(0); }",
            ),
            (
                "crates/qubo/src/storage.rs",
                "impl Csr { fn update(&mut self, v: i64) {} }\n\
                 impl Dense { fn update(&mut self, v: i64) {} }\n\
                 fn update() {}",
            ),
        ]);
        let drive = node(&g, "drive");
        let callees: Vec<String> = g.edges[drive].iter().map(|e| g.display(e.callee)).collect();
        assert_eq!(callees.len(), 2, "{callees:?}");
        assert!(callees.contains(&"Csr::update".to_string()));
        assert!(callees.contains(&"Dense::update".to_string()));
    }

    #[test]
    fn external_types_produce_no_edges() {
        let g = build(&[(
            "crates/search/src/local.rs",
            "fn f() { let x = u64::from_le_bytes(b); Vec::with_capacity(4); }\n\
             fn with_capacity() {}",
        )]);
        // Vec:: is not a workspace impl type: no edge to the free fn.
        assert!(g.edges[node(&g, "f")].is_empty());
    }

    #[test]
    fn edge_cut_comment_severs_the_call() {
        let g = build(&[(
            "crates/search/src/local.rs",
            "fn f() {\n  // zone: host-only -- poll loop callback, never on device threads\n  helper();\n  other();\n}\nfn helper() {}\nfn other() {}",
        )]);
        let f = node(&g, "f");
        let callees: Vec<String> = g.edges[f].iter().map(|e| g.display(e.callee)).collect();
        assert!(!callees.contains(&"helper".to_string()), "{callees:?}");
        assert!(callees.contains(&"other".to_string()));
    }

    #[test]
    fn chains_render_entry_to_leaf() {
        let g = build(&[(
            "crates/search/src/tracker.rs",
            "fn flip() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}",
        )]);
        let reach = g.reachable(&[node(&g, "flip")]);
        let chain = g.chain(&reach, node(&g, "leaf"));
        assert_eq!(
            chain,
            "flip -> mid (crates/search/src/tracker.rs:1) -> leaf (crates/search/src/tracker.rs:2)"
        );
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let g = build(&[(
            "crates/search/src/tracker.rs",
            "#[cfg(test)]\nmod tests { fn t() {} }\nfn live() {}",
        )]);
        assert!(!g.by_name.contains_key("t"));
        assert!(g.by_name.contains_key("live"));
    }
}
