//! Zone classification: which invariant set applies to which module.
//!
//! The paper's architecture splits responsibilities sharply (Fig. 5):
//! the device kernel is deterministic and integer-only, the host GA
//! breeds targets but never evaluates energies, and the two sides meet
//! only in global memory. The zones encode that split by path, so the
//! rules stay deny-by-default and the mapping is auditable in one place.

use crate::callgraph::Graph;
use crate::lexer::TokKind;
use crate::rules::Finding;

/// The invariant zone of one source file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Zone {
    /// The device kernel: `qubo_search` (tracker / local / straight /
    /// policy / acc), `vgpu::block`, and `qubo::energy`. Deterministic,
    /// integer-only, allocation-free on the per-flip path.
    Device,
    /// The host GA (`crates/ga`): breeds targets, never computes energy.
    HostGa,
    /// The host orchestration side (`crates/core`, `crates/cli`):
    /// panic-free error paths required.
    Host,
    /// Everything else in `crates/*/src`: global rules only.
    Neutral,
    /// The benchmark harness (`crates/bench`): an experiment driver
    /// whose error handling *is* the panic, exempt from `no-unwrap`.
    Harness,
    /// The telemetry crate (`crates/telemetry`): host-owned, but its
    /// record/observe entry points run on device threads inside the
    /// search loop, so those bodies must be allocation-free.
    Telemetry,
    /// The serving layer (`crates/server`): long-running host process
    /// whose HTTP handlers must never panic — one unwinding handler
    /// thread poisons shared state for every later request
    /// (`server-no-unwrap-in-handler`).
    Server,
}

impl Zone {
    /// Stable lowercase label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Zone::Device => "device",
            Zone::HostGa => "host-ga",
            Zone::Host => "host",
            Zone::Neutral => "neutral",
            Zone::Harness => "harness",
            Zone::Telemetry => "telemetry",
            Zone::Server => "server",
        }
    }
}

/// Classifies a workspace-relative path (`/`-separated).
#[must_use]
pub fn classify(rel_path: &str) -> Zone {
    let p = rel_path.replace('\\', "/");
    // `naive.rs` holds the *instrumented reference implementations* of
    // Algorithms 1–3 — host-side experiment oracles for the paper's
    // search-efficiency analysis. They are never reachable from the
    // device execution path (`vgpu::block` drives only the tracker), so
    // they may use rand and floats like any other harness code.
    if p == "crates/search/src/naive.rs" {
        return Zone::Neutral;
    }
    // The CSR storage backend sits on the per-flip device path (`row`
    // and `diag` are called once per Eq. (16) update), so it obeys the
    // same integer-only, deterministic discipline as the trackers.
    if p.starts_with("crates/search/src/")
        || p == "crates/qubo/src/energy.rs"
        || p == "crates/qubo/src/sparse.rs"
        || p == "crates/vgpu/src/block.rs"
    {
        Zone::Device
    } else if p.starts_with("crates/ga/src/") {
        Zone::HostGa
    } else if p.starts_with("crates/core/src/") || p.starts_with("crates/cli/src/") {
        Zone::Host
    } else if p.starts_with("crates/bench/src/") {
        Zone::Harness
    } else if p.starts_with("crates/telemetry/src/") {
        Zone::Telemetry
    } else if p.starts_with("crates/server/src/") {
        Zone::Server
    } else {
        Zone::Neutral
    }
}

/// Files whose panicking `[]` indexing must carry a bounds-invariant
/// comment: the Δ-maintenance kernel and its driver, where an
/// out-of-bounds panic would kill a whole search block mid-iteration.
#[must_use]
pub fn indexing_audited(rel_path: &str) -> bool {
    let p = rel_path.replace('\\', "/");
    p == "crates/search/src/tracker.rs"
        || p == "crates/search/src/local.rs"
        || p == "crates/search/src/sparse.rs"
        || p == "crates/qubo/src/sparse.rs"
}

/// Function names forming the per-flip hot path: one call per flip (or
/// per selection), where a heap allocation would turn the O(n) kernel
/// into an allocator benchmark. Matched by name within device files.
pub const HOT_FNS: &[&str] = &[
    "flip",
    "flip_fused",
    "flip_select",
    "select_in_window",
    "window_argmin",
    "slice_min_first",
    "local_search",
    "straight_search",
    "add_coupling",
    "select",
    "next_window",
    "flip_update",
    "scalar_update",
    // CSR arm: per-write summary folds, bucket rescans, the window fold
    // and the row accessors — all inside the O(deg) flip or the
    // O(window/BUCKET) selection.
    "note_update",
    "gmin_update",
    "refresh_bucket",
    "range_min_first",
    "pack",
    "row",
    "row_parts",
    "diag",
    "degree",
];

/// Telemetry entry points called from device threads inside the search
/// loop: one call per event / counter bump. These bodies must stay
/// allocation-free so observability never taxes the search rate
/// (`device-telemetry-alloc-free`). Constructors (`with_capacity`,
/// `new`) allocate up front by design and are deliberately absent.
pub const TELEMETRY_HOT_FNS: &[&str] = &["record", "record_event", "observe", "inc", "add"];

/// Files outside the telemetry zone whose telemetry entry points are
/// still device-facing: the global-memory facade devices record through.
#[must_use]
pub fn telemetry_audited(rel_path: &str) -> bool {
    rel_path.replace('\\', "/") == "crates/vgpu/src/buffers.rs"
}

/// Files allowed to call the checkpoint publish/load entry points
/// (`write_checkpoint` / `load_checkpoint`): the codec that owns the
/// atomic-publish protocol and the session that owns the lifecycle.
/// Devices, the GA, and telemetry must never touch checkpoint files —
/// durability is a host-session concern (DESIGN.md §11).
#[must_use]
pub fn checkpoint_io_allowed(rel_path: &str) -> bool {
    let p = rel_path.replace('\\', "/");
    p == "crates/core/src/checkpoint.rs" || p == "crates/core/src/session.rs"
}

/// Files allowed to call the pool lease entry points (`acquire_lease` /
/// `release_lease`): the pool that owns the ledger and the server
/// runner that owns the job lifecycle. Sessions, devices, and routes
/// must never lease directly — capacity is a scheduler concern
/// (DESIGN.md §13).
#[must_use]
pub fn lease_api_allowed(rel_path: &str) -> bool {
    let p = rel_path.replace('\\', "/");
    p == "crates/vgpu/src/pool.rs" || p == "crates/server/src/runner.rs"
}

/// The checkpoint codec file: every `from_le_bytes` deserialization in
/// it must sit under an already-verified CRC, asserted by a
/// neighbouring `// crc:` comment (`checkpoint-io-zone`).
#[must_use]
pub fn checkpoint_codec(rel_path: &str) -> bool {
    rel_path.replace('\\', "/") == "crates/core/src/checkpoint.rs"
}

/// One zone inference: a function outside the device files that the
/// call graph proves reachable from the device zone, with the chain
/// that reached it.
#[derive(Clone, Debug)]
pub struct ZoneInference {
    /// File the inferred-device function lives in.
    pub file: String,
    /// Line of its `fn` keyword.
    pub line: u32,
    /// Display name (`Type::fn` or `fn`).
    pub name: String,
    /// Call chain from a device-zone entry point.
    pub chain: String,
}

/// Transitive zone propagation: every function reachable from a
/// device-zone file inherits the device purity rules (no rand, no
/// clock, no float) regardless of which file it lives in. Returns the
/// purity findings plus the full inference table for the
/// `--zones` report.
#[must_use]
pub fn propagate(graph: &Graph) -> (Vec<Finding>, Vec<ZoneInference>) {
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&n| graph.files[graph.nodes[n].file].zone == Zone::Device)
        .collect();
    let reach = graph.reachable(&entries);
    let mut reached: Vec<usize> = reach.keys().copied().collect();
    reached.sort_unstable();

    let mut findings = Vec::new();
    let mut inferred = Vec::new();
    for n in reached {
        let file = &graph.files[graph.nodes[n].file];
        if file.zone == Zone::Device {
            continue; // per-file rules already cover device files
        }
        let item = graph.item(n);
        let chain = graph.chain(&reach, n);
        inferred.push(ZoneInference {
            file: file.rel_path.clone(),
            line: item.line,
            name: graph.display(n),
            chain: chain.clone(),
        });
        let Some((b0, b1)) = item.body else { continue };
        let toks = &file.lexed.toks;
        for k in b0..=b1 {
            let t = &toks[k];
            let next = toks.get(k + 1);
            let hit = if t.is_ident("rand") && next.is_some_and(|n| n.is_punct(':')) {
                Some("rand crate")
            } else if t.is_ident("Instant") || t.is_ident("SystemTime") {
                Some("wall clock")
            } else if t.is_ident("f32") || t.is_ident("f64") || t.kind == TokKind::Float {
                Some("floating point")
            } else {
                None
            };
            if let Some(what) = hit {
                findings.push(Finding {
                    file: file.rel_path.clone(),
                    line: t.line,
                    rule: "zone-propagation",
                    zone: file.zone.label(),
                    message: format!(
                        "{} (`{}`) in `{}`, which is device-inferred via {}",
                        what,
                        t.text,
                        graph.display(n),
                        chain
                    ),
                    allowed: false,
                });
            }
        }
    }
    (findings, inferred)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_map_matches_the_paper_split() {
        assert_eq!(classify("crates/search/src/tracker.rs"), Zone::Device);
        assert_eq!(classify("crates/search/src/policy.rs"), Zone::Device);
        assert_eq!(classify("crates/search/src/naive.rs"), Zone::Neutral);
        assert_eq!(classify("crates/vgpu/src/block.rs"), Zone::Device);
        assert_eq!(classify("crates/qubo/src/energy.rs"), Zone::Device);
        assert_eq!(classify("crates/qubo/src/matrix.rs"), Zone::Neutral);
        assert_eq!(classify("crates/vgpu/src/buffers.rs"), Zone::Neutral);
        assert_eq!(classify("crates/ga/src/pool.rs"), Zone::HostGa);
        assert_eq!(classify("crates/core/src/solver.rs"), Zone::Host);
        assert_eq!(classify("crates/cli/src/main.rs"), Zone::Host);
        assert_eq!(classify("crates/bench/src/lib.rs"), Zone::Harness);
        assert_eq!(classify("crates/telemetry/src/ring.rs"), Zone::Telemetry);
        assert_eq!(classify("crates/telemetry/src/metrics.rs"), Zone::Telemetry);
        assert_eq!(classify("crates/server/src/routes.rs"), Zone::Server);
        assert_eq!(classify("crates/server/src/main.rs"), Zone::Server);
        assert_eq!(classify("crates/server/tests/acceptance.rs"), Zone::Neutral);
    }

    #[test]
    fn telemetry_audit_covers_the_device_facade() {
        assert!(telemetry_audited("crates/vgpu/src/buffers.rs"));
        assert!(!telemetry_audited("crates/vgpu/src/device.rs"));
        assert!(!telemetry_audited("crates/core/src/solver.rs"));
    }

    #[test]
    fn indexing_audit_covers_the_kernel_files() {
        assert!(indexing_audited("crates/search/src/tracker.rs"));
        assert!(indexing_audited("crates/search/src/local.rs"));
        assert!(indexing_audited("crates/search/src/sparse.rs"));
        assert!(indexing_audited("crates/qubo/src/sparse.rs"));
        assert!(!indexing_audited("crates/search/src/policy.rs"));
    }

    #[test]
    fn checkpoint_io_is_confined_to_the_session_zone() {
        assert!(checkpoint_io_allowed("crates/core/src/checkpoint.rs"));
        assert!(checkpoint_io_allowed("crates/core/src/session.rs"));
        assert!(!checkpoint_io_allowed("crates/core/src/solver.rs"));
        assert!(!checkpoint_io_allowed("crates/vgpu/src/device.rs"));
        assert!(!checkpoint_io_allowed("crates/ga/src/pool.rs"));
        assert!(checkpoint_codec("crates/core/src/checkpoint.rs"));
        assert!(!checkpoint_codec("crates/core/src/session.rs"));
    }

    #[test]
    fn lease_api_is_confined_to_pool_and_runner() {
        assert!(lease_api_allowed("crates/vgpu/src/pool.rs"));
        assert!(lease_api_allowed("crates/server/src/runner.rs"));
        assert!(!lease_api_allowed("crates/server/src/routes.rs"));
        assert!(!lease_api_allowed("crates/core/src/session.rs"));
        assert!(!lease_api_allowed("crates/vgpu/src/device.rs"));
    }

    #[test]
    fn csr_modules_join_the_device_zone() {
        assert_eq!(classify("crates/search/src/sparse.rs"), Zone::Device);
        assert_eq!(classify("crates/qubo/src/sparse.rs"), Zone::Device);
        assert_eq!(classify("crates/qubo/src/storage.rs"), Zone::Neutral);
        assert_eq!(classify("crates/qubo/src/format.rs"), Zone::Neutral);
        assert!(HOT_FNS.contains(&"note_update"));
        assert!(HOT_FNS.contains(&"range_min_first"));
        assert!(HOT_FNS.contains(&"row_parts"));
    }
}
