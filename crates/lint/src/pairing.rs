//! Verified atomic pairing: the Release/Acquire table.
//!
//! The per-file `ordering-pair-named` rule only checks that an
//! `// ordering:` comment *exists* next to a non-Relaxed atomic
//! operation. This pass parses those comments into a pairing table and
//! cross-checks it:
//!
//! * every non-Relaxed site's comment must contain a parseable
//!   `pairs with [the <Ordering>] <op...> in <fn>` clause;
//! * the named partner function must exist and contain a non-Relaxed
//!   site **on the same atomic field**;
//! * the partner's ordering must be complementary (a release-side
//!   store needs an acquire-capable partner and vice versa; RMW sites
//!   are both sides, and may pair with themselves — competing
//!   claimants);
//! * the partner's own comment must name this site's function back, so
//!   both halves of the protocol point at each other.
//!
//! The cross-checked table is emitted as a machine-readable JSON
//! artifact and as the generated DESIGN.md appendix (`--pairing-table
//! json|md`); the weekly CI job diffs the committed appendix against
//! the regenerated one, so the documentation cannot drift from the
//! code.

use crate::callgraph::GraphFile;
use crate::lexer::TokKind;
use crate::report::json_str;
use crate::rules::Finding;

/// Comment window, matching the per-file rules.
const COMMENT_WINDOW: u32 = 2;

/// Atomic method names whose calls form pairing sites.
const ATOMIC_OPS: &[&str] = &[
    "store",
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["AcqRel", "Acquire", "Release", "SeqCst"];

/// One non-Relaxed atomic operation site.
#[derive(Clone, Debug)]
pub struct AtomicSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the operation.
    pub line: u32,
    /// Enclosing function name.
    pub func: String,
    /// Atomic field (receiver) name.
    pub field: String,
    /// Operation (`store`, `load`, `fetch_add`, ...).
    pub op: String,
    /// Success ordering (`Acquire`, `Release`, `AcqRel`, `SeqCst`).
    pub ordering: String,
    /// Partner functions named by the `pairs with ... in <fn>` clause
    /// (one load may pair against stores in several functions).
    pub partners: Vec<String>,
    /// Partner ordering named by the clause, if stated.
    pub partner_ord: Option<String>,
}

impl AtomicSite {
    fn is_rmw(&self) -> bool {
        self.op != "store" && self.op != "load"
    }

    fn release_side(&self) -> bool {
        self.op != "load" && matches!(self.ordering.as_str(), "Release" | "AcqRel" | "SeqCst")
    }

    fn acquire_side(&self) -> bool {
        (self.op == "load" || self.is_rmw())
            && matches!(self.ordering.as_str(), "Acquire" | "AcqRel" | "SeqCst")
    }
}

/// The workspace pairing table.
#[derive(Debug, Default)]
pub struct PairingTable {
    /// All non-Relaxed sites in non-test code, sorted by (file, line).
    pub sites: Vec<AtomicSite>,
}

/// Parses the pairing clause out of one ordering comment. Returns
/// `(partner_ordering, partner_fns)` when a `pairs with ... in <fn>`
/// clause is present and names at least one function. Every `in <name>`
/// inside the clause contributes a partner, so one load can pair
/// against stores in several functions.
fn parse_pairing_clause(text: &str) -> Option<(Option<String>, Vec<String>)> {
    let rest = &text[text.find("pairs with")? + "pairs with".len()..];
    // Everything past the em-dash/sentence end is prose. Merged `//`
    // runs join with newlines — collapse whitespace so a clause may
    // wrap across comment lines.
    let clause = rest.split(['—', ';']).next().unwrap_or(rest);
    let clause: String = clause.split_whitespace().collect::<Vec<_>>().join(" ");
    let clause = clause.as_str();
    let ord = ORDERINGS
        .iter()
        .find(|o| clause.contains(*o))
        .map(|o| (*o).to_string());
    let mut partners = Vec::new();
    let mut search = clause;
    while let Some(pos) = search.find(" in ") {
        let after = &search[pos + 4..];
        // Merged `//` runs keep their sigils, so a name that starts a
        // wrapped line may be prefixed by `//` — strip sigils too.
        let name: String = after
            .trim_start_matches(['`', ' ', '/', '*', '!'])
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() && !partners.contains(&name) {
            partners.push(name);
        }
        search = after;
    }
    if partners.is_empty() {
        None
    } else {
        Some((ord, partners))
    }
}

/// Extracts every non-Relaxed atomic site (with its parsed pairing
/// clause) from the prepared files.
#[must_use]
pub fn build_table(files: &[GraphFile]) -> PairingTable {
    let mut sites = Vec::new();
    for f in files {
        let toks = &f.lexed.toks;
        // One site per call: compare_exchange carries two Ordering
        // arguments that resolve to the same open paren.
        let mut seen_calls: Vec<usize> = Vec::new();
        for k in 0..toks.len() {
            if !(toks[k].is_ident("Ordering")
                && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                && toks
                    .get(k + 3)
                    .is_some_and(|t| ORDERINGS.contains(&t.text.as_str())))
            {
                continue;
            }
            // Walk back to the unbalanced `(` of the enclosing call.
            let mut depth = 0i32;
            let mut j = k;
            let open = loop {
                if j == 0 {
                    break None;
                }
                j -= 1;
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    if depth == 0 {
                        break Some(j);
                    }
                    depth -= 1;
                }
            };
            let Some(open) = open else { continue };
            if seen_calls.contains(&open) {
                continue; // failure ordering of the same call
            }
            let Some(method) = open
                .checked_sub(1)
                .map(|m| &toks[m])
                .filter(|m| m.kind == TokKind::Ident && ATOMIC_OPS.contains(&m.text.as_str()))
            else {
                continue;
            };
            seen_calls.push(open);
            let field = open
                .checked_sub(2)
                .filter(|&d| toks[d].is_punct('.'))
                .and_then(|d| d.checked_sub(1))
                .map(|fi| &toks[fi])
                .filter(|t| t.kind == TokKind::Ident)
                .map_or_else(|| "<expr>".to_string(), |t| t.text.clone());
            let line = method.line;
            // Test code is outside the protocol.
            let func = match f.parsed.fn_at_line(line) {
                Some(item) if !item.is_test => item.name.clone(),
                _ => continue,
            };
            // The *closest* ordering comment governs: two sites a line
            // apart each bind to the comment directly above them.
            let clause = f
                .lexed
                .comments
                .iter()
                .filter(|c| {
                    c.end_line >= line.saturating_sub(COMMENT_WINDOW)
                        && c.line <= line
                        && c.text.contains("ordering:")
                })
                .max_by_key(|c| c.line)
                .and_then(|c| parse_pairing_clause(&c.text));
            let (partner_ord, partners) = match clause {
                Some((o, p)) => (o, p),
                None => (None, Vec::new()),
            };
            sites.push(AtomicSite {
                file: f.rel_path.clone(),
                line,
                func,
                field,
                op: method.text.clone(),
                ordering: toks[k + 3].text.clone(),
                partners,
                partner_ord,
            });
        }
    }
    sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    PairingTable { sites }
}

/// Cross-checks the table, returning `atomic-pairing` findings.
#[must_use]
pub fn check_table(table: &PairingTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |site: &AtomicSite, message: String| {
        findings.push(Finding {
            file: site.file.clone(),
            line: site.line,
            rule: "atomic-pairing",
            zone: "neutral",
            message,
            allowed: false,
        });
    };
    for s in &table.sites {
        if s.partners.is_empty() {
            push(
                s,
                format!(
                    "Ordering::{} {} on `{}` has no parseable pairing clause — write \
                     `// ordering: ... pairs with the <Ordering> <op> in <fn>`",
                    s.ordering, s.op, s.field
                ),
            );
            continue;
        }
        // Every named partner must exist as a non-Relaxed site on the
        // same atomic field.
        let mut dangling = false;
        for partner in &s.partners {
            if !table
                .sites
                .iter()
                .any(|t| &t.func == partner && t.field == s.field)
            {
                dangling = true;
                push(
                    s,
                    format!(
                        "pairing names `{partner}` but no non-Relaxed site on `{}` exists in a \
                         function of that name",
                        s.field
                    ),
                );
            }
        }
        if dangling {
            continue;
        }
        let candidates: Vec<&AtomicSite> = table
            .sites
            .iter()
            .filter(|t| s.partners.contains(&t.func) && t.field == s.field)
            .collect();
        // Complementarity: a pure store needs an acquire-capable
        // partner; a pure load needs a release-capable one; an RMW is
        // both sides and accepts either (including itself).
        let complementary = candidates.iter().any(|t| {
            if s.op == "store" {
                t.acquire_side()
            } else if s.op == "load" {
                t.release_side()
            } else {
                t.acquire_side() || t.release_side()
            }
        });
        let partners = s.partners.join("`/`");
        if !complementary {
            push(
                s,
                format!(
                    "partner `{partners}` has no complementary ordering on `{}` (this side is \
                     Ordering::{} {})",
                    s.field, s.ordering, s.op
                ),
            );
        }
        if let Some(po) = &s.partner_ord {
            if !candidates.iter().any(|t| &t.ordering == po) {
                push(
                    s,
                    format!(
                        "pairing claims the partner in `{partners}` uses Ordering::{po}, but its \
                         sites on `{}` use {}",
                        s.field,
                        candidates
                            .iter()
                            .map(|t| t.ordering.as_str())
                            .collect::<Vec<_>>()
                            .join("/")
                    ),
                );
            }
        }
        // Reciprocity: some partner site must name this function back (a
        // same-function RMW self-pair satisfies it by naming itself).
        let named_back = candidates
            .iter()
            .any(|t| t.partners.iter().any(|p| p == &s.func));
        if !named_back {
            push(
                s,
                format!(
                    "partner site in `{partners}` does not name `{}` back — both halves of the \
                     protocol must point at each other",
                    s.func
                ),
            );
        }
    }
    findings
}

/// Renders the table as the generated DESIGN.md appendix (markdown).
#[must_use]
pub fn to_markdown(table: &PairingTable) -> String {
    let mut s = String::from(
        "| Site | Function | Field | Op | Ordering | Pairs with |\n\
         |---|---|---|---|---|---|\n",
    );
    for site in &table.sites {
        s.push_str(&format!(
            "| `{}:{}` | `{}` | `{}` | `{}` | {} | {} |\n",
            site.file,
            site.line,
            site.func,
            site.field,
            site.op,
            site.ordering,
            match (&site.partners[..], &site.partner_ord) {
                ([], _) => "—".to_string(),
                (ps, Some(o)) => format!("{o} in `{}`", ps.join("`, `")),
                (ps, None) => format!("`{}`", ps.join("`, `")),
            }
        ));
    }
    s.push_str(&format!("\n{} non-Relaxed sites.\n", table.sites.len()));
    s
}

/// Renders the table as a machine-readable JSON artifact.
#[must_use]
pub fn to_json(table: &PairingTable) -> String {
    let mut s = String::from("{\"atomic_pairing\":[");
    for (i, site) in table.sites.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"fn\":{},\"field\":{},\"op\":{},\"ordering\":{},\
             \"partners\":[{}],\"partner_ordering\":{}}}",
            json_str(&site.file),
            site.line,
            json_str(&site.func),
            json_str(&site.field),
            json_str(&site.op),
            json_str(&site.ordering),
            site.partners
                .iter()
                .map(|p| json_str(p))
                .collect::<Vec<_>>()
                .join(","),
            site.partner_ord.as_deref().map_or("null".into(), json_str),
        ));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;
    use crate::zones::classify;

    fn table(files: &[(&str, &str)]) -> PairingTable {
        let gfs: Vec<GraphFile> = files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let parsed = parse(&lexed);
                GraphFile::new(path.to_string(), classify(path), lexed, parsed)
            })
            .collect();
        build_table(&gfs)
    }

    const PAIRED: &str = "\
impl Mem {
    fn publish(&self) {
        // ordering: Release pairs with the Acquire load in counter.
        self.count.fetch_add(1, Ordering::Release);
    }
    fn counter(&self) -> u64 {
        // ordering: Acquire pairs with the Release fetch_add in publish.
        self.count.load(Ordering::Acquire)
    }
}
";

    #[test]
    fn well_paired_sites_cross_check_clean() {
        let t = table(&[("crates/vgpu/src/buffers.rs", PAIRED)]);
        assert_eq!(t.sites.len(), 2);
        assert_eq!(t.sites[0].func, "publish");
        assert_eq!(t.sites[0].field, "count");
        assert_eq!(t.sites[0].op, "fetch_add");
        assert_eq!(t.sites[0].partners, ["counter"]);
        assert_eq!(t.sites[0].partner_ord.as_deref(), Some("Acquire"));
        assert!(check_table(&t).is_empty(), "{:?}", check_table(&t));
    }

    #[test]
    fn missing_clause_dangling_partner_and_no_backref_are_findings() {
        // No clause at all.
        let t = table(&[(
            "crates/vgpu/src/health.rs",
            "fn f(&self) {\n  // ordering: total order guard.\n  self.x.store(1, Ordering::Release);\n}\n",
        )]);
        let fs = check_table(&t);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("no parseable pairing clause"));

        // Clause names a fn with no matching site.
        let t = table(&[(
            "crates/vgpu/src/health.rs",
            "fn f(&self) {\n  // ordering: Release pairs with the Acquire load in ghost.\n  self.x.store(1, Ordering::Release);\n}\n",
        )]);
        let fs = check_table(&t);
        assert!(fs.iter().any(|f| f.message.contains("ghost")), "{fs:?}");

        // Partner exists but does not name this site back.
        let t = table(&[(
            "crates/vgpu/src/health.rs",
            "\
fn f(&self) {
    // ordering: Release pairs with the Acquire load in g.
    self.x.store(1, Ordering::Release);
}
fn g(&self) {
    // ordering: Acquire pairs with the Release store in other.
    self.x.load(Ordering::Acquire);
}
fn other(&self) {
    // ordering: Release pairs with the Acquire load in g.
    self.x.store(2, Ordering::Release);
}
",
        )]);
        let fs = check_table(&t);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("does not name `f` back"));
    }

    #[test]
    fn ordering_mismatch_is_a_finding() {
        // Both sides Relaxed-free but partner is a plain Release store
        // when this side needs an acquire-capable op... here partner
        // stores only, so a store→store pair must fail.
        let t = table(&[(
            "crates/vgpu/src/health.rs",
            "\
fn f(&self) {
    // ordering: Release pairs with the Release store in g.
    self.x.store(1, Ordering::Release);
}
fn g(&self) {
    // ordering: Release pairs with the Release store in f.
    self.x.store(2, Ordering::Release);
}
",
        )]);
        let fs = check_table(&t);
        assert!(
            fs.iter()
                .any(|f| f.message.contains("no complementary ordering")),
            "{fs:?}"
        );
    }

    #[test]
    fn one_load_may_pair_against_stores_in_two_fns() {
        let t = table(&[(
            "crates/vgpu/src/buffers.rs",
            "\
fn enter(&self) {
    // ordering: Release pairs with the Acquire load in quiesced.
    self.n.fetch_add(1, Ordering::Release);
}
fn exit(&self) {
    // ordering: Release pairs with the Acquire load in quiesced.
    self.n.fetch_sub(1, Ordering::Release);
}
fn quiesced(&self) -> bool {
    // ordering: Acquire pairs with the Release fetch_add in enter and
    // the Release fetch_sub in exit.
    self.n.load(Ordering::Acquire) == 0
}
",
        )]);
        assert_eq!(t.sites[2].partners, ["enter", "exit"]);
        assert!(check_table(&t).is_empty(), "{:?}", check_table(&t));
    }

    #[test]
    fn rmw_may_pair_with_itself() {
        let t = table(&[(
            "crates/vgpu/src/fault.rs",
            "fn take(&self) {\n  // ordering: AcqRel pairs with the competing AcqRel compare_exchange in take.\n  slot.fired.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire);\n}\n",
        )]);
        assert_eq!(t.sites.len(), 1, "failure ordering must not double-count");
        assert_eq!(t.sites[0].ordering, "AcqRel");
        assert!(check_table(&t).is_empty(), "{:?}", check_table(&t));
    }

    #[test]
    fn test_code_and_relaxed_sites_are_outside_the_table() {
        let t = table(&[(
            "crates/vgpu/src/buffers.rs",
            "\
fn live(&self) { self.n.fetch_add(1, Ordering::Relaxed); }
#[cfg(test)]
mod tests {
    fn t() { x.store(1, Ordering::Release); }
}
",
        )]);
        assert!(t.sites.is_empty(), "{:?}", t.sites);
    }

    #[test]
    fn renders_markdown_and_json() {
        let t = table(&[("crates/vgpu/src/buffers.rs", PAIRED)]);
        let md = to_markdown(&t);
        assert!(md.contains("| `crates/vgpu/src/buffers.rs:4` | `publish` | `count` |"));
        assert!(md.contains("2 non-Relaxed sites."));
        let js = to_json(&t);
        assert!(js.contains("\"fn\":\"publish\""));
        assert!(js.contains("\"partners\":[\"counter\"]"));
        assert!(js.contains("\"partner_ordering\":\"Acquire\""));
    }
}
