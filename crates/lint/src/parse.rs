//! Item-level parsing on top of the lexer: fn items, impl blocks,
//! nested modules, and call sites.
//!
//! The per-file rules see tokens; the whole-program passes (zone
//! propagation, atomic pairing, panic reachability) need *structure*:
//! which function a token belongs to, which type an `impl` block
//! extends, whether an item is `#[cfg(test)]`-gated, and which calls a
//! function body makes. This module recovers exactly that much shape —
//! it is not a Rust parser, just a conservative item skeleton:
//!
//! * unknown constructs degrade to "skip a token", never to a wrong
//!   span;
//! * call sites are recorded by name plus a receiver hint
//!   (`self.`, `Type::`, `var.`, free, macro) — resolution happens in
//!   [`crate::callgraph`];
//! * nested `fn` items get their own entry and their tokens are
//!   excluded from the enclosing body's call scan.

use crate::lexer::{Lexed, Tok, TokKind};

/// Receiver hint for one call site, used by the name-resolution
/// heuristic in the call graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recv {
    /// Free function call: `helper(...)`.
    Free,
    /// Method call on `self`: `self.helper(...)` (directly, not through
    /// a field chain).
    SelfRecv,
    /// Method call on some other expression: `x.helper(...)`,
    /// `f().helper(...)` — receiver type unknown.
    Var,
    /// Path call: `Seg::helper(...)`, carrying the segment directly
    /// before the called name (`Seg`). `Self::x` carries `Self`.
    Path(String),
    /// Macro invocation: `helper!(...)` — never a call-graph edge, but
    /// the panic-reachability pass inspects the name.
    Macro,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Called name (function, method, or macro name).
    pub name: String,
    /// Receiver hint.
    pub recv: Recv,
    /// 1-based source line of the call.
    pub line: u32,
}

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_ty: Option<String>,
    /// Nested module path within the file (empty at file level).
    pub module: Vec<String>,
    /// `true` if the item (or an enclosing module) is test-gated.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace (== `line` for
    /// body-less trait method declarations).
    pub end_line: u32,
    /// Token-index range of the body including braces, if a body exists.
    pub body: Option<(usize, usize)>,
    /// Call sites in the body (nested fn items excluded).
    pub calls: Vec<Call>,
    /// Lines of panicking `[]` index expressions in the body.
    pub index_lines: Vec<u32>,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item in the file, in source order.
    pub fns: Vec<FnItem>,
}

impl ParsedFile {
    /// The innermost function item containing `line`, if any.
    #[must_use]
    pub fn fn_at_line(&self, line: u32) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.line)
    }
}

/// Does an attribute token slice (the tokens strictly between the outer
/// `[` and `]`) gate its item to test builds?
///
/// Gating forms: `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`,
/// and `#[cfg_attr(pred, ..., test, ...)]` (conditionally-applied
/// `#[test]`). **Not** gating: `#[cfg(not(test))]`,
/// `#[cfg_attr(not(test), ...)]` (the predicate mentions `test` but the
/// item exists in non-test builds), and any attribute that merely
/// contains the word `test` deeper inside (`#[cfg(any(test, ...))]` is
/// deliberately not exempt: the item is compiled in non-test builds
/// too).
#[must_use]
pub fn attr_is_test_gated(inner: &[Tok]) -> bool {
    let Some(first) = inner.first() else {
        return false;
    };
    if first.is_ident("test") {
        return true; // #[test] (incl. e.g. #[test] with no args)
    }
    if first.is_ident("cfg") {
        // cfg(test) or cfg(all(test, ...)): `test` as a bare predicate
        // at depth 1, or at depth 2 directly under `all(`.
        let mut depth = 0i32;
        let mut combinator: Vec<String> = Vec::new();
        for (k, t) in inner.iter().enumerate() {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                combinator.pop();
            } else if t.kind == TokKind::Ident && inner.get(k + 1).is_some_and(|n| n.is_punct('('))
            {
                combinator.push(t.text.clone());
            } else if t.is_ident("test") {
                // Bare `test` predicate: gating at depth 1 (cfg(test))
                // or under a chain of `all(...)` combinators only.
                let under_all_only = combinator.iter().skip(1).all(|c| c == "all");
                if depth >= 1 && under_all_only {
                    return true;
                }
            }
        }
        return false;
    }
    if first.is_ident("cfg_attr") {
        // cfg_attr(pred, applied...): gating iff the applied attribute
        // list contains a standalone `test` at the list's top level.
        let mut depth = 0i32;
        let mut seen_comma_at_top = false;
        for (k, t) in inner.iter().enumerate() {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
            } else if t.is_punct(',') && depth == 1 {
                seen_comma_at_top = true;
            } else if seen_comma_at_top && depth == 1 && t.is_ident("test") {
                // Standalone applied attr, not a path segment / argument.
                let next_ok = inner
                    .get(k + 1)
                    .is_none_or(|n| n.is_punct(',') || n.is_punct(')'));
                let prev_ok = k
                    .checked_sub(1)
                    .and_then(|j| inner.get(j))
                    .is_some_and(|p| p.is_punct(','));
                if prev_ok && next_ok {
                    return true;
                }
            }
        }
        return false;
    }
    false
}

/// Keywords that look like `ident (` but are not calls.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "let"
            | "mut"
            | "ref"
            | "else"
            | "unsafe"
            | "where"
            | "await"
            | "break"
            | "continue"
            | "fn"
            | "impl"
            | "dyn"
            | "pub"
            | "crate"
    )
}

struct Parser<'a> {
    toks: &'a [Tok],
    fns: Vec<FnItem>,
}

/// Finds the token index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Finds the token index of the `]` matching the `[` at `open`.
fn match_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('[') {
            depth += 1;
        } else if toks[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

impl<'a> Parser<'a> {
    /// Parses items in `[i, end)`; returns the index after the range.
    fn items(
        &mut self,
        mut i: usize,
        end: usize,
        module: &[String],
        impl_ty: Option<&str>,
        in_test: bool,
    ) -> usize {
        let toks = self.toks;
        let mut pending_test = false;
        while i < end {
            let t = &toks[i];
            // Attribute: classify test gating, then skip.
            if t.is_punct('#') {
                let mut j = i + 1;
                if j < end && toks[j].is_punct('!') {
                    j += 1;
                }
                if j < end && toks[j].is_punct('[') {
                    let close = match_bracket(toks, j).min(end - 1);
                    pending_test |= attr_is_test_gated(&toks[j + 1..close]);
                    i = close + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "mod" => {
                    let name = toks
                        .get(i + 1)
                        .filter(|n| n.kind == TokKind::Ident)
                        .map(|n| n.text.clone());
                    // `mod name {` inline module; `mod name;` out-of-line.
                    if let (Some(name), Some(open)) = (
                        name,
                        toks.get(i + 2).filter(|o| o.is_punct('{')).map(|_| i + 2),
                    ) {
                        let close = match_brace(toks, open).min(end - 1);
                        let mut path = module.to_vec();
                        path.push(name);
                        self.items(open + 1, close, &path, None, in_test || pending_test);
                        i = close + 1;
                    } else {
                        i += 2; // skip `mod name;`
                    }
                    pending_test = false;
                }
                "impl" | "trait" => {
                    // Scan the header to `{` (or `;` for `trait Alias =`),
                    // collecting path idents at angle-depth 0. The last
                    // collected ident before `{` is the type name; a `for`
                    // resets collection so `impl Trait for Type` yields
                    // `Type`.
                    let is_trait = t.text == "trait";
                    let mut j = i + 1;
                    let mut angle = 0i32;
                    let mut last_ident: Option<String> = None;
                    while j < end {
                        let h = &toks[j];
                        if h.is_punct('<') {
                            angle += 1;
                        } else if h.is_punct('>') {
                            // `->` in a generic bound (`Fn() -> T`) does
                            // not close an angle bracket.
                            let arrow = j.checked_sub(1).is_some_and(|k| toks[k].is_punct('-'));
                            if !arrow {
                                angle -= 1;
                            }
                        } else if angle == 0 {
                            if h.is_punct('{') || h.is_punct(';') {
                                break;
                            }
                            if h.is_ident("for") {
                                last_ident = None;
                            } else if h.kind == TokKind::Ident && !h.is_ident("where") {
                                last_ident = Some(h.text.clone());
                            }
                        }
                        j += 1;
                    }
                    if j < end && toks[j].is_punct('{') {
                        let close = match_brace(toks, j).min(end - 1);
                        let ty = if is_trait {
                            // Trait name is the *first* ident after `trait`.
                            toks.get(i + 1)
                                .filter(|n| n.kind == TokKind::Ident)
                                .map(|n| n.text.clone())
                        } else {
                            last_ident
                        };
                        self.items(j + 1, close, module, ty.as_deref(), in_test || pending_test);
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                    pending_test = false;
                }
                "fn" => {
                    i = self.fn_item(i, end, module, impl_ty, in_test || pending_test);
                    pending_test = false;
                }
                "macro_rules" => {
                    // `macro_rules! name { ... }` — skip the whole body.
                    let mut j = i + 1;
                    while j < end && !toks[j].is_punct('{') {
                        j += 1;
                    }
                    i = if j < end {
                        match_brace(toks, j).min(end - 1) + 1
                    } else {
                        end
                    };
                    pending_test = false;
                }
                "struct" | "enum" | "union" => {
                    // Body is `{...}` / `(...);` / `;` after the header.
                    let mut j = i + 1;
                    while j < end && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        j += 1;
                    }
                    i = if j < end && toks[j].is_punct('{') {
                        match_brace(toks, j).min(end - 1) + 1
                    } else {
                        j + 1
                    };
                    pending_test = false;
                }
                "use" | "const" | "static" | "type" => {
                    // Skip to `;` at brace depth 0 (initializers may
                    // contain blocks).
                    let mut depth = 0i32;
                    let mut j = i + 1;
                    while j < end {
                        if toks[j].is_punct('{') {
                            depth += 1;
                        } else if toks[j].is_punct('}') {
                            depth -= 1;
                        } else if toks[j].is_punct(';') && depth == 0 {
                            break;
                        }
                        j += 1;
                    }
                    i = j + 1;
                    pending_test = false;
                }
                _ => {
                    i += 1;
                }
            }
        }
        end
    }

    /// Parses one `fn` item whose `fn` keyword is at `i`; returns the
    /// index after the item.
    fn fn_item(
        &mut self,
        i: usize,
        end: usize,
        module: &[String],
        impl_ty: Option<&str>,
        is_test: bool,
    ) -> usize {
        let toks = self.toks;
        let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            return i + 1;
        };
        // Signature: scan to the body `{` at paren/bracket depth 0, or a
        // `;` (trait method declaration). `->` guards `>` as above; the
        // signature cannot contain a bare `{` outside the body.
        let mut j = i + 2;
        let mut pdepth = 0i32;
        while j < end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                pdepth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                pdepth -= 1;
            } else if (t.is_punct('{') || t.is_punct(';')) && pdepth == 0 {
                break;
            }
            j += 1;
        }
        let mut item = FnItem {
            name: name_tok.text.clone(),
            impl_ty: impl_ty.map(str::to_string),
            module: module.to_vec(),
            is_test,
            line: toks[i].line,
            end_line: toks[i].line,
            body: None,
            calls: Vec::new(),
            index_lines: Vec::new(),
        };
        if j >= end || toks[j].is_punct(';') {
            // Declaration without a body.
            item.end_line = toks[j.min(end - 1)].line;
            self.fns.push(item);
            return (j + 1).min(end);
        }
        let close = match_brace(toks, j).min(end - 1);
        item.end_line = toks[close].line;
        item.body = Some((j, close));
        let idx = self.fns.len();
        self.fns.push(item);
        self.scan_body(j + 1, close, idx, module, impl_ty, is_test);
        close + 1
    }

    /// Scans a body range for call sites and index expressions,
    /// attributing them to `fn_idx`. Nested `fn` items are parsed as
    /// their own entries and excluded from this scan.
    fn scan_body(
        &mut self,
        start: usize,
        end: usize,
        fn_idx: usize,
        module: &[String],
        impl_ty: Option<&str>,
        is_test: bool,
    ) {
        let toks = self.toks;
        let mut i = start;
        while i < end {
            let t = &toks[i];
            // Nested fn item: own entry, skipped here.
            if t.is_ident("fn") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
                i = self.fn_item(i, end, module, impl_ty, is_test);
                continue;
            }
            // Panicking index expression: `expr[...]` (same prev-token
            // discrimination as the per-file rule).
            if t.is_punct('[')
                && i.checked_sub(1).is_some_and(|k| {
                    let p = &toks[k];
                    (p.kind == TokKind::Ident && !is_expr_keyword(&p.text))
                        || p.is_punct(']')
                        || p.is_punct(')')
                })
            {
                self.fns[fn_idx].index_lines.push(t.line);
                i += 1;
                continue;
            }
            if t.kind == TokKind::Ident && !is_expr_keyword(&t.text) {
                let next = toks.get(i + 1);
                // Macro call: `name!(...)` / `name![...]` / `name!{...}`.
                if next.is_some_and(|n| n.is_punct('!'))
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
                {
                    self.fns[fn_idx].calls.push(Call {
                        name: t.text.clone(),
                        recv: Recv::Macro,
                        line: t.line,
                    });
                    i += 2;
                    continue;
                }
                if next.is_some_and(|n| n.is_punct('(')) {
                    let recv = self.receiver_of(i);
                    self.fns[fn_idx].calls.push(Call {
                        name: t.text.clone(),
                        recv,
                        line: t.line,
                    });
                }
            }
            i += 1;
        }
    }

    /// Receiver hint for the call whose name token sits at `i`.
    fn receiver_of(&self, i: usize) -> Recv {
        let toks = self.toks;
        let Some(prev) = i.checked_sub(1).map(|k| &toks[k]) else {
            return Recv::Free;
        };
        if prev.is_punct('.') {
            return match i.checked_sub(2).map(|k| &toks[k]) {
                Some(p) if p.is_ident("self") => {
                    // `self.helper(...)` only when `self` is not itself a
                    // field access tail (`x.self` is not Rust).
                    Recv::SelfRecv
                }
                _ => Recv::Var,
            };
        }
        // Path call: `Seg::name(` — `::` lexes as two `:` puncts.
        if prev.is_punct(':') && i.checked_sub(2).is_some_and(|k| toks[k].is_punct(':')) {
            if let Some(seg) = i
                .checked_sub(3)
                .map(|k| &toks[k])
                .filter(|s| s.kind == TokKind::Ident)
            {
                return Recv::Path(seg.text.clone());
            }
            // `<T as Trait>::name(` and friends: give up on the segment.
            return Recv::Var;
        }
        Recv::Free
    }
}

/// Parses one lexed file into its fn-item skeleton.
#[must_use]
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let mut p = Parser {
        toks: &lexed.toks,
        fns: Vec::new(),
    };
    let end = lexed.toks.len();
    p.items(0, end, &[], None, false);
    ParsedFile { fns: p.fns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn fn_items_with_impl_and_module_context() {
        let src = "\
fn free() { helper(1); }
impl Tracker {
    fn method(&self) { self.free(); other.run(); Qubo::load(); }
}
mod inner {
    fn nested_mod_fn() {}
}
";
        let p = parse_src(src);
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["free", "method", "nested_mod_fn"]);
        assert_eq!(p.fns[1].impl_ty.as_deref(), Some("Tracker"));
        assert_eq!(p.fns[2].module, ["inner"]);
        let calls: Vec<_> = p.fns[1]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.recv.clone()))
            .collect();
        assert_eq!(
            calls,
            [
                ("free", Recv::SelfRecv),
                ("run", Recv::Var),
                ("load", Recv::Path("Qubo".into())),
            ]
        );
        assert_eq!(p.fns[0].calls[0].recv, Recv::Free);
    }

    #[test]
    fn impl_trait_for_type_resolves_to_the_type() {
        let p = parse_src("impl fmt::Display for GlobalMem { fn fmt(&self) {} }");
        assert_eq!(p.fns[0].impl_ty.as_deref(), Some("GlobalMem"));
        let p = parse_src("impl<T: Fn() -> u8> Wrapper<T> { fn get(&self) {} }");
        assert_eq!(p.fns[0].impl_ty.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn cfg_test_gating_is_exact() {
        let gated = |attr: &str| {
            let l = lex(attr);
            // Strip the `#`, `[`, `]` tokens.
            attr_is_test_gated(&l.toks[2..l.toks.len() - 1])
        };
        assert!(gated("#[test]"));
        assert!(gated("#[cfg(test)]"));
        assert!(gated("#[cfg(all(test, feature = \"x\"))]"));
        assert!(gated("#[cfg_attr(feature = \"x\", test)]"));
        assert!(!gated("#[cfg(not(test))]"));
        assert!(!gated("#[cfg_attr(not(test), deny(missing_docs))]"));
        assert!(!gated("#[cfg(any(test, feature = \"x\"))]"));
        assert!(!gated("#[cfg(feature = \"test\")]"));
        assert!(!gated("#[derive(Clone)]"));
    }

    #[test]
    fn nested_test_modules_gate_their_items() {
        let src = "\
mod outer {
    #[cfg(test)]
    mod tests {
        fn helper() {}
        mod deeper { fn deepest() {} }
    }
    fn live() {}
}
#[cfg(not(test))]
fn not_test_gated() {}
";
        let p = parse_src(src);
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("helper").is_test);
        assert!(by_name("deepest").is_test);
        assert!(!by_name("live").is_test);
        assert!(!by_name("not_test_gated").is_test);
        assert_eq!(by_name("deepest").module, ["outer", "tests", "deeper"]);
    }

    #[test]
    fn macros_and_indexing_are_recorded() {
        let src = "\
fn hot(d: &[i32], k: usize) -> i32 {
    if bad { panic!(\"boom\"); }
    let v = d[k];
    probe.observe(v);
    v
}
";
        let p = parse_src(src);
        let f = &p.fns[0];
        assert!(f
            .calls
            .iter()
            .any(|c| c.name == "panic" && c.recv == Recv::Macro));
        assert_eq!(f.index_lines, [3]);
        assert!(f.calls.iter().any(|c| c.name == "observe"));
    }

    #[test]
    fn nested_fns_get_their_own_entries() {
        let src = "\
fn outer() {
    fn inner() { leaf(); }
    inner();
}
";
        let p = parse_src(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
        assert!(!outer.calls.iter().any(|c| c.name == "leaf"));
        assert!(inner.calls.iter().any(|c| c.name == "leaf"));
    }

    #[test]
    fn fn_at_line_returns_the_innermost_item() {
        let src = "fn a() {\n  fn b() {\n    x();\n  }\n}\n";
        let p = parse_src(src);
        assert_eq!(p.fn_at_line(3).unwrap().name, "b");
        assert_eq!(p.fn_at_line(1).unwrap().name, "a");
        assert!(p.fn_at_line(99).is_none());
    }

    #[test]
    fn trait_methods_and_declarations() {
        let src = "\
trait Storage {
    fn row(&self) -> u32;
    fn diag(&self) -> u32 { self.row() }
}
";
        let p = parse_src(src);
        let decl = p.fns.iter().find(|f| f.name == "row").unwrap();
        assert!(decl.body.is_none());
        let def = p.fns.iter().find(|f| f.name == "diag").unwrap();
        assert_eq!(def.impl_ty.as_deref(), Some("Storage"));
        assert!(def.calls.iter().any(|c| c.name == "row"));
    }
}
