//! The rule engine: token-stream passes over one file.
//!
//! Every rule is deny-by-default; the only escape hatch is an inline
//! `// abs-lint: allow(<rule>) -- <reason>` marker on the offending line
//! or the line above it. Markers are counted and reported against the
//! repo-wide budget so the exception list cannot grow silently.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::zones::{
    checkpoint_codec, checkpoint_io_allowed, indexing_audited, lease_api_allowed,
    telemetry_audited, Zone, HOT_FNS, TELEMETRY_HOT_FNS,
};

/// All rule identifiers, in report order. `--list-rules` prints these.
pub const RULES: &[(&str, &str)] = &[
    (
        "device-no-rand",
        "device zone must not use the rand crate: the kernel is deterministic (Fig. 2)",
    ),
    (
        "device-no-clock",
        "device zone must not read Instant/SystemTime: no wall clock in the search path",
    ),
    (
        "device-no-float",
        "device zone must not use f32/f64: the window length is the only temperature",
    ),
    (
        "device-no-alloc",
        "per-flip hot path must not allocate (vec!/Box/String/collect/...)",
    ),
    (
        "device-telemetry-alloc-free",
        "telemetry record/observe entry points must not allocate (device threads call them mid-search)",
    ),
    (
        "device-index-invariant",
        "panicking [] indexing in tracker.rs/local.rs needs a neighbouring `invariant:` comment",
    ),
    (
        "hostga-no-energy",
        "host GA must never evaluate energies (§3: energies arrive from devices)",
    ),
    (
        "ordering-seqcst-justified",
        "Ordering::SeqCst needs a `// ordering:` justification comment",
    ),
    (
        "ordering-pair-named",
        "Ordering::Acquire/Release/AcqRel must name its pairing site in a `// ordering:` comment",
    ),
    (
        "no-unwrap",
        "unwrap()/expect() outside tests (device/host zones use guarded invariants or AbsError)",
    ),
    (
        "device-unsafe-justified",
        "unsafe in the device zone needs a `// SAFETY:` comment naming the checked CPU feature or alignment invariant",
    ),
    (
        "checkpoint-io-zone",
        "checkpoint publish/load stays in the host session zone; codec decodes need a `// crc:` comment",
    ),
    (
        "pool-lease-discipline",
        "pool lease acquire/release stays in pool.rs/runner.rs, and the runner must pair every acquire with a release",
    ),
    (
        "crate-attrs",
        "crate roots must carry #![forbid(unsafe_code)] (or a justified #![deny]) and #![warn(missing_docs)]",
    ),
    (
        "zone-propagation",
        "functions reachable from the device zone inherit its purity rules (no rand/clock/float), wherever they live",
    ),
    (
        "atomic-pairing",
        "every non-Relaxed atomic site must name a partner that exists, complements its ordering, and names it back",
    ),
    (
        "hot-panic-reachable",
        "no panic!/unaudited indexing/harness unwrap transitively reachable from the per-flip hot path or the block driver",
    ),
    (
        "hot-alloc-reachable",
        "no heap allocation in helpers transitively reachable from the per-flip hot path",
    ),
    (
        "server-no-unwrap-in-handler",
        "HTTP handlers (server-zone `handle_*` fns) must not panic: no unwrap/expect/panic-family macros",
    ),
    (
        "bad-allow-marker",
        "abs-lint allow marker without a `-- <reason>` trailer",
    ),
    (
        "allow-budget",
        "allow-marker count exceeds the pinned budget file",
    ),
];

/// How many lines above a site a justification comment may sit.
const COMMENT_WINDOW: u32 = 2;

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier from [`RULES`].
    pub rule: &'static str,
    /// Zone label of the file.
    pub zone: &'static str,
    /// Human-readable description.
    pub message: String,
    /// `true` if an allow marker suppressed this finding.
    pub allowed: bool,
}

/// One parsed `abs-lint: allow(...)` marker.
#[derive(Clone, Debug)]
pub struct AllowMarker {
    /// Line the marker comment starts on.
    pub line: u32,
    /// Rules it allows.
    pub rules: Vec<String>,
    /// `true` if a non-empty reason follows `--`.
    pub has_reason: bool,
}

/// Line spans (1-based, inclusive) of structural regions in one file.
#[derive(Debug, Default)]
struct Spans {
    /// Items under `#[cfg(test)]` / `#[test]`.
    test: Vec<(u32, u32)>,
    /// Bodies of per-flip hot-path functions.
    hot: Vec<(u32, u32)>,
    /// Bodies of telemetry record/observe entry points.
    telemetry_hot: Vec<(u32, u32)>,
    /// Bodies of server HTTP handlers (`handle_*` functions).
    handler: Vec<(u32, u32)>,
    /// Token-index ranges of attributes (`#[...]` / `#![...]`).
    attr_tok: Vec<(usize, usize)>,
}

fn in_spans(line: u32, spans: &[(u32, u32)]) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

fn in_tok_ranges(idx: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
}

/// Finds the token index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Computes test-item spans, hot-function spans, and attribute ranges.
fn find_spans(toks: &[Tok]) -> Spans {
    let mut spans = Spans::default();
    let mut i = 0usize;
    let mut pending_test = false;
    while i < toks.len() {
        // Attribute: `#[...]` or `#![...]`.
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_punct('!') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('[') {
                // Bracket-match the attribute body.
                let mut depth = 0i32;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_punct('[') {
                        depth += 1;
                    } else if toks[k].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                let k = k.min(toks.len() - 1);
                // Exact cfg semantics: `#[cfg(not(test))]` and
                // `#[cfg(any(test, ...))]` compile in non-test builds
                // and stay rule-checked.
                let is_test_attr = crate::parse::attr_is_test_gated(&toks[j + 1..k]);
                spans.attr_tok.push((i, k));
                pending_test |= is_test_attr;
                i = k + 1;
                continue;
            }
        }
        // First non-attribute token after a test attribute: the item.
        if pending_test {
            let start_line = toks[i].line;
            // Item ends at the matching `}` of its first depth-0 `{`,
            // or at the first depth-0 `;` (use decls, consts).
            let mut k = i;
            let mut pdepth = 0i32;
            let end = loop {
                if k >= toks.len() {
                    break toks.len() - 1;
                }
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') {
                    pdepth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    pdepth -= 1;
                } else if t.is_punct('{') && pdepth == 0 {
                    break match_brace(toks, k);
                } else if t.is_punct(';') && pdepth == 0 {
                    break k;
                }
                k += 1;
            };
            spans.test.push((start_line, toks[end].line));
            pending_test = false;
            i = end + 1;
            continue;
        }
        // Hot function body (per-flip kernel, telemetry entry point, or
        // server HTTP handler).
        if toks[i].is_ident("fn")
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident
                    && (HOT_FNS.contains(&t.text.as_str())
                        || TELEMETRY_HOT_FNS.contains(&t.text.as_str())
                        || t.text.starts_with("handle_"))
            })
        {
            let telemetry = TELEMETRY_HOT_FNS.contains(&toks[i + 1].text.as_str());
            let handler = toks[i + 1].text.starts_with("handle_");
            let mut k = i + 2;
            let mut pdepth = 0i32;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('(') {
                    pdepth += 1;
                } else if t.is_punct(')') {
                    pdepth -= 1;
                } else if t.is_punct('{') && pdepth == 0 {
                    break;
                } else if t.is_punct(';') && pdepth == 0 {
                    // Trait method declaration without a body.
                    break;
                }
                k += 1;
            }
            if k < toks.len() && toks[k].is_punct('{') {
                let end = match_brace(toks, k);
                let span = (toks[i].line, toks[end].line);
                if HOT_FNS.contains(&toks[i + 1].text.as_str()) {
                    spans.hot.push(span);
                }
                if telemetry {
                    spans.telemetry_hot.push(span);
                }
                if handler {
                    spans.handler.push(span);
                }
                // Do not skip: nested tokens are still rule-checked.
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    spans
}

/// Parses every `abs-lint: allow(rule, ...) -- reason` marker.
#[must_use]
pub fn parse_markers(lexed: &Lexed) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        // Merged `//` runs are newline-joined: scan per source line so a
        // marker keeps its own line number inside a block.
        for (off, text) in c.text.lines().enumerate() {
            let Some(pos) = text.find("abs-lint:") else {
                continue;
            };
            // A marker must *start* its comment line (after the
            // `//`/`/*` sigils): prose that merely mentions the syntax,
            // e.g. rustdoc describing the marker format, is not an
            // exception.
            if !text[..pos]
                .chars()
                .all(|ch| matches!(ch, '/' | '*' | '!' | ' ' | '\t'))
            {
                continue;
            }
            let rest = &text[pos + "abs-lint:".len()..];
            let Some(open) = rest.find("allow(") else {
                continue;
            };
            if !rest[..open].trim().is_empty() {
                continue;
            }
            let after = &rest[open + "allow(".len()..];
            let Some(close) = after.find(')') else {
                continue;
            };
            let rules: Vec<String> = after[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let has_reason = after[close..]
                .find("--")
                .is_some_and(|d| !after[close + d + 2..].trim().is_empty());
            out.push(AllowMarker {
                line: c.line + off as u32,
                rules,
                has_reason,
            });
        }
    }
    out
}

/// Context for one file's rule pass.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// Zone of the file.
    pub zone: Zone,
    /// Lexer output.
    pub lexed: &'a Lexed,
}

/// Allocation markers on the hot path. `clone` is deliberately absent:
/// cloning the best solution on an improvement is the rare path and is
/// part of the protocol (records are owned by the buffer).
pub const ALLOC_IDENTS: &[&str] = &[
    "vec",
    "Vec",
    "Box",
    "String",
    "format",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "with_capacity",
];

/// Runs every rule over one lexed file, returning raw findings with
/// allow markers already applied (`allowed` set, not filtered).
#[must_use]
pub fn check_file(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let toks = &ctx.lexed.toks;
    let spans = find_spans(toks);
    let markers = parse_markers(ctx.lexed);
    let mut findings: Vec<Finding> = Vec::new();

    let mut push = |rule: &'static str, line: u32, zone: Zone, message: String| {
        findings.push(Finding {
            file: String::new(), // filled by caller
            line,
            rule,
            zone: zone.label(),
            message,
            allowed: false,
        });
    };

    // Markers missing a reason are findings themselves.
    for m in &markers {
        if !m.has_reason {
            push(
                "bad-allow-marker",
                m.line,
                ctx.zone,
                "allow marker lacks a `-- <reason>` trailer".to_string(),
            );
        }
    }

    // crate-attrs: crate roots must pin the two lint attributes.
    let p = ctx.rel_path.replace('\\', "/");
    if p.ends_with("/src/lib.rs") || p.ends_with("/src/main.rs") {
        let has = |a: &str, b: &str| {
            toks.windows(4).any(|w| {
                w[0].is_ident(a) && w[1].is_punct('(') && w[2].is_ident(b) && w[3].is_punct(')')
            })
        };
        // `deny` is the legitimate weakening for crates that scope a
        // single `#[allow(unsafe_code)]` around feature-gated SIMD arms;
        // the unsafe sites themselves are policed by
        // `device-unsafe-justified`.
        if !has("forbid", "unsafe_code") && !has("deny", "unsafe_code") {
            push(
                "crate-attrs",
                1,
                ctx.zone,
                "crate root lacks #![forbid(unsafe_code)] or #![deny(unsafe_code)]".to_string(),
            );
        }
        if !has("warn", "missing_docs") && !has("deny", "missing_docs") {
            push(
                "crate-attrs",
                1,
                ctx.zone,
                "crate root lacks #![warn(missing_docs)]".to_string(),
            );
        }
    }

    // Lease call sites outside test spans, for the runner pairing audit.
    let mut lease_acquires: Vec<u32> = Vec::new();
    let mut lease_releases: u32 = 0;

    for (i, t) in toks.iter().enumerate() {
        let line = t.line;
        if in_spans(line, &spans.test) {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        let next = toks.get(i + 1);

        // --- device-zone purity -----------------------------------------
        if ctx.zone == Zone::Device {
            if t.is_ident("rand") && next.is_some_and(|n| n.is_punct(':')) {
                push(
                    "device-no-rand",
                    line,
                    ctx.zone,
                    "rand crate used in the deterministic device zone".to_string(),
                );
            }
            if t.is_ident("Instant") || t.is_ident("SystemTime") {
                push(
                    "device-no-clock",
                    line,
                    ctx.zone,
                    format!("wall-clock type `{}` in the device zone", t.text),
                );
            }
            if t.is_ident("f32") || t.is_ident("f64") || t.kind == TokKind::Float {
                push(
                    "device-no-float",
                    line,
                    ctx.zone,
                    format!("floating point (`{}`) in the device zone", t.text),
                );
            }
            if in_spans(line, &spans.hot)
                && t.kind == TokKind::Ident
                && ALLOC_IDENTS.contains(&t.text.as_str())
            {
                // `vec`/`format` only as macros; the rest as path/method.
                let is_macro = next.is_some_and(|n| n.is_punct('!'));
                let flagged = match t.text.as_str() {
                    "vec" | "format" => is_macro,
                    _ => true,
                };
                if flagged {
                    push(
                        "device-no-alloc",
                        line,
                        ctx.zone,
                        format!(
                            "possible heap allocation (`{}`) on the per-flip path",
                            t.text
                        ),
                    );
                }
            }
            // Every unsafe site (fn or block) must say which checked CPU
            // feature or alignment invariant makes it sound. The
            // `unsafe_code` ident inside `#![allow(...)]`/`#![deny(...)]`
            // attributes is a different token and never matches.
            if t.is_ident("unsafe")
                && !in_tok_ranges(i, &spans.attr_tok)
                && !ctx
                    .lexed
                    .comment_near(line.saturating_sub(COMMENT_WINDOW), line, "SAFETY")
            {
                push(
                    "device-unsafe-justified",
                    line,
                    ctx.zone,
                    "unsafe without a neighbouring `// SAFETY:` comment".to_string(),
                );
            }
            // Panicking indexing in the audited kernel files.
            if indexing_audited(ctx.rel_path)
                && t.is_punct('[')
                && prev.is_some_and(|p| {
                    p.kind == TokKind::Ident && !is_keyword_before_bracket(&p.text)
                        || p.is_punct(']')
                        || p.is_punct(')')
                })
                && !in_tok_ranges(i, &spans.attr_tok)
                && !ctx
                    .lexed
                    .comment_near(line.saturating_sub(COMMENT_WINDOW), line, "invariant")
            {
                push(
                    "device-index-invariant",
                    line,
                    ctx.zone,
                    "panicking [] indexing without a neighbouring `invariant:` comment".to_string(),
                );
            }
        }

        // --- telemetry entry points stay allocation-free ----------------
        if (ctx.zone == Zone::Telemetry || telemetry_audited(ctx.rel_path))
            && in_spans(line, &spans.telemetry_hot)
            && t.kind == TokKind::Ident
            && ALLOC_IDENTS.contains(&t.text.as_str())
        {
            // Same macro/path discrimination as `device-no-alloc`.
            let is_macro = next.is_some_and(|n| n.is_punct('!'));
            let flagged = match t.text.as_str() {
                "vec" | "format" => is_macro,
                _ => true,
            };
            if flagged {
                push(
                    "device-telemetry-alloc-free",
                    line,
                    ctx.zone,
                    format!(
                        "possible heap allocation (`{}`) in a telemetry record/observe entry point",
                        t.text
                    ),
                );
            }
        }

        // --- host GA never computes energy ------------------------------
        if ctx.zone == Zone::HostGa
            && (t.is_ident("energy") || t.is_ident("delta") || t.is_ident("energy_of"))
            && next.is_some_and(|n| n.is_punct('('))
            && prev.is_some_and(|p| p.is_punct('.') || p.is_punct(':'))
        {
            push(
                "hostga-no-energy",
                line,
                ctx.zone,
                format!(
                    "host GA calls `{}()` — energies must come from devices",
                    t.text
                ),
            );
        }

        // --- atomic ordering audit (every zone) -------------------------
        let is_ordering_path = prev.is_some_and(|p| p.is_punct(':'))
            && i >= 2
            && toks[i - 2].is_punct(':')
            && toks
                .get(i.wrapping_sub(3))
                .is_some_and(|p| p.is_ident("Ordering"));
        if t.is_ident("SeqCst")
            && is_ordering_path
            && !ctx
                .lexed
                .comment_near(line.saturating_sub(COMMENT_WINDOW), line, "ordering:")
        {
            push(
                "ordering-seqcst-justified",
                line,
                ctx.zone,
                "Ordering::SeqCst without an `// ordering:` justification".to_string(),
            );
        }
        if (t.is_ident("Acquire") || t.is_ident("Release") || t.is_ident("AcqRel"))
            && is_ordering_path
            && !ctx
                .lexed
                .comment_near(line.saturating_sub(COMMENT_WINDOW), line, "ordering:")
        {
            push(
                "ordering-pair-named",
                line,
                ctx.zone,
                format!(
                    "Ordering::{} without an `// ordering:` comment naming its pairing site",
                    t.text
                ),
            );
        }

        // --- pool leases stay in the scheduler zone ---------------------
        if (t.is_ident("acquire_lease") || t.is_ident("release_lease"))
            && next.is_some_and(|n| n.is_punct('('))
            && !prev.is_some_and(|p| p.is_ident("fn"))
        {
            if !lease_api_allowed(ctx.rel_path) {
                push(
                    "pool-lease-discipline",
                    line,
                    ctx.zone,
                    format!(
                        "`{}()` called outside the scheduler zone — device capacity is leased only by the pool and the job runner",
                        t.text
                    ),
                );
            }
            if t.is_ident("acquire_lease") {
                lease_acquires.push(line);
            } else {
                lease_releases += 1;
            }
        }

        // --- checkpoint durability stays in the session zone ------------
        if (t.is_ident("write_checkpoint") || t.is_ident("load_checkpoint"))
            && next.is_some_and(|n| n.is_punct('('))
            && !prev.is_some_and(|p| p.is_ident("fn"))
            && !checkpoint_io_allowed(ctx.rel_path)
        {
            push(
                "checkpoint-io-zone",
                line,
                ctx.zone,
                format!(
                    "`{}()` called outside the host session zone — checkpoint files are a session concern",
                    t.text
                ),
            );
        }
        if checkpoint_codec(ctx.rel_path)
            && t.is_ident("from_le_bytes")
            && !ctx
                .lexed
                .comment_near(line.saturating_sub(COMMENT_WINDOW), line, "crc")
        {
            push(
                "checkpoint-io-zone",
                line,
                ctx.zone,
                "`from_le_bytes` decode without a neighbouring `// crc:` comment naming the verified checksum"
                    .to_string(),
            );
        }

        // --- no-unwrap (all zones except the bench harness) -------------
        if ctx.zone != Zone::Harness
            && (t.is_ident("unwrap") || t.is_ident("expect"))
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
        {
            push(
                "no-unwrap",
                line,
                ctx.zone,
                format!(".{}() outside tests", t.text),
            );
        }

        // --- server handlers never panic --------------------------------
        // A handler thread that unwinds poisons the shared job store for
        // every later request, so `handle_*` bodies are held to a
        // stricter bar than plain `no-unwrap`: the panic-family macros
        // are banned outright, and unwrap/expect is reported under this
        // rule too (a marker for the generic rule must not excuse a
        // handler).
        if ctx.zone == Zone::Server && in_spans(line, &spans.handler) {
            let is_panic_macro = matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && t.kind == TokKind::Ident
                && next.is_some_and(|n| n.is_punct('!'));
            let is_unwrap = (t.is_ident("unwrap") || t.is_ident("expect"))
                && prev.is_some_and(|p| p.is_punct('.'))
                && next.is_some_and(|n| n.is_punct('('));
            if is_panic_macro {
                push(
                    "server-no-unwrap-in-handler",
                    line,
                    ctx.zone,
                    format!("`{}!` inside an HTTP handler", t.text),
                );
            } else if is_unwrap {
                push(
                    "server-no-unwrap-in-handler",
                    line,
                    ctx.zone,
                    format!(".{}() inside an HTTP handler", t.text),
                );
            }
        }
    }

    // The runner owns the job lifecycle, so every lease it takes must
    // have a visible give-back: unequal call-site counts mean some path
    // parks capacity forever (the pool's own ledger can only catch it
    // at runtime).
    if ctx.rel_path.replace('\\', "/") == "crates/server/src/runner.rs"
        && lease_acquires.len() as u32 != lease_releases
    {
        push(
            "pool-lease-discipline",
            lease_acquires.first().copied().unwrap_or(1),
            ctx.zone,
            format!(
                "runner has {} acquire_lease call(s) but {} release_lease call(s) — every lease needs a paired release",
                lease_acquires.len(),
                lease_releases
            ),
        );
    }

    apply_markers(&mut findings, &markers);
    findings
}

/// Applies allow markers to findings in place: a marker covers its own
/// line and the next. Whole-program passes reuse this so a marker
/// suppresses e.g. a `zone-propagation` finding exactly like a per-file
/// one.
pub fn apply_markers(findings: &mut [Finding], markers: &[AllowMarker]) {
    for f in findings {
        if f.rule == "bad-allow-marker" {
            continue;
        }
        if markers.iter().any(|m| {
            (m.line == f.line || m.line + 1 == f.line) && m.rules.iter().any(|r| r == f.rule)
        }) {
            f.allowed = true;
        }
    }
}

/// Keywords that can directly precede `[` without it being an index
/// expression (slice patterns, array types are preceded by punctuation
/// and so never match; `mut`/`ref`/`in` precede slice patterns).
fn is_keyword_before_bracket(s: &str) -> bool {
    matches!(
        s,
        "mut" | "ref" | "in" | "return" | "break" | "else" | "match" | "impl" | "dyn"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ctx = FileCtx {
            rel_path: path,
            zone: crate::zones::classify(path),
            lexed: &lexed,
        };
        check_file(&ctx)
    }

    fn active<'f>(fs: &'f [Finding], rule: &str) -> Vec<&'f Finding> {
        fs.iter().filter(|f| f.rule == rule && !f.allowed).collect()
    }

    #[test]
    fn device_zone_forbids_rand_clock_float() {
        let src = "use rand::Rng;\nfn f() -> f64 { let t = std::time::Instant::now(); 1.5 }\n";
        let fs = run("crates/search/src/tracker.rs", src);
        assert_eq!(active(&fs, "device-no-rand").len(), 1);
        assert_eq!(active(&fs, "device-no-clock").len(), 1);
        assert_eq!(active(&fs, "device-no-float").len(), 2); // f64 + 1.5
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  use rand::Rng;\n  fn g() { x.unwrap(); }\n}\n";
        let fs = run("crates/search/src/tracker.rs", src);
        assert!(active(&fs, "device-no-rand").is_empty());
        assert!(active(&fs, "no-unwrap").is_empty());
    }

    #[test]
    fn not_test_and_cfg_attr_do_not_gate() {
        // Regression: `#[cfg(not(test))]` items compile in non-test
        // builds — the old span pass exempted them because the
        // attribute mentions `test`.
        let src = "#[cfg(not(test))]\nfn live(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let fs = run("crates/core/src/solver.rs", src);
        assert_eq!(active(&fs, "no-unwrap").len(), 1);

        let src = "#[cfg_attr(not(test), allow(dead_code))]\nfn live(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let fs = run("crates/core/src/solver.rs", src);
        assert_eq!(active(&fs, "no-unwrap").len(), 1);

        // `#[cfg(any(test, feature))]` is compiled without cfg(test) too.
        let src =
            "#[cfg(any(test, feature = \"slow\"))]\nfn maybe(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let fs = run("crates/core/src/solver.rs", src);
        assert_eq!(active(&fs, "no-unwrap").len(), 1);

        // ...while a conditionally-applied `test` attribute still gates.
        let src =
            "#[cfg_attr(feature = \"harness\", test)]\nfn t(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let fs = run("crates/core/src/solver.rs", src);
        assert!(active(&fs, "no-unwrap").is_empty());
    }

    #[test]
    fn nested_test_mod_keeps_following_code_checked() {
        // Regression: items *after* a `#[cfg(test)] mod` must stay
        // rule-checked (the span must close at the mod's brace).
        let src = "#[cfg(test)]\nmod tests {\n  fn g() { x.unwrap(); }\n}\nfn live(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let fs = run("crates/core/src/solver.rs", src);
        let hits = active(&fs, "no-unwrap");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 5);
    }

    #[test]
    fn allow_marker_suppresses_and_requires_reason() {
        let src = "// abs-lint: allow(device-no-float) -- Metropolis config, not the kernel\npub temperature: f64,\n";
        let fs = run("crates/search/src/policy.rs", src);
        assert!(active(&fs, "device-no-float").is_empty());
        assert_eq!(
            fs.iter()
                .filter(|f| f.rule == "device-no-float" && f.allowed)
                .count(),
            1
        );

        let bad = "// abs-lint: allow(device-no-float)\npub t: f64,\n";
        let fs = run("crates/search/src/policy.rs", bad);
        assert_eq!(active(&fs, "bad-allow-marker").len(), 1);
        // Without a reason the marker still suppresses (the budget and
        // the bad-marker finding police it).
        assert!(active(&fs, "device-no-float").is_empty());
    }

    #[test]
    fn hot_path_allocation_is_flagged_only_in_hot_fns() {
        let src = "fn setup() { let v: Vec<u8> = Vec::new(); }\nfn flip(&mut self) { let v = vec![0u8; 4]; }\n";
        let fs = run("crates/search/src/tracker.rs", src);
        let allocs = active(&fs, "device-no-alloc");
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].line, 2);
    }

    #[test]
    fn telemetry_record_paths_must_not_allocate() {
        // Constructors may allocate; record/observe/inc bodies may not.
        let src = "fn with_capacity(c: usize) -> Self { Self { s: vec![0; c] } }\n\
                   fn record(&self, e: Event) { self.tmp = format!(\"{e:?}\"); }\n\
                   fn observe(&self, v: u64) { let _x = v.to_string(); }\n\
                   fn inc(&self) { self.0.fetch_add(1, Ordering::Relaxed); }\n";
        let fs = run("crates/telemetry/src/ring.rs", src);
        let hits = active(&fs, "device-telemetry-alloc-free");
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[1].line, 3);

        // The device facade in vgpu is audited too, despite its zone.
        let facade = "fn record_event(&self, e: Event) { self.log.push(e.to_owned()); }\n";
        let fs = run("crates/vgpu/src/buffers.rs", facade);
        assert_eq!(active(&fs, "device-telemetry-alloc-free").len(), 1);

        // Outside the audited files the rule stays silent.
        let fs = run("crates/core/src/solver.rs", facade);
        assert!(active(&fs, "device-telemetry-alloc-free").is_empty());
    }

    #[test]
    fn indexing_needs_invariant_comment() {
        let bare = "fn f(d: &[i32], k: usize) -> i32 { d[k] }\n";
        let fs = run("crates/search/src/tracker.rs", bare);
        assert_eq!(active(&fs, "device-index-invariant").len(), 1);

        let ok = "fn f(d: &[i32], k: usize) -> i32 {\n  // invariant: k < d.len() asserted by caller\n  d[k]\n}\n";
        let fs = run("crates/search/src/tracker.rs", ok);
        assert!(active(&fs, "device-index-invariant").is_empty());

        // Attributes and slice patterns are not index expressions.
        let attr = "#[derive(Clone)]\nstruct S;\n";
        let fs = run("crates/search/src/tracker.rs", attr);
        assert!(active(&fs, "device-index-invariant").is_empty());
    }

    #[test]
    fn hostga_energy_calls_are_flagged_but_constants_are_not() {
        let call = "fn f(q: &Qubo, x: &BitVec) -> i64 { q.energy(x) }\n";
        let fs = run("crates/ga/src/pool.rs", call);
        assert_eq!(active(&fs, "hostga-no-energy").len(), 1);

        let constant =
            "use qubo::energy::UNEVALUATED;\nfn g(e: i64) -> bool { e == UNEVALUATED }\n";
        let fs = run("crates/ga/src/pool.rs", constant);
        assert!(active(&fs, "hostga-no-energy").is_empty());
    }

    #[test]
    fn ordering_rules_demand_comments() {
        let bare =
            "fn f(a: &AtomicU64) { a.store(1, Ordering::SeqCst); a.load(Ordering::Acquire); }\n";
        let fs = run("crates/vgpu/src/buffers.rs", bare);
        assert_eq!(active(&fs, "ordering-seqcst-justified").len(), 1);
        assert_eq!(active(&fs, "ordering-pair-named").len(), 1);

        let ok = "// ordering: Release in push_result pairs with this Acquire\nfn f(a: &AtomicU64) { a.load(Ordering::Acquire); }\n";
        let fs = run("crates/vgpu/src/buffers.rs", ok);
        assert!(active(&fs, "ordering-pair-named").is_empty());

        // Relaxed needs no comment.
        let relaxed = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        let fs = run("crates/vgpu/src/buffers.rs", relaxed);
        assert!(active(&fs, "ordering-pair-named").is_empty());
    }

    #[test]
    fn pool_leases_confined_and_runner_calls_paired() {
        // Lease calls outside pool.rs/runner.rs are flagged.
        let call = "fn f(p: &DevicePool, r: &LeaseRequest) { let l = p.acquire_lease(r); p.release_lease(l); }\n";
        assert_eq!(
            active(
                &run("crates/server/src/routes.rs", call),
                "pool-lease-discipline"
            )
            .len(),
            2
        );
        assert!(active(
            &run("crates/server/src/runner.rs", call),
            "pool-lease-discipline"
        )
        .is_empty());
        assert!(active(
            &run("crates/vgpu/src/pool.rs", call),
            "pool-lease-discipline"
        )
        .is_empty());

        // Definition sites don't count as calls.
        let def = "pub fn acquire_lease(&self, r: &LeaseRequest) -> PoolLease { todo!() }\n";
        assert!(active(
            &run("crates/core/src/session.rs", def),
            "pool-lease-discipline"
        )
        .is_empty());

        // An unpaired acquire in the runner is a leak-by-construction.
        let leak = "fn f(p: &DevicePool, r: &LeaseRequest) { let _l = p.acquire_lease(r); }\n";
        let fs = run("crates/server/src/runner.rs", leak);
        let hits = active(&fs, "pool-lease-discipline");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("1 acquire_lease"), "{hits:?}");

        // Test-span lease calls don't skew the pairing count.
        let tested = "fn f(p: &DevicePool, r: &LeaseRequest, l: PoolLease) { p.release_lease(l); let _ = p.acquire_lease(r); }\n\
                      #[cfg(test)]\nmod tests {\n  fn g(p: &DevicePool, r: &LeaseRequest) { let _ = p.acquire_lease(r); }\n}\n";
        assert!(active(
            &run("crates/server/src/runner.rs", tested),
            "pool-lease-discipline"
        )
        .is_empty());
    }

    #[test]
    fn unwrap_outside_tests_is_flagged_everywhere_but_bench() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            active(&run("crates/core/src/solver.rs", src), "no-unwrap").len(),
            1
        );
        assert_eq!(
            active(&run("crates/qubo/src/matrix.rs", src), "no-unwrap").len(),
            1
        );
        assert!(active(&run("crates/bench/src/lib.rs", src), "no-unwrap").is_empty());
        // unwrap_or_else is fine.
        let src2 = "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }\n";
        assert!(active(&run("crates/core/src/solver.rs", src2), "no-unwrap").is_empty());
    }

    #[test]
    fn checkpoint_io_confined_and_codec_crc_audited() {
        // Calls from outside the session zone are flagged; the session
        // and the codec itself are not.
        let call = "fn f(p: &Path) { let c = load_checkpoint(p, None); }\n";
        assert_eq!(
            active(
                &run("crates/vgpu/src/device.rs", call),
                "checkpoint-io-zone"
            )
            .len(),
            1
        );
        assert_eq!(
            active(&run("crates/ga/src/pool.rs", call), "checkpoint-io-zone").len(),
            1
        );
        assert!(active(
            &run("crates/core/src/session.rs", call),
            "checkpoint-io-zone"
        )
        .is_empty());

        // Definition sites don't count as calls.
        let def = "pub fn write_checkpoint(p: &Path) -> Result<(), AbsError> { Ok(()) }\n";
        assert!(active(&run("crates/vgpu/src/device.rs", def), "checkpoint-io-zone").is_empty());

        // Codec decodes need the `// crc:` audit comment...
        let bare = "fn u32(b: &[u8]) -> u32 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) }\n";
        assert_eq!(
            active(
                &run("crates/core/src/checkpoint.rs", bare),
                "checkpoint-io-zone"
            )
            .len(),
            1
        );
        let ok = "fn u32(b: &[u8]) -> u32 {\n  // crc: slice verified before parsing\n  u32::from_le_bytes([b[0], b[1], b[2], b[3]])\n}\n";
        assert!(active(
            &run("crates/core/src/checkpoint.rs", ok),
            "checkpoint-io-zone"
        )
        .is_empty());
        // ...but only in the codec file.
        assert!(active(
            &run("crates/qubo/src/format.rs", bare),
            "checkpoint-io-zone"
        )
        .is_empty());
    }

    #[test]
    fn crate_attrs_checked_on_roots_only() {
        let bare = "pub mod x;\n";
        let fs = run("crates/qubo/src/lib.rs", bare);
        assert_eq!(active(&fs, "crate-attrs").len(), 2);
        let fs = run("crates/qubo/src/matrix.rs", bare);
        assert!(active(&fs, "crate-attrs").is_empty());
        let ok = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub mod x;\n";
        let fs = run("crates/qubo/src/lib.rs", ok);
        assert!(active(&fs, "crate-attrs").is_empty());
        // deny is the sanctioned weakening for SIMD-bearing crates.
        let deny = "#![deny(unsafe_code)]\n#![warn(missing_docs)]\npub mod x;\n";
        let fs = run("crates/search/src/lib.rs", deny);
        assert!(active(&fs, "crate-attrs").is_empty());
    }

    #[test]
    fn server_handlers_must_not_panic() {
        // Panic-family macros and unwrap/expect inside a `handle_*` fn
        // in the server zone are flagged; the same code outside a
        // handler only trips the generic no-unwrap rule.
        let src = "fn handle_submit(b: &str) -> Response {\n  let v = parse(b).unwrap();\n  if v.is_bad() { panic!(\"bad\"); }\n  todo!()\n}\nfn helper(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let fs = run("crates/server/src/routes.rs", src);
        let hits = active(&fs, "server-no-unwrap-in-handler");
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert_eq!(hits[0].line, 2); // .unwrap()
        assert_eq!(hits[1].line, 3); // panic!
        assert_eq!(hits[2].line, 4); // todo!
                                     // The helper outside the handler is generic no-unwrap territory.
        assert_eq!(active(&fs, "no-unwrap").len(), 2);

        // Outside the server zone, handle_* names carry no special bar.
        let fs = run("crates/core/src/solver.rs", src);
        assert!(active(&fs, "server-no-unwrap-in-handler").is_empty());

        // A clean handler that propagates errors is silent.
        let ok = "fn handle_status(id: u64) -> Result<Response, ApiError> {\n  let j = store.get(id).ok_or(ApiError::NotFound)?;\n  Ok(ok_json(&j))\n}\n";
        let fs = run("crates/server/src/routes.rs", ok);
        assert!(active(&fs, "server-no-unwrap-in-handler").is_empty());
    }

    #[test]
    fn device_unsafe_needs_safety_comment() {
        let bare = "fn f(p: *const i32) -> i32 { unsafe { *p } }\n";
        let fs = run("crates/search/src/simd.rs", bare);
        assert_eq!(active(&fs, "device-unsafe-justified").len(), 1);

        let ok = "fn f(p: *const i32) -> i32 {\n  // SAFETY: caller checked avx2 and 64-byte alignment\n  unsafe { *p }\n}\n";
        let fs = run("crates/search/src/simd.rs", ok);
        assert!(active(&fs, "device-unsafe-justified").is_empty());

        // The `unsafe_code` ident in lint attributes is not a site.
        let attr = "#![allow(unsafe_code)]\npub mod x;\n";
        let fs = run("crates/search/src/simd.rs", attr);
        assert!(active(&fs, "device-unsafe-justified").is_empty());

        // Outside the device zone the rule stays silent.
        let fs = run("crates/core/src/solver.rs", bare);
        assert!(active(&fs, "device-unsafe-justified").is_empty());

        // Test modules are exempt like every other rule.
        let test_src =
            "#[cfg(test)]\nmod tests {\n  fn g(p: *const i32) -> i32 { unsafe { *p } }\n}\n";
        let fs = run("crates/search/src/simd.rs", test_src);
        assert!(active(&fs, "device-unsafe-justified").is_empty());
    }
}
