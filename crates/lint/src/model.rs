//! Exhaustive interleaving model check of the `GlobalMem` buffer
//! protocol (the host/device contract of §3.1–§3.2, Fig. 5).
//!
//! `vgpu::GlobalMem` guards each buffer with a mutex and bumps an atomic
//! progress counter, so every host/device operation is one atomic step;
//! a concurrent execution is therefore *some interleaving* of those
//! steps. This module extracts the counter / overflow / eviction state
//! machine into a pure model and enumerates **every** schedule up to a
//! bounded depth, checking after each step that
//!
//! 1. the progress counter is monotone and counts accepted records
//!    exactly (`counter == delivered + buffered + evicted`),
//! 2. every pushed record has exactly one fate — delivered to the host,
//!    still buffered, evicted by keep-best overflow, discarded by
//!    overflow, or rejected by length validation — i.e. **no record is
//!    both dropped and delivered**, and
//! 3. the loss accounting is exact: `overflow_results` equals evictions
//!    plus discards, `dropped_targets` equals target evictions, and the
//!    buffers never exceed their capacities.
//!
//! The weekly TSan job can only catch races a particular execution
//! happens to hit; this enumeration is deterministic and runs on every
//! push. A conformance test in `abs-integration-tests` replays the same
//! schedules against the real `GlobalMem` so the model cannot drift
//! from the implementation.

use std::collections::VecDeque;

/// One atomic step of the host/device protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Host: enqueue a target (§3.1 Step 4); evicts the oldest on
    /// overflow.
    HostPushTarget,
    /// Device: dequeue the next target (§3.2 Step 2).
    DevicePopTarget,
    /// Host: drain the solution buffer (§3.1 Step 3).
    HostDrain,
    /// Host: poll the progress counter (§3.1 Step 2). Checks
    /// monotonicity against the previous observation.
    HostReadCounter,
    /// Device: push a solution record (§3.2 Step 5).
    DevicePush {
        /// `false` simulates a corrupted record whose bit-length
        /// disagrees with the registered problem size.
        good_len: bool,
        /// The record's energy (drives keep-best eviction).
        energy: i64,
    },
}

/// The fate of one pushed record. Terminal states are mutually
/// exclusive; `Buffered` may still become `Delivered` or `Evicted`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Accepted and still sitting in the result buffer.
    Buffered,
    /// Accepted and handed to the host by a drain.
    Delivered,
    /// Accepted, then replaced by a strictly better record during
    /// keep-best overflow (dropped after acceptance).
    Evicted,
    /// Refused at push time by a full buffer (worse than the worst).
    Discarded,
    /// Refused at push time by length validation.
    Rejected,
}

/// Pure model of one device's `GlobalMem` region.
#[derive(Clone, Debug)]
pub struct ModelMem {
    target_cap: usize,
    result_cap: usize,
    expected_len: usize,
    targets: VecDeque<u32>,
    /// `(push id, energy)` — mirrors the result buffer.
    results: Vec<(u32, i64)>,
    counter: u64,
    rejected: u64,
    dropped_targets: u64,
    overflow_results: u64,
    // --- ghost state (not in the real implementation) ---
    fates: Vec<Fate>,
    pushed_targets: u64,
    popped_targets: u64,
    last_observed_counter: u64,
    delivered_energies: Vec<i64>,
}

impl ModelMem {
    /// A model with the given buffer capacities (clamped to ≥ 1, like
    /// the implementation) and registered problem length (0 = length
    /// validation disabled).
    #[must_use]
    pub fn new(target_cap: usize, result_cap: usize, expected_len: usize) -> Self {
        Self {
            target_cap: target_cap.max(1),
            result_cap: result_cap.max(1),
            expected_len,
            targets: VecDeque::new(),
            results: Vec::new(),
            counter: 0,
            rejected: 0,
            dropped_targets: 0,
            overflow_results: 0,
            fates: Vec::new(),
            pushed_targets: 0,
            popped_targets: 0,
            last_observed_counter: 0,
            delivered_energies: Vec::new(),
        }
    }

    /// The progress counter (host observable).
    #[must_use]
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Targets currently pending (host observable).
    #[must_use]
    pub fn pending_targets(&self) -> usize {
        self.targets.len()
    }

    /// Targets evicted by overflow.
    #[must_use]
    pub fn dropped_targets(&self) -> u64 {
        self.dropped_targets
    }

    /// Records lost to result-buffer overflow (evicted + discarded).
    #[must_use]
    pub fn overflow_results(&self) -> u64 {
        self.overflow_results
    }

    /// Records rejected by length validation.
    #[must_use]
    pub fn rejected_records(&self) -> u64 {
        self.rejected
    }

    /// Energies delivered to the host so far, in drain order.
    #[must_use]
    pub fn delivered_energies(&self) -> &[i64] {
        &self.delivered_energies
    }

    /// Applies one step. Returns the observable outcome of the op:
    /// `Some(true/false)` for pushes (accepted?) and pops (got one?),
    /// `None` for the rest.
    pub fn apply(&mut self, op: Op) -> Option<bool> {
        match op {
            Op::HostPushTarget => {
                self.pushed_targets += 1;
                if self.targets.len() >= self.target_cap {
                    self.targets.pop_front();
                    self.dropped_targets += 1;
                }
                self.targets.push_back(self.pushed_targets as u32);
                None
            }
            Op::DevicePopTarget => {
                let got = self.targets.pop_front().is_some();
                if got {
                    self.popped_targets += 1;
                }
                Some(got)
            }
            Op::HostDrain => {
                for (id, e) in self.results.drain(..) {
                    self.fates[id as usize] = Fate::Delivered;
                    self.delivered_energies.push(e);
                }
                None
            }
            Op::HostReadCounter => {
                // Monotonicity is asserted by `check`, which sees both
                // the old observation and the new one.
                self.last_observed_counter = self.counter;
                None
            }
            Op::DevicePush { good_len, energy } => {
                let id = self.fates.len() as u32;
                if self.expected_len != 0 && !good_len {
                    self.fates.push(Fate::Rejected);
                    self.rejected += 1;
                    return Some(false);
                }
                if self.results.len() >= self.result_cap {
                    self.overflow_results += 1;
                    // Mirror the implementation exactly: max_by_key
                    // returns the *last* maximal element, replacement
                    // requires a *strict* improvement.
                    let worst = self
                        .results
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &(_, e))| e)
                        .map(|(i, _)| i);
                    return match worst {
                        Some(i) if energy < self.results[i].1 => {
                            let (old_id, _) = self.results[i];
                            self.fates[old_id as usize] = Fate::Evicted;
                            self.results[i] = (id, energy);
                            self.fates.push(Fate::Buffered);
                            self.counter += 1;
                            Some(true)
                        }
                        _ => {
                            self.fates.push(Fate::Discarded);
                            Some(false)
                        }
                    };
                }
                self.results.push((id, energy));
                self.fates.push(Fate::Buffered);
                self.counter += 1;
                Some(true)
            }
        }
    }

    /// Checks every protocol invariant; returns a description of the
    /// first violation.
    pub fn check(&self, counter_before: u64) -> Result<(), String> {
        // 1. Counter monotone.
        if self.counter < counter_before {
            return Err(format!(
                "counter moved backwards: {} -> {}",
                counter_before, self.counter
            ));
        }
        if self.last_observed_counter > self.counter {
            return Err("host observed a counter value above the current one".into());
        }
        // 2. Capacities hold at every instant.
        if self.results.len() > self.result_cap {
            return Err(format!(
                "result buffer over capacity: {} > {}",
                self.results.len(),
                self.result_cap
            ));
        }
        if self.targets.len() > self.target_cap {
            return Err(format!(
                "target buffer over capacity: {} > {}",
                self.targets.len(),
                self.target_cap
            ));
        }
        // 3. Exactly-one-fate accounting. A buffered fate must actually
        //    be in the buffer and vice versa (no record both dropped
        //    and delivered, none lost without a fate).
        let mut buffered = 0u64;
        let mut delivered = 0u64;
        let mut evicted = 0u64;
        let mut discarded = 0u64;
        let mut rejected = 0u64;
        for f in &self.fates {
            match f {
                Fate::Buffered => buffered += 1,
                Fate::Delivered => delivered += 1,
                Fate::Evicted => evicted += 1,
                Fate::Discarded => discarded += 1,
                Fate::Rejected => rejected += 1,
            }
        }
        if buffered != self.results.len() as u64 {
            return Err(format!(
                "fate accounting drift: {buffered} buffered fates vs {} buffered records",
                self.results.len()
            ));
        }
        for &(id, _) in &self.results {
            if self.fates[id as usize] != Fate::Buffered {
                return Err(format!(
                    "record {id} in buffer but fate {:?}",
                    self.fates[id as usize]
                ));
            }
        }
        if delivered != self.delivered_energies.len() as u64 {
            return Err("delivered fates disagree with the delivery log".into());
        }
        // 4. Counter counts accepted records exactly.
        if self.counter != buffered + delivered + evicted {
            return Err(format!(
                "counter {} != accepted records {} (buffered {buffered} + delivered {delivered} + evicted {evicted})",
                self.counter,
                buffered + delivered + evicted
            ));
        }
        // 5. Loss accounting exact.
        if self.overflow_results != evicted + discarded {
            return Err(format!(
                "overflow_results {} != evicted {evicted} + discarded {discarded}",
                self.overflow_results
            ));
        }
        if self.rejected != rejected {
            return Err("rejected counter disagrees with rejected fates".into());
        }
        if self.fates.len() as u64 != buffered + delivered + evicted + discarded + rejected {
            return Err("a record has no fate or more than one".into());
        }
        // 6. Target conservation.
        if self.pushed_targets
            != self.targets.len() as u64 + self.popped_targets + self.dropped_targets
        {
            return Err(format!(
                "target conservation broken: pushed {} != pending {} + popped {} + dropped {}",
                self.pushed_targets,
                self.targets.len(),
                self.popped_targets,
                self.dropped_targets
            ));
        }
        Ok(())
    }
}

/// Coverage statistics of one enumeration run: proof that the explored
/// schedules actually exercised every interesting path.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// Interior + leaf states visited.
    pub states: u64,
    /// Complete schedules (length == depth) explored.
    pub schedules: u64,
    /// States in which a keep-best eviction had happened.
    pub evictions_seen: u64,
    /// States in which an overflow discard had happened.
    pub discards_seen: u64,
    /// States in which a length rejection had happened.
    pub rejections_seen: u64,
    /// States in which a target was dropped by ring overflow.
    pub target_drops_seen: u64,
}

/// The default schedule alphabet: host poll/drain/target-push against
/// device pops and pushes of three record classes (improving, worse,
/// corrupted).
#[must_use]
pub fn default_alphabet() -> Vec<Op> {
    vec![
        Op::HostPushTarget,
        Op::DevicePopTarget,
        Op::HostDrain,
        Op::HostReadCounter,
        Op::DevicePush {
            good_len: true,
            energy: -1,
        },
        Op::DevicePush {
            good_len: true,
            energy: 1,
        },
        Op::DevicePush {
            good_len: false,
            energy: 0,
        },
    ]
}

/// Exhaustively enumerates every schedule over `alphabet` up to
/// `depth`, checking all invariants after every step of every schedule.
/// Returns coverage statistics, or the first violation with the
/// schedule that produced it.
pub fn enumerate(init: &ModelMem, alphabet: &[Op], depth: usize) -> Result<CheckStats, String> {
    let mut stats = CheckStats::default();
    let mut trace: Vec<Op> = Vec::with_capacity(depth);
    dfs(init, alphabet, depth, &mut trace, &mut stats)?;
    Ok(stats)
}

fn dfs(
    state: &ModelMem,
    alphabet: &[Op],
    remaining: usize,
    trace: &mut Vec<Op>,
    stats: &mut CheckStats,
) -> Result<(), String> {
    if remaining == 0 {
        stats.schedules += 1;
        return Ok(());
    }
    for &op in alphabet {
        let mut next = state.clone();
        let counter_before = next.counter;
        next.apply(op);
        trace.push(op);
        if let Err(e) = next.check(counter_before) {
            return Err(format!("{e}\n  schedule: {trace:?}"));
        }
        stats.states += 1;
        if next.fates.contains(&Fate::Evicted) {
            stats.evictions_seen += 1;
        }
        if next.fates.contains(&Fate::Discarded) {
            stats.discards_seen += 1;
        }
        if next.rejected > 0 {
            stats.rejections_seen += 1;
        }
        if next.dropped_targets > 0 {
            stats.target_drops_seen += 1;
        }
        dfs(&next, alphabet, remaining - 1, trace, stats)?;
        trace.pop();
    }
    Ok(())
}

/// The full model-check suite the CI job runs: tight capacities so the
/// bounded depth reaches overflow, eviction, and rejection on many
/// schedules, plus the capacity-1 configuration where every push
/// exercises the eviction path.
pub fn run_model_check(depth: usize) -> Result<Vec<(String, CheckStats)>, String> {
    let mut out = Vec::new();
    for (name, mem) in [
        (
            "target_cap=1 result_cap=2 len-validated",
            ModelMem::new(1, 2, 2),
        ),
        (
            "target_cap=1 result_cap=1 len-validated",
            ModelMem::new(1, 1, 2),
        ),
        (
            "target_cap=2 result_cap=2 unregistered",
            ModelMem::new(2, 2, 0),
        ),
    ] {
        let stats =
            enumerate(&mem, &default_alphabet(), depth).map_err(|e| format!("[{name}] {e}"))?;
        out.push((name.to_string(), stats));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schedules_to_depth_six_hold_every_invariant() {
        let stats = enumerate(&ModelMem::new(1, 2, 2), &default_alphabet(), 6)
            .expect("no invariant violation in any schedule");
        assert_eq!(stats.schedules, 7u64.pow(6));
        // The run must actually have exercised the interesting paths.
        assert!(stats.evictions_seen > 0, "no schedule reached eviction");
        assert!(stats.discards_seen > 0, "no schedule reached discard");
        assert!(stats.rejections_seen > 0, "no schedule reached rejection");
        assert!(stats.target_drops_seen > 0, "no schedule dropped a target");
    }

    #[test]
    fn capacity_one_result_buffer_is_pure_keep_best() {
        let mut m = ModelMem::new(1, 1, 2);
        assert_eq!(
            m.apply(Op::DevicePush {
                good_len: true,
                energy: 5
            }),
            Some(true)
        );
        // Worse record: discarded, counter unchanged.
        assert_eq!(
            m.apply(Op::DevicePush {
                good_len: true,
                energy: 9
            }),
            Some(false)
        );
        assert_eq!(m.counter(), 1);
        // Better record: evicts the buffered one.
        assert_eq!(
            m.apply(Op::DevicePush {
                good_len: true,
                energy: -3
            }),
            Some(true)
        );
        assert_eq!(m.counter(), 2);
        assert_eq!(m.overflow_results(), 2);
        m.apply(Op::HostDrain);
        assert_eq!(m.delivered_energies(), &[-3]);
        m.check(2).expect("invariants hold");
    }

    #[test]
    fn unregistered_length_accepts_everything() {
        let mut m = ModelMem::new(2, 2, 0);
        assert_eq!(
            m.apply(Op::DevicePush {
                good_len: false,
                energy: 0
            }),
            Some(true)
        );
        assert_eq!(m.rejected_records(), 0);
        m.check(0).expect("invariants hold");
    }

    #[test]
    fn a_buggy_double_count_would_be_caught() {
        // Sanity-check the checker itself: corrupt the counter and
        // confirm `check` notices.
        let mut m = ModelMem::new(1, 2, 2);
        m.apply(Op::DevicePush {
            good_len: true,
            energy: 0,
        });
        m.counter += 1; // simulated double increment
        assert!(m.check(0).is_err());
    }

    #[test]
    fn run_model_check_covers_three_configs() {
        let all = run_model_check(5).expect("clean");
        assert_eq!(all.len(), 3);
        for (_, s) in &all {
            assert_eq!(s.schedules, 7u64.pow(5));
        }
    }
}
