//! Report assembly and rendering (human and machine-readable JSON).
//!
//! JSON is emitted by hand: the linter is std-only by policy, and the
//! schema is flat enough that an escaping function and string pushes are
//! clearer than pulling the serde shims into the checker that audits
//! them.

use crate::rules::Finding;

/// The result of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace root the paths are relative to.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, allowed or not, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Total allow markers found in the tree.
    pub allow_markers: usize,
    /// The pinned marker budget, if a budget file was read.
    pub budget: Option<usize>,
}

impl Report {
    /// Findings that fail the build (not suppressed by a marker).
    #[must_use]
    pub fn violations(&self) -> usize {
        self.findings.iter().filter(|f| !f.allowed).count()
    }

    /// `true` when the tree is clean: no live findings and the marker
    /// count is within budget.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations() == 0 && !self.over_budget()
    }

    /// `true` when the marker count exceeds the pinned budget.
    #[must_use]
    pub fn over_budget(&self) -> bool {
        self.budget.is_some_and(|b| self.allow_markers > b)
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn human(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            if f.allowed {
                continue;
            }
            s.push_str(&format!(
                "{}:{}: [{}] ({}) {}\n",
                f.file, f.line, f.rule, f.zone, f.message
            ));
        }
        let allowed = self.findings.len() - self.violations();
        s.push_str(&format!(
            "abs-lint: {} files, {} violation(s), {} allowed exception(s)",
            self.files_scanned,
            self.violations(),
            allowed,
        ));
        match self.budget {
            Some(b) => s.push_str(&format!(
                ", {} marker(s) against a budget of {}{}\n",
                self.allow_markers,
                b,
                if self.over_budget() {
                    " — OVER BUDGET (raise .abs-lint-allow-budget in the same change, with review)"
                } else {
                    ""
                }
            )),
            None => s.push_str(&format!(
                ", {} marker(s) (no budget file)\n",
                self.allow_markers
            )),
        }
        s
    }

    /// Renders the report as one JSON object.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"root\":{},", json_str(&self.root)));
        s.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        s.push_str(&format!("\"allow_markers\":{},", self.allow_markers));
        match self.budget {
            Some(b) => s.push_str(&format!("\"allow_budget\":{b},")),
            None => s.push_str("\"allow_budget\":null,"),
        }
        s.push_str(&format!("\"violations\":{},", self.violations()));
        s.push_str(&format!("\"ok\":{},", self.ok()));
        s.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"rule\":{},\"zone\":{},\"allowed\":{},\"message\":{}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(f.zone),
                f.allowed,
                json_str(&f.message)
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Escapes a string as a JSON string literal.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    #[test]
    fn budget_gate() {
        let mut r = Report {
            allow_markers: 5,
            budget: Some(4),
            ..Report::default()
        };
        assert!(r.over_budget());
        assert!(!r.ok());
        r.budget = Some(5);
        assert!(r.ok());
        r.budget = None;
        assert!(r.ok());
        assert!(r.json().contains("\"allow_budget\":null"));
    }
}
