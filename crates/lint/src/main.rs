//! `abs-lint` binary: lint the workspace and/or run the buffer-protocol
//! model check.
//!
//! ```text
//! abs-lint [--root DIR] [--format human|json|sarif] [--no-budget]
//!          [--changed-since REV] [--no-baseline] [--update-baseline]
//!          [--model-check [DEPTH]] [--lint-and-model-check [DEPTH]]
//!          [--pairing-table md|json] [--zones] [--list-rules]
//! ```
//!
//! * `--format sarif` emits a SARIF v2.1.0 log for code-scanning UIs.
//! * `--changed-since REV` keeps only findings on lines changed since
//!   `REV` (via `git diff --unified=0`) — the PR-review mode.
//! * A committed `.abs-lint.baseline` at the root downgrades known
//!   findings to non-gating; `--update-baseline` rewrites it from the
//!   current tree and `--no-baseline` ignores it.
//! * `--pairing-table md|json` prints the cross-checked atomic pairing
//!   table (the DESIGN.md §9.5 appendix is generated from `md`).
//! * `--zones` prints the transitive device-zone inference table.
//!
//! Exit codes: 0 clean, 1 violations or model-check failure, 2 usage or
//! I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abs_lint::{
    build_graph, lint_graph, model, pairing, read_budget, report::json_str, rules::RULES, sarif,
    zones,
};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    root: PathBuf,
    format: Format,
    budget: bool,
    baseline: bool,
    update_baseline: bool,
    changed_since: Option<String>,
    model_check: Option<usize>,
    list_rules: bool,
    pairing_table: Option<&'static str>,
    zones_report: bool,
    lint: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        format: Format::Human,
        budget: true,
        baseline: true,
        update_baseline: false,
        changed_since: None,
        model_check: None,
        list_rules: false,
        pairing_table: None,
        zones_report: false,
        lint: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--root" => {
                i += 1;
                let v = argv.get(i).ok_or("--root needs a value")?;
                args.root = PathBuf::from(v);
            }
            "--format" => {
                i += 1;
                match argv.get(i).map(String::as_str) {
                    Some("json") => args.format = Format::Json,
                    Some("human") => args.format = Format::Human,
                    Some("sarif") => args.format = Format::Sarif,
                    other => {
                        return Err(format!("--format must be human|json|sarif, got {other:?}"))
                    }
                }
            }
            "--no-budget" => args.budget = false,
            "--no-baseline" => args.baseline = false,
            "--update-baseline" => args.update_baseline = true,
            "--changed-since" => {
                i += 1;
                let v = argv.get(i).ok_or("--changed-since needs a git rev")?;
                args.changed_since = Some(v.clone());
            }
            "--list-rules" => {
                args.list_rules = true;
                args.lint = false;
            }
            "--pairing-table" => {
                i += 1;
                match argv.get(i).map(String::as_str) {
                    Some("md") => args.pairing_table = Some("md"),
                    Some("json") => args.pairing_table = Some("json"),
                    other => return Err(format!("--pairing-table must be md|json, got {other:?}")),
                }
                args.lint = false;
            }
            "--zones" => {
                args.zones_report = true;
                args.lint = false;
            }
            "--model-check" => {
                // Optional depth operand.
                let depth = argv
                    .get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .inspect(|_| i += 1)
                    .unwrap_or(8);
                args.model_check = Some(depth);
                args.lint = false;
            }
            "--lint-and-model-check" => {
                let depth = argv
                    .get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .inspect(|_| i += 1)
                    .unwrap_or(8);
                args.model_check = Some(depth);
                args.lint = true;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("abs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (id, desc) in RULES {
            println!("{id:28} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let mut failed = false;

    if args.lint || args.pairing_table.is_some() || args.zones_report {
        let graph = match build_graph(&args.root) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("abs-lint: {e}");
                return ExitCode::from(2);
            }
        };

        if let Some(fmt) = args.pairing_table {
            let table = pairing::build_table(&graph.files);
            if fmt == "md" {
                print!("{}", pairing::to_markdown(&table));
            } else {
                println!("{}", pairing::to_json(&table));
            }
            let dangling = pairing::check_table(&table);
            for f in &dangling {
                eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            }
            return if dangling.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }

        if args.zones_report {
            let (_, inferred) = zones::propagate(&graph);
            for z in &inferred {
                println!(
                    "{}:{}: {} device-inferred via {}",
                    z.file, z.line, z.name, z.chain
                );
            }
            println!("abs-lint: {} device-inferred function(s)", inferred.len());
            return ExitCode::SUCCESS;
        }

        let budget = if args.budget {
            match read_budget(&args.root) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("abs-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            None
        };
        let mut report = lint_graph(&graph, &args.root, budget);

        // Diff-aware mode: keep only findings on changed lines.
        if let Some(rev) = &args.changed_since {
            match sarif::changed_lines(&args.root, rev) {
                Ok(changed) => {
                    report.findings =
                        sarif::filter_changed(std::mem::take(&mut report.findings), &changed);
                }
                Err(e) => {
                    eprintln!("abs-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        }

        let baseline_path = args.root.join(sarif::BASELINE_FILE);
        if args.update_baseline {
            let content = sarif::write_baseline(&report.findings);
            if let Err(e) = std::fs::write(&baseline_path, content) {
                eprintln!("abs-lint: cannot write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            println!("abs-lint: baseline written to {}", baseline_path.display());
            return ExitCode::SUCCESS;
        }
        if args.baseline {
            if let Ok(content) = std::fs::read_to_string(&baseline_path) {
                let n = sarif::apply_baseline(&mut report.findings, &content);
                if n > 0 && args.format == Format::Human {
                    eprintln!(
                        "abs-lint: {n} finding(s) suppressed by {}",
                        sarif::BASELINE_FILE
                    );
                }
            }
        }

        match args.format {
            Format::Json => println!("{}", report.json()),
            Format::Sarif => println!("{}", sarif::to_sarif(&report)),
            Format::Human => print!("{}", report.human()),
        }
        failed |= !report.ok();
    }

    if let Some(depth) = args.model_check {
        match model::run_model_check(depth) {
            Ok(runs) => {
                if args.format == Format::Json {
                    let mut s = String::from("{\"model_check\":{\"depth\":");
                    s.push_str(&depth.to_string());
                    s.push_str(",\"ok\":true,\"configs\":[");
                    for (i, (name, st)) in runs.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(&format!(
                            "{{\"name\":{},\"schedules\":{},\"states\":{},\"evictions_seen\":{},\"discards_seen\":{},\"rejections_seen\":{},\"target_drops_seen\":{}}}",
                            json_str(name),
                            st.schedules,
                            st.states,
                            st.evictions_seen,
                            st.discards_seen,
                            st.rejections_seen,
                            st.target_drops_seen
                        ));
                    }
                    s.push_str("]}}");
                    println!("{s}");
                } else {
                    for (name, st) in &runs {
                        println!(
                            "model-check [{name}]: {} schedules, {} states checked; coverage: {} evictions, {} discards, {} rejections, {} target drops",
                            st.schedules,
                            st.states,
                            st.evictions_seen,
                            st.discards_seen,
                            st.rejections_seen,
                            st.target_drops_seen
                        );
                    }
                    println!(
                        "model-check: counter monotone + exact accepted-record accounting hold on all enumerated schedules (depth {depth})"
                    );
                }
            }
            Err(e) => {
                eprintln!("abs-lint: model-check FAILED: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
