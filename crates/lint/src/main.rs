//! `abs-lint` binary: lint the workspace and/or run the buffer-protocol
//! model check.
//!
//! ```text
//! abs-lint [--root DIR] [--format human|json] [--no-budget]
//!          [--model-check [DEPTH]] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 violations or model-check failure, 2 usage or
//! I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abs_lint::{lint_tree, model, read_budget, report::json_str, rules::RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    budget: bool,
    model_check: Option<usize>,
    list_rules: bool,
    lint: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        budget: true,
        model_check: None,
        list_rules: false,
        lint: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--root" => {
                i += 1;
                let v = argv.get(i).ok_or("--root needs a value")?;
                args.root = PathBuf::from(v);
            }
            "--format" => {
                i += 1;
                match argv.get(i).map(String::as_str) {
                    Some("json") => args.json = true,
                    Some("human") => args.json = false,
                    other => return Err(format!("--format must be human|json, got {other:?}")),
                }
            }
            "--no-budget" => args.budget = false,
            "--list-rules" => {
                args.list_rules = true;
                args.lint = false;
            }
            "--model-check" => {
                // Optional depth operand.
                let depth = argv
                    .get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .inspect(|_| i += 1)
                    .unwrap_or(8);
                args.model_check = Some(depth);
                args.lint = false;
            }
            "--lint-and-model-check" => {
                let depth = argv
                    .get(i + 1)
                    .and_then(|v| v.parse::<usize>().ok())
                    .inspect(|_| i += 1)
                    .unwrap_or(8);
                args.model_check = Some(depth);
                args.lint = true;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("abs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (id, desc) in RULES {
            println!("{id:28} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let mut failed = false;

    if args.lint {
        let budget = if args.budget {
            match read_budget(&args.root) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("abs-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            None
        };
        let report = match lint_tree(&args.root, budget) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("abs-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if args.json {
            println!("{}", report.json());
        } else {
            print!("{}", report.human());
        }
        failed |= !report.ok();
    }

    if let Some(depth) = args.model_check {
        match model::run_model_check(depth) {
            Ok(runs) => {
                if args.json {
                    let mut s = String::from("{\"model_check\":{\"depth\":");
                    s.push_str(&depth.to_string());
                    s.push_str(",\"ok\":true,\"configs\":[");
                    for (i, (name, st)) in runs.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(&format!(
                            "{{\"name\":{},\"schedules\":{},\"states\":{},\"evictions_seen\":{},\"discards_seen\":{},\"rejections_seen\":{},\"target_drops_seen\":{}}}",
                            json_str(name),
                            st.schedules,
                            st.states,
                            st.evictions_seen,
                            st.discards_seen,
                            st.rejections_seen,
                            st.target_drops_seen
                        ));
                    }
                    s.push_str("]}}");
                    println!("{s}");
                } else {
                    for (name, st) in &runs {
                        println!(
                            "model-check [{name}]: {} schedules, {} states checked; coverage: {} evictions, {} discards, {} rejections, {} target drops",
                            st.schedules,
                            st.states,
                            st.evictions_seen,
                            st.discards_seen,
                            st.rejections_seen,
                            st.target_drops_seen
                        );
                    }
                    println!(
                        "model-check: counter monotone + exact accepted-record accounting hold on all enumerated schedules (depth {depth})"
                    );
                }
            }
            Err(e) => {
                eprintln!("abs-lint: model-check FAILED: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
