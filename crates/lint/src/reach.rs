//! Panic- and allocation-reachability from the per-flip hot path.
//!
//! The per-file rules only see panics and allocations written directly
//! inside a hot function's body; a hot function can launder either
//! through a helper — in the same file or across crates — and stay
//! invisible. This pass walks the call graph instead:
//!
//! * **`hot-panic-reachable`** — from the [`HOT_FNS`] entry points and
//!   every function of the vgpu block driver (`vgpu/src/block.rs`),
//!   any transitively reachable `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` macro, any `unwrap()`/`expect()` inside
//!   harness-zone code (which the per-file `no-unwrap` rule exempts),
//!   and any unaudited panicking `[]` index in a device-zone file
//!   outside the per-file audit set is flagged, with the call chain
//!   that reaches it. An `// invariant:` comment at the site (the same
//!   escape the per-file indexing audit uses) marks it as reasoned.
//! * **`hot-alloc-reachable`** — from the [`HOT_FNS`] entry points
//!   only (the block driver allocates legitimately at init), any
//!   reachable function body containing an allocation marker is
//!   flagged unless the function is itself a named hot function in a
//!   device file (already covered per-file by `device-no-alloc`).
//!
//! Both walks honour the `// zone: host-only --` edge cuts described in
//! [`crate::callgraph`].

use crate::callgraph::{Graph, Provenance};
use crate::lexer::TokKind;
use crate::parse::Recv;
use crate::rules::{Finding, ALLOC_IDENTS};
use crate::zones::{indexing_audited, Zone, HOT_FNS};
use std::collections::HashMap;

/// Comment window for `invariant:` audits, matching the per-file rules.
const COMMENT_WINDOW: u32 = 2;

/// Macro names that unconditionally panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Node indices of the panic-reachability entry points: hot functions
/// in device files plus the whole block driver.
fn panic_entries(graph: &Graph) -> Vec<usize> {
    (0..graph.nodes.len())
        .filter(|&n| {
            let file = &graph.files[graph.nodes[n].file];
            let item = graph.item(n);
            (file.zone == Zone::Device && HOT_FNS.contains(&item.name.as_str()))
                || file.rel_path == "crates/vgpu/src/block.rs"
        })
        .collect()
}

/// Node indices of the allocation-reachability entry points: hot
/// functions in device files.
fn alloc_entries(graph: &Graph) -> Vec<usize> {
    (0..graph.nodes.len())
        .filter(|&n| {
            graph.files[graph.nodes[n].file].zone == Zone::Device
                && HOT_FNS.contains(&graph.item(n).name.as_str())
        })
        .collect()
}

fn audited(graph: &Graph, node: usize, line: u32) -> bool {
    let file = &graph.files[graph.nodes[node].file];
    file.lexed
        .comment_near(line.saturating_sub(COMMENT_WINDOW), line, "invariant")
}

fn sorted_reached(reach: &HashMap<usize, Provenance>) -> Vec<usize> {
    let mut v: Vec<usize> = reach.keys().copied().collect();
    v.sort_unstable();
    v
}

/// Runs the panic-reachability walk, returning findings with chains.
#[must_use]
pub fn check_panic_reachability(graph: &Graph) -> Vec<Finding> {
    let reach = graph.reachable(&panic_entries(graph));
    let mut findings = Vec::new();
    for n in sorted_reached(&reach) {
        let file = &graph.files[graph.nodes[n].file];
        let item = graph.item(n);
        let chain = graph.chain(&reach, n);
        // Unconditional panic macros, anywhere reached.
        for c in &item.calls {
            if c.recv == Recv::Macro
                && PANIC_MACROS.contains(&c.name.as_str())
                && !audited(graph, n, c.line)
            {
                findings.push(Finding {
                    file: file.rel_path.clone(),
                    line: c.line,
                    rule: "hot-panic-reachable",
                    zone: file.zone.label(),
                    message: format!(
                        "`{}!` reachable from the hot path via {} — guard it or state the \
                         `// invariant:` that makes it unreachable",
                        c.name, chain
                    ),
                    allowed: false,
                });
            }
            // Harness-zone unwrap/expect: exempt from the per-file
            // `no-unwrap` rule, but not from the hot path.
            if file.zone == Zone::Harness
                && matches!(c.recv, Recv::Var | Recv::SelfRecv)
                && (c.name == "unwrap" || c.name == "expect")
                && !audited(graph, n, c.line)
            {
                findings.push(Finding {
                    file: file.rel_path.clone(),
                    line: c.line,
                    rule: "hot-panic-reachable",
                    zone: file.zone.label(),
                    message: format!(
                        "harness `.{}()` reachable from the hot path via {}",
                        c.name, chain
                    ),
                    allowed: false,
                });
            }
        }
        // Unaudited indexing in device files outside the per-file audit
        // set (tracker/local/sparse carry their own rule).
        if file.zone == Zone::Device && !indexing_audited(&file.rel_path) {
            let mut lines: Vec<u32> = item.index_lines.clone();
            lines.sort_unstable();
            lines.dedup();
            for line in lines {
                if !audited(graph, n, line) {
                    findings.push(Finding {
                        file: file.rel_path.clone(),
                        line,
                        rule: "hot-panic-reachable",
                        zone: file.zone.label(),
                        message: format!(
                            "panicking [] indexing reachable from the hot path via {} without a \
                             neighbouring `invariant:` comment",
                            chain
                        ),
                        allowed: false,
                    });
                }
            }
        }
    }
    findings
}

/// Runs the allocation-reachability walk, returning findings with
/// chains.
#[must_use]
pub fn check_alloc_reachability(graph: &Graph) -> Vec<Finding> {
    let reach = graph.reachable(&alloc_entries(graph));
    let mut findings = Vec::new();
    for n in sorted_reached(&reach) {
        let file = &graph.files[graph.nodes[n].file];
        let item = graph.item(n);
        // Named hot fns in device files are already policed per-file by
        // `device-no-alloc`; this pass covers the helpers they call.
        if file.zone == Zone::Device && HOT_FNS.contains(&item.name.as_str()) {
            continue;
        }
        let Some((b0, b1)) = item.body else { continue };
        let chain = graph.chain(&reach, n);
        let toks = &file.lexed.toks;
        for k in b0..=b1 {
            let t = &toks[k];
            if t.kind != TokKind::Ident || !ALLOC_IDENTS.contains(&t.text.as_str()) {
                continue;
            }
            // Same macro/path discrimination as `device-no-alloc`.
            let is_macro = toks.get(k + 1).is_some_and(|n| n.is_punct('!'));
            let flagged = match t.text.as_str() {
                "vec" | "format" => is_macro,
                _ => true,
            };
            if flagged && !audited(graph, n, t.line) {
                findings.push(Finding {
                    file: file.rel_path.clone(),
                    line: t.line,
                    rule: "hot-alloc-reachable",
                    zone: file.zone.label(),
                    message: format!(
                        "possible heap allocation (`{}`) reachable from the per-flip path via {}",
                        t.text, chain
                    ),
                    allowed: false,
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::GraphFile;
    use crate::lexer::lex;
    use crate::parse::parse;
    use crate::zones::classify;

    fn build(files: &[(&str, &str)]) -> Graph {
        let gfs = files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let parsed = parse(&lexed);
                GraphFile::new(path.to_string(), classify(path), lexed, parsed)
            })
            .collect();
        Graph::build(gfs)
    }

    #[test]
    fn transitive_panic_is_flagged_with_chain() {
        let g = build(&[
            (
                "crates/search/src/tracker.rs",
                "fn flip(&mut self) { helper(); }\nfn helper() { deep(); }\n\
                 fn deep() { panic!(\"laundered\"); }",
            ),
            ("crates/qubo/src/matrix.rs", "fn unrelated() { panic!(); }"),
        ]);
        let fs = check_panic_reachability(&g);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].file, "crates/search/src/tracker.rs");
        assert_eq!(fs[0].line, 3);
        assert!(fs[0].message.contains("flip"), "{}", fs[0].message);
        assert!(fs[0].message.contains("deep"), "{}", fs[0].message);
    }

    #[test]
    fn invariant_comment_audits_a_reached_panic() {
        let g = build(&[(
            "crates/search/src/tracker.rs",
            "fn flip(&mut self) { helper(); }\n\
             fn helper() {\n  // invariant: caller pinned n >= 1\n  panic!(\"guarded\");\n}",
        )]);
        assert!(check_panic_reachability(&g).is_empty());
    }

    #[test]
    fn cross_crate_alloc_laundering_is_flagged() {
        let g = build(&[
            (
                "crates/search/src/tracker.rs",
                "impl T { fn flip(&mut self) { scratch(); } }",
            ),
            (
                "crates/qubo/src/bitvec.rs",
                "fn scratch() { let v = vec![0u8; 64]; }",
            ),
        ]);
        let fs = check_alloc_reachability(&g);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].file, "crates/qubo/src/bitvec.rs");
        assert!(fs[0].message.contains("flip"), "{}", fs[0].message);
    }

    #[test]
    fn block_driver_is_a_panic_entry_but_not_an_alloc_entry() {
        let g = build(&[(
            "crates/vgpu/src/block.rs",
            "fn run_block() { let v = Vec::new(); boom(); }\nfn boom() { panic!(); }",
        )]);
        // The init-path Vec in the driver is fine; the panic is not.
        assert!(check_alloc_reachability(&g).is_empty());
        let fs = check_panic_reachability(&g);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].file, "crates/vgpu/src/block.rs");
    }

    #[test]
    fn device_indexing_outside_the_audit_set_needs_invariants() {
        let g = build(&[(
            "crates/search/src/policy.rs",
            "fn select(d: &[i64], k: usize) -> i64 { d[k] }\n\
             fn cold(d: &[i64], k: usize) -> i64 { d[k] }",
        )]);
        let fs = check_panic_reachability(&g);
        // `select` is a hot entry; `cold` is not reached from it.
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 1);
    }
}
