//! A minimal Rust lexer — just enough fidelity for invariant linting.
//!
//! The linter must not be a regex-over-lines tool: `f64` inside a string
//! literal, `unwrap()` inside a doc comment, and `rand` inside a
//! `#[cfg(test)]` module are all fine, and only a tokenizer that
//! understands comments, strings (including raw strings), char literals
//! vs. lifetimes, and float literals can tell the difference. This lexer
//! produces a flat token stream plus the comment list (comments carry the
//! allow-markers and `// ordering:` justifications the rules look for).
//!
//! It does not aim to be a full Rust lexer: tokens the rules never
//! inspect (operators, numeric suffixes) are kept as single-character
//! punctuation or folded into the literal text.

/// The kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Integer literal (any base, any suffix except `f32`/`f64`).
    Int,
    /// Floating-point literal, including suffixed forms like `1f64`.
    Float,
    /// String, raw-string, byte-string, or char literal.
    Literal,
    /// Any other single character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Source text (single char for punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` if this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` if this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment with the line span it covers: a block comment, or a
/// maximal run of consecutive `//` lines merged into one entry.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (equals `line` for a single `//` comment).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` sigils; merged `//`
    /// runs are newline-joined.
    pub text: String,
}

/// Lexer output: the token stream and every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// `true` if any comment overlapping lines `[from, to]` contains
    /// `needle` (used for `// ordering:` and `// invariant:` lookups).
    #[must_use]
    pub fn comment_near(&self, from: u32, to: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line >= from && c.line <= to && c.text.contains(needle))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Never fails: malformed input degrades to punctuation
/// tokens, which at worst produces a spurious finding on a file that
/// would not compile anyway.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            // Runs of consecutive `//` lines merge into one comment
            // block, so a multi-line justification whose keyword sits on
            // the first line still counts as "near" the code below it.
            if let Some(prev) = out.comments.last_mut() {
                if prev.end_line + 1 == line && prev.text.starts_with("//") {
                    prev.end_line = line;
                    prev.text.push('\n');
                    prev.text.push_str(&text);
                    continue;
                }
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text,
            });
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let (start, start_line) = (i, line);
            i += 2;
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: b[start..i.min(n)].iter().collect(),
            });
            continue;
        }
        // Raw / byte strings: r"...", r#"..."#, br"...", b"...".
        if (c == 'r' || c == 'b') && raw_or_byte_string_start(&b, i) {
            let start = i;
            let start_line = line;
            if b[i] == 'b' {
                i += 1;
            }
            let raw = i < n && b[i] == 'r';
            if raw {
                i += 1;
            }
            let mut hashes = 0usize;
            while raw && i < n && b[i] == '#' {
                hashes += 1;
                i += 1;
            }
            // Opening quote.
            i += 1;
            if raw {
                // Scan for `"` followed by `hashes` hashes; no escapes.
                'raw: while i < n {
                    if b[i] == '\n' {
                        line += 1;
                    } else if b[i] == '"' {
                        let mut j = i + 1;
                        let mut k = 0;
                        while k < hashes && j < n && b[j] == '#' {
                            j += 1;
                            k += 1;
                        }
                        if k == hashes {
                            i = j;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
            } else {
                while i < n && b[i] != '"' {
                    if b[i] == '\\' {
                        i += 1;
                    } else if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1; // closing quote
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n && b[i] != '"' {
                if b[i] == '\\' {
                    i += 1;
                } else if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 1;
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if char_literal_start(&b, i) {
                let start = i;
                i += 1;
                if i < n && b[i] == '\\' {
                    i += 2;
                } else {
                    i += 1;
                }
                while i < n && b[i] != '\'' {
                    // Only reachable on malformed input; resync at quote.
                    i += 1;
                }
                i += 1;
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: b[start..i.min(n)].iter().collect(),
                    line,
                });
            } else {
                let start = i;
                i += 1;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut kind = TokKind::Int;
            if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // Fractional part: `.` followed by a digit, or a
                // trailing `1.` (not `1..` and not `1.method()`).
                if i < n && b[i] == '.' {
                    let next = b.get(i + 1).copied();
                    let frac = match next {
                        Some(d) if d.is_ascii_digit() => true,
                        Some(d) if is_ident_start(d) || d == '.' => false,
                        _ => true,
                    };
                    if frac {
                        kind = TokKind::Float;
                        i += 1;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Exponent.
                if i < n
                    && matches!(b[i], 'e' | 'E')
                    && b.get(i + 1)
                        .is_some_and(|&d| d.is_ascii_digit() || d == '+' || d == '-')
                {
                    kind = TokKind::Float;
                    i += 1;
                    if matches!(b.get(i), Some('+') | Some('-')) {
                        i += 1;
                    }
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                }
                // Suffix: `1f64` is a float; `1u32` stays Int.
                if i < n && is_ident_start(b[i]) {
                    let sfx_start = i;
                    while i < n && is_ident_cont(b[i]) {
                        i += 1;
                    }
                    let sfx: String = b[sfx_start..i].iter().collect();
                    if sfx == "f32" || sfx == "f64" {
                        kind = TokKind::Float;
                    }
                }
            }
            out.toks.push(Tok {
                kind,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Everything else: single-char punctuation.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Does position `i` (at `r` or `b`) start a raw or byte string?
fn raw_or_byte_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        // b'x' byte char: handled by the char-literal path via Ident 'b'.
        if b.get(j) == Some(&'\'') {
            return false;
        }
        if b.get(j) == Some(&'"') {
            return true;
        }
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
        return b.get(j) == Some(&'"');
    }
    false
}

/// Does the `'` at position `i` start a char literal (vs a lifetime)?
fn char_literal_start(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some('\\') => true,
        Some(&c) if is_ident_cont(c) => b.get(i + 2) == Some(&'\''),
        Some(_) => true, // `' '`, `'('`, ...
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "f64 unwrap() rand"; // f64 in comment
            /* Instant::now() in /* nested */ block */
            let b = r#"SystemTime "quoted" inside raw"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"f64".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn float_literal_forms() {
        for (src, want) in [
            ("1.5", TokKind::Float),
            ("1.", TokKind::Float),
            ("1e9", TokKind::Float),
            ("2.5e-3", TokKind::Float),
            ("1f64", TokKind::Float),
            ("3f32", TokKind::Float),
            ("1", TokKind::Int),
            ("1u64", TokKind::Int),
            ("0xff", TokKind::Int),
            ("1_000", TokKind::Int),
        ] {
            let l = lex(src);
            assert_eq!(l.toks[0].kind, want, "{src}");
        }
        // Method call on an int and a range are not floats.
        let l = lex("1.max(2); 0..8");
        assert_eq!(l.toks[0].kind, TokKind::Int);
        assert!(l.toks.iter().all(|t| t.kind != TokKind::Float));
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let l = lex(src);
        let b = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn comment_near_window() {
        let src = "// ordering: pairs with counter()\nx.store(1, Release);\ny.store(2, Release);\n";
        let l = lex(src);
        assert!(l.comment_near(1, 2, "ordering:"));
        assert!(!l.comment_near(3, 3, "ordering:"));
    }
}
