//! `abs-lint` — the ABS workspace invariant checker.
//!
//! The paper's correctness story rests on structural invariants the
//! compiler cannot see: the device kernel is deterministic (no RNG, no
//! wall clock, no floats — the window length ℓ is the only
//! "temperature", Fig. 2), the host GA never computes energy (§3), and
//! host and device communicate only through `GlobalMem`'s
//! atomic-counter protocol (Fig. 5). This crate enforces those
//! invariants mechanically, on every push:
//!
//! * [`lexer`] — a small std-only Rust lexer (tokens + comments), so the
//!   rules see code, not lines.
//! * [`zones`] — the device / host-ga / host / neutral / harness zone
//!   map, by path.
//! * [`rules`] — deny-by-default diagnostics with inline
//!   `// abs-lint: allow(<rule>) -- <reason>` exceptions, counted
//!   against a pinned budget.
//! * [`model`] — an exhaustive interleaving model check of the
//!   `GlobalMem` counter/overflow/eviction protocol.
//! * [`report`] — human and JSON rendering.
//!
//! See `DESIGN.md` §9 for the rule → paper-clause mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod zones;

use report::Report;
use rules::{parse_markers, FileCtx};
use std::fs;
use std::path::{Path, PathBuf};

/// Name of the allow-marker budget file at the workspace root.
pub const BUDGET_FILE: &str = ".abs-lint-allow-budget";

/// Collects every `crates/*/src/**/*.rs` file under `root`, sorted for
/// deterministic reports. Test directories (`tests/`, `benches/`,
/// `examples/`, `shims/`) are outside the scanned set by construction.
pub fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints the workspace at `root`. `budget` is the marker budget to
/// enforce (`None` disables the budget gate).
pub fn lint_tree(root: &Path, budget: Option<usize>) -> Result<Report, String> {
    let files = collect_sources(root)?;
    let mut report = Report {
        root: root.display().to_string(),
        files_scanned: files.len(),
        budget,
        ..Report::default()
    };
    for path in &files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let lexed = lexer::lex(&src);
        report.allow_markers += parse_markers(&lexed).len();
        let ctx = FileCtx {
            rel_path: &rel,
            zone: zones::classify(&rel),
            lexed: &lexed,
        };
        for mut f in rules::check_file(&ctx) {
            f.file = rel.clone();
            report.findings.push(f);
        }
    }
    if report.over_budget() {
        report.findings.push(rules::Finding {
            file: BUDGET_FILE.to_string(),
            line: 1,
            rule: "allow-budget",
            zone: "neutral",
            message: format!(
                "{} allow markers in tree, budget is {} — raise the budget file in the same reviewed change",
                report.allow_markers,
                budget.unwrap_or(0)
            ),
            allowed: false,
        });
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Reads the budget file under `root`, if present.
pub fn read_budget(root: &Path) -> Result<Option<usize>, String> {
    let p = root.join(BUDGET_FILE);
    match fs::read_to_string(&p) {
        Ok(s) => s
            .split_whitespace()
            .next()
            .unwrap_or("")
            .parse::<usize>()
            .map(Some)
            .map_err(|e| format!("{}: not an integer: {e}", p.display())),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_file_parsing() {
        let dir = std::env::temp_dir().join(format!("abs-lint-budget-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_budget(&dir).unwrap(), None);
        fs::write(dir.join(BUDGET_FILE), "14\n").unwrap();
        assert_eq!(read_budget(&dir).unwrap(), Some(14));
        fs::write(dir.join(BUDGET_FILE), "not-a-number").unwrap();
        assert!(read_budget(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
