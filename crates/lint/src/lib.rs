//! `abs-lint` — the ABS workspace invariant checker.
//!
//! The paper's correctness story rests on structural invariants the
//! compiler cannot see: the device kernel is deterministic (no RNG, no
//! wall clock, no floats — the window length ℓ is the only
//! "temperature", Fig. 2), the host GA never computes energy (§3), and
//! host and device communicate only through `GlobalMem`'s
//! atomic-counter protocol (Fig. 5). This crate enforces those
//! invariants mechanically, on every push:
//!
//! * [`lexer`] — a small std-only Rust lexer (tokens + comments), so the
//!   rules see code, not lines.
//! * [`parse`] — item-level parsing: functions, impl blocks, call
//!   sites, with exact `#[cfg(test)]` gating semantics.
//! * [`callgraph`] — the conservative whole-workspace call graph the
//!   transitive passes walk.
//! * [`zones`] — the device / host-ga / host / neutral / harness zone
//!   map, by path, plus transitive zone propagation over the graph.
//! * [`rules`] — deny-by-default per-file diagnostics with inline
//!   `// abs-lint: allow(<rule>) -- <reason>` exceptions, counted
//!   against a pinned budget.
//! * [`pairing`] — the cross-checked Release/Acquire pairing table.
//! * [`reach`] — panic- and allocation-reachability from the hot path.
//! * [`model`] — an exhaustive interleaving model check of the
//!   `GlobalMem` counter/overflow/eviction protocol.
//! * [`report`] — human and JSON rendering.
//! * [`sarif`] — SARIF v2.1.0 rendering, the diff-aware `--changed-since`
//!   filter, and the committed-baseline gate.
//!
//! See `DESIGN.md` §9 for the rule → paper-clause mapping and §9.5 for
//! the generated atomic-pairing appendix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod model;
pub mod pairing;
pub mod parse;
pub mod reach;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod zones;

use callgraph::{Graph, GraphFile};
use report::Report;
use rules::{apply_markers, parse_markers, FileCtx};
use std::fs;
use std::path::{Path, PathBuf};

/// Name of the allow-marker budget file at the workspace root.
pub const BUDGET_FILE: &str = ".abs-lint-allow-budget";

/// Collects every `crates/*/src/**/*.rs` file under `root`, sorted for
/// deterministic reports. Test directories (`tests/`, `benches/`,
/// `examples/`, `shims/`) are outside the scanned set by construction.
pub fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lexes, parses, and classifies every workspace source file, building
/// the whole-program call graph the transitive passes walk.
pub fn build_graph(root: &Path) -> Result<Graph, String> {
    let files = collect_sources(root)?;
    let mut gfs = Vec::with_capacity(files.len());
    for path in &files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let lexed = lexer::lex(&src);
        let parsed = parse::parse(&lexed);
        let zone = zones::classify(&rel);
        gfs.push(GraphFile::new(rel, zone, lexed, parsed));
    }
    Ok(Graph::build(gfs))
}

/// Lints the workspace at `root`: the per-file rule passes plus the
/// whole-program passes (zone propagation, atomic pairing, panic/alloc
/// reachability). `budget` is the marker budget to enforce (`None`
/// disables the budget gate).
pub fn lint_tree(root: &Path, budget: Option<usize>) -> Result<Report, String> {
    let graph = build_graph(root)?;
    Ok(lint_graph(&graph, root, budget))
}

/// Lints a pre-built graph (so callers needing the graph afterwards —
/// the `--zones` and `--pairing-table` reports — parse the tree once).
#[must_use]
pub fn lint_graph(graph: &Graph, root: &Path, budget: Option<usize>) -> Report {
    let mut report = Report {
        root: root.display().to_string(),
        files_scanned: graph.files.len(),
        budget,
        ..Report::default()
    };

    // Per-file passes (markers applied inside check_file).
    let mut markers_by_file = std::collections::HashMap::new();
    for gf in &graph.files {
        let markers = parse_markers(&gf.lexed);
        report.allow_markers += markers.len();
        markers_by_file.insert(gf.rel_path.as_str(), markers);
        let ctx = FileCtx {
            rel_path: &gf.rel_path,
            zone: gf.zone,
            lexed: &gf.lexed,
        };
        for mut f in rules::check_file(&ctx) {
            f.file = gf.rel_path.clone();
            report.findings.push(f);
        }
    }

    // Whole-program passes. Allow markers suppress these findings
    // exactly like per-file ones.
    let mut whole: Vec<rules::Finding> = Vec::new();
    let (prop, _inferred) = zones::propagate(graph);
    whole.extend(prop);
    whole.extend(pairing::check_table(&pairing::build_table(&graph.files)));
    whole.extend(reach::check_panic_reachability(graph));
    whole.extend(reach::check_alloc_reachability(graph));
    for f in &mut whole {
        if let Some(markers) = markers_by_file.get(f.file.as_str()) {
            apply_markers(std::slice::from_mut(f), markers);
        }
    }
    report.findings.extend(whole);

    if report.over_budget() {
        report.findings.push(rules::Finding {
            file: BUDGET_FILE.to_string(),
            line: 1,
            rule: "allow-budget",
            zone: "neutral",
            message: format!(
                "{} allow markers in tree, budget is {} — raise the budget file in the same reviewed change",
                report.allow_markers,
                budget.unwrap_or(0)
            ),
            allowed: false,
        });
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Reads the budget file under `root`, if present.
pub fn read_budget(root: &Path) -> Result<Option<usize>, String> {
    let p = root.join(BUDGET_FILE);
    match fs::read_to_string(&p) {
        Ok(s) => s
            .split_whitespace()
            .next()
            .unwrap_or("")
            .parse::<usize>()
            .map(Some)
            .map_err(|e| format!("{}: not an integer: {e}", p.display())),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_file_parsing() {
        let dir = std::env::temp_dir().join(format!("abs-lint-budget-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_budget(&dir).unwrap(), None);
        fs::write(dir.join(BUDGET_FILE), "14\n").unwrap();
        assert_eq!(read_budget(&dir).unwrap(), Some(14));
        fs::write(dir.join(BUDGET_FILE), "not-a-number").unwrap();
        assert!(read_budget(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
