//! SARIF v2.1.0 rendering, the diff-aware `--changed-since` filter,
//! and the committed-baseline gate.
//!
//! SARIF is the interchange format code-scanning UIs ingest; emitting
//! it lets CI annotate the exact offending lines on a pull request
//! instead of pointing reviewers at a build log. The JSON is
//! hand-rolled (the lint crate is deliberately dependency-free), using
//! the same escaper as the plain JSON report.
//!
//! Diff-aware mode shells out to `git diff --unified=0 <rev>` and keeps
//! only findings whose line falls inside a changed hunk — PR runs stay
//! quiet about pre-existing debt while push runs see everything. The
//! baseline file (`.abs-lint.baseline`) is the committed ledger of that
//! debt: one `rule<TAB>file<TAB>message` triple per line, compared
//! line-number-insensitively so unrelated edits do not churn it.

use crate::report::{json_str, Report};
use crate::rules::{Finding, RULES};
use std::collections::HashMap;
use std::path::Path;
use std::process::Command;

/// Renders a report as a SARIF v2.1.0 log with one run.
#[must_use]
pub fn to_sarif(report: &Report) -> String {
    let mut s = String::from(
        "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":\
         {\"driver\":{\"name\":\"abs-lint\",\"informationUri\":\
         \"https://example.invalid/abs-lint\",\"rules\":[",
    );
    for (i, (id, desc)) in RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            json_str(id),
            json_str(desc)
        ));
    }
    s.push_str("]}},\"results\":[");
    let active: Vec<&Finding> = report.findings.iter().filter(|f| !f.allowed).collect();
    for (i, f) in active.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            json_str(f.rule),
            json_str(&format!("[{}] {}", f.zone, f.message)),
            json_str(&f.file),
            f.line.max(1)
        ));
    }
    s.push_str("]}]}");
    s
}

/// Changed line ranges per workspace-relative file, from
/// `git diff --unified=0 <rev>`.
pub type ChangedLines = HashMap<String, Vec<(u32, u32)>>;

/// Runs git under `root` and parses the zero-context diff against
/// `rev` into per-file changed line ranges (new-side line numbers).
pub fn changed_lines(root: &Path, rev: &str) -> Result<ChangedLines, String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--unified=0", rev, "--", "crates"])
        .output()
        .map_err(|e| format!("cannot run git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --unified=0 {rev} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(parse_diff(&String::from_utf8_lossy(&out.stdout)))
}

/// Parses `+++ b/<path>` headers and `@@ -a[,b] +c[,d] @@` hunks.
#[must_use]
pub fn parse_diff(diff: &str) -> ChangedLines {
    let mut out: ChangedLines = HashMap::new();
    let mut file: Option<String> = None;
    for line in diff.lines() {
        if let Some(p) = line.strip_prefix("+++ b/") {
            file = Some(p.trim().to_string());
        } else if line.starts_with("+++ ") {
            file = None; // deleted file (`+++ /dev/null`)
        } else if let (Some(f), Some(rest)) = (&file, line.strip_prefix("@@ ")) {
            // New side: `+c` or `+c,d` before the closing `@@`.
            let Some(plus) = rest.find('+') else { continue };
            let new = rest[plus + 1..]
                .split_whitespace()
                .next()
                .unwrap_or_default();
            let mut parts = new.split(',');
            let start: u32 = parts.next().unwrap_or("0").parse().unwrap_or(0);
            let count: u32 = parts.next().map_or(1, |c| c.parse().unwrap_or(1));
            if count > 0 {
                out.entry(f.clone())
                    .or_default()
                    .push((start, start + count - 1));
            }
        }
    }
    out
}

/// Keeps only findings whose line falls inside a changed range (the
/// budget gate, keyed to the budget file, survives iff that file
/// changed).
#[must_use]
pub fn filter_changed(findings: Vec<Finding>, changed: &ChangedLines) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            changed
                .get(&f.file)
                .is_some_and(|ranges| ranges.iter().any(|&(a, b)| f.line >= a && f.line <= b))
        })
        .collect()
}

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = ".abs-lint.baseline";

/// One baseline entry key: line numbers are deliberately excluded so
/// unrelated edits above a baselined finding do not churn the file.
fn baseline_key(f: &Finding) -> String {
    format!("{}\t{}\t{}", f.rule, f.file, f.message)
}

/// Serializes the active findings as baseline content (sorted,
/// deduplicated, one entry per line).
#[must_use]
pub fn write_baseline(findings: &[Finding]) -> String {
    let mut keys: Vec<String> = findings
        .iter()
        .filter(|f| !f.allowed)
        .map(baseline_key)
        .collect();
    keys.sort();
    keys.dedup();
    let mut s = String::from(
        "# abs-lint baseline: known findings excluded from the gate.\n\
         # Regenerate with `abs-lint --update-baseline`; shrink only.\n",
    );
    for k in &keys {
        s.push_str(k);
        s.push('\n');
    }
    s
}

/// Marks findings present in the baseline as `allowed` (they report
/// but do not gate). Returns the number suppressed.
pub fn apply_baseline(findings: &mut [Finding], baseline: &str) -> usize {
    let entries: std::collections::HashSet<&str> = baseline
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut n = 0;
    for f in findings {
        if !f.allowed && entries.contains(baseline_key(f).as_str()) {
            f.allowed = true;
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, message: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            zone: "neutral",
            message: message.to_string(),
            allowed: false,
        }
    }

    #[test]
    fn sarif_names_every_rule_and_active_finding() {
        let mut report = Report::default();
        report.findings.push(finding(
            "no-unwrap",
            "crates/core/src/solver.rs",
            7,
            ".unwrap() outside tests",
        ));
        report.findings.push(Finding {
            allowed: true,
            ..finding("device-no-float", "crates/search/src/policy.rs", 9, "f64")
        });
        let s = to_sarif(&report);
        assert!(s.contains("\"version\":\"2.1.0\""));
        for (id, _) in RULES {
            assert!(s.contains(&format!("\"id\":\"{id}\"")), "missing rule {id}");
        }
        // Active finding present with its location; allowed one absent.
        assert!(s.contains("\"uri\":\"crates/core/src/solver.rs\""));
        assert!(s.contains("\"startLine\":7"));
        assert!(!s.contains("crates/search/src/policy.rs\""));
    }

    #[test]
    fn diff_parsing_handles_hunks_and_deletions() {
        let diff = "\
diff --git a/crates/a/src/lib.rs b/crates/a/src/lib.rs
--- a/crates/a/src/lib.rs
+++ b/crates/a/src/lib.rs
@@ -10,2 +12,3 @@ fn f() {
+x
@@ -30 +40 @@ fn g() {
+y
diff --git a/crates/b/src/old.rs b/crates/b/src/old.rs
--- a/crates/b/src/old.rs
+++ /dev/null
@@ -1,5 +0,0 @@
";
        let c = parse_diff(diff);
        assert_eq!(c["crates/a/src/lib.rs"], vec![(12, 14), (40, 40)]);
        assert!(!c.contains_key("crates/b/src/old.rs"));

        let fs = vec![
            finding("no-unwrap", "crates/a/src/lib.rs", 13, "inside hunk"),
            finding("no-unwrap", "crates/a/src/lib.rs", 20, "outside hunk"),
            finding("no-unwrap", "crates/c/src/lib.rs", 13, "untouched file"),
        ];
        let kept = filter_changed(fs, &c);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].message, "inside hunk");
    }

    #[test]
    fn baseline_round_trips_and_ignores_line_shifts() {
        let fs = vec![
            finding(
                "no-unwrap",
                "crates/a/src/lib.rs",
                7,
                ".unwrap() outside tests",
            ),
            Finding {
                allowed: true,
                ..finding("device-no-float", "crates/a/src/lib.rs", 9, "f64")
            },
        ];
        let content = write_baseline(&fs);
        assert!(content.contains("no-unwrap\tcrates/a/src/lib.rs\t.unwrap() outside tests"));
        assert!(
            !content.contains("device-no-float"),
            "allowed findings stay out"
        );

        // Same finding at a different line is still baselined...
        let mut shifted = vec![finding(
            "no-unwrap",
            "crates/a/src/lib.rs",
            99,
            ".unwrap() outside tests",
        )];
        assert_eq!(apply_baseline(&mut shifted, &content), 1);
        assert!(shifted[0].allowed);

        // ...a new finding is not.
        let mut fresh = vec![finding(
            "no-unwrap",
            "crates/a/src/lib.rs",
            3,
            "new message",
        )];
        assert_eq!(apply_baseline(&mut fresh, &content), 0);
        assert!(!fresh[0].allowed);
    }
}
