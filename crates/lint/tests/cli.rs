//! End-to-end tests of the `abs-lint` binary: exit codes, JSON output,
//! fixture trees with seeded violations, and the real workspace.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_abs-lint"))
}

/// Workspace root (this file lives at `crates/lint/tests/`).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// Builds a throwaway fixture tree `root/crates/<krate>/src/<file>` with
/// the given sources.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str, files: &[(&str, &str)]) -> Self {
        let root =
            std::env::temp_dir().join(format!("abs-lint-fixture-{}-{}", name, std::process::id()));
        let _ = fs::remove_dir_all(&root);
        for (rel, src) in files {
            let p = root.join(rel);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(&p, src).unwrap();
        }
        Self { root }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn clean_fixture_exits_zero() {
    let f = Fixture::new(
        "clean",
        &[(
            "crates/search/src/tracker.rs",
            "fn helper(a: i64, b: i64) -> i64 { a + b }\n",
        )],
    );
    let out = bin().args(["--root"]).arg(&f.root).output().unwrap();
    assert!(
        out.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn seeded_device_violation_exits_nonzero_with_location() {
    let f = Fixture::new(
        "seeded",
        &[(
            "crates/search/src/tracker.rs",
            "use rand::Rng;\nfn f() -> f64 { 1.5 }\n",
        )],
    );
    let out = bin().args(["--root"]).arg(&f.root).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // file:line and rule id must both be present.
    assert!(
        stdout.contains("crates/search/src/tracker.rs:1:"),
        "{stdout}"
    );
    assert!(stdout.contains("device-no-rand"), "{stdout}");
    assert!(stdout.contains("device-no-float"), "{stdout}");
}

#[test]
fn json_format_reports_machine_readable_findings() {
    let f = Fixture::new(
        "json",
        &[(
            "crates/core/src/solver.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )],
    );
    let out = bin()
        .args(["--format", "json", "--root"])
        .arg(&f.root)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\":false"), "{stdout}");
    assert!(stdout.contains("\"rule\":\"no-unwrap\""), "{stdout}");
    assert!(stdout.contains("\"zone\":\"host\""), "{stdout}");
    assert!(stdout.starts_with('{') && stdout.trim_end().ends_with('}'));
}

#[test]
fn allow_marker_suppresses_but_budget_gates() {
    let src = "\
// abs-lint: allow(device-no-float) -- fixture exception with a reason
fn f() -> f64 { 0 as f64 }
";
    let files = [("crates/search/src/tracker.rs", src)];

    // Marker suppresses the finding; without a budget file that is clean.
    let f = Fixture::new("marker", &files);
    let out = bin().args(["--root"]).arg(&f.root).output().unwrap();
    assert!(out.status.success());

    // A pinned budget of 0 turns the same tree into a violation.
    fs::write(f.root.join(".abs-lint-allow-budget"), "0\n").unwrap();
    let out = bin().args(["--root"]).arg(&f.root).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("allow-budget"),
        "budget violation must be reported"
    );
}

#[test]
fn marker_without_reason_is_a_violation() {
    let f = Fixture::new(
        "badmarker",
        &[(
            "crates/search/src/tracker.rs",
            "// abs-lint: allow(device-no-float)\nfn f() -> f64 { 0 as f64 }\n",
        )],
    );
    let out = bin().args(["--root"]).arg(&f.root).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("bad-allow-marker"));
}

#[test]
fn real_workspace_is_clean_and_within_budget() {
    let root = workspace_root();
    let out = bin()
        .args(["--format", "json", "--root"])
        .arg(&root)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the workspace must lint clean:\n{stdout}"
    );
    assert!(stdout.contains("\"violations\":0"), "{stdout}");
    // The budget file is pinned at the root; the lint must have found it.
    assert!(!stdout.contains("\"allow_budget\":null"), "{stdout}");
}

#[test]
fn model_check_passes_and_reports_coverage() {
    let out = bin()
        .args(["--model-check", "5", "--format", "json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
    assert!(stdout.contains("\"evictions_seen\""), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    let out = bin().args(["--no-such-flag"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_rules_names_every_rule() {
    let out = bin().args(["--list-rules"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "device-no-rand",
        "device-no-clock",
        "device-no-float",
        "device-no-alloc",
        "device-index-invariant",
        "hostga-no-energy",
        "ordering-seqcst-justified",
        "ordering-pair-named",
        "no-unwrap",
        "server-no-unwrap-in-handler",
        "crate-attrs",
        "bad-allow-marker",
        "allow-budget",
        "zone-propagation",
        "atomic-pairing",
        "hot-panic-reachable",
        "hot-alloc-reachable",
    ] {
        assert!(stdout.contains(rule), "missing {rule}");
    }
}

/// Committed fixture corpus root (`crates/lint/tests/fixtures/`).
fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn good_corpus_is_whole_program_clean() {
    let out = bin()
        .args(["--root"])
        .arg(fixtures().join("good"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "good corpus must lint clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn bad_corpus_trips_every_whole_program_pass() {
    let out = bin()
        .args(["--root"])
        .arg(fixtures().join("bad"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The seeded cross-file defects: a device-inferred float, a
    // hot-path panic, a hot-path allocation, and a dangling atomic
    // pairing — each caught by its transitive pass, with the call
    // chain in the message.
    assert!(stdout.contains("zone-propagation"), "{stdout}");
    assert!(stdout.contains("hot-panic-reachable"), "{stdout}");
    assert!(stdout.contains("hot-alloc-reachable"), "{stdout}");
    assert!(stdout.contains("atomic-pairing"), "{stdout}");
    assert!(stdout.contains("flip -> bad_step"), "{stdout}");
    assert!(
        stdout.contains("no non-Relaxed site on `ready`"),
        "{stdout}"
    );
}

#[test]
fn sarif_output_matches_golden() {
    let out = bin()
        .args(["--format", "sarif", "--root"])
        .arg(fixtures().join("bad"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let got = String::from_utf8_lossy(&out.stdout);
    let want = fs::read_to_string(fixtures().join("bad.sarif")).unwrap();
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "SARIF drifted from the golden; regenerate \
         tests/fixtures/bad.sarif if the change is intentional"
    );
}

#[test]
fn pairing_table_matches_golden() {
    let out = bin()
        .args(["--pairing-table", "md", "--root"])
        .arg(fixtures().join("good"))
        .output()
        .unwrap();
    assert!(out.status.success(), "good corpus pairing table is clean");
    let got = String::from_utf8_lossy(&out.stdout);
    let want = fs::read_to_string(fixtures().join("good.pairing.md")).unwrap();
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "pairing table drifted from the golden; regenerate \
         tests/fixtures/good.pairing.md if the change is intentional"
    );
}

#[test]
fn pairing_table_exits_nonzero_on_dangling_partner() {
    let out = bin()
        .args(["--pairing-table", "md", "--root"])
        .arg(fixtures().join("bad"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn changed_since_filters_to_touched_lines() {
    // An unreadable rev is a usage error, not a silent full run.
    let f = Fixture::new(
        "changed",
        &[(
            "crates/core/src/solver.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )],
    );
    let out = bin()
        .args(["--changed-since", "no-such-rev", "--root"])
        .arg(&f.root)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn baseline_excludes_known_findings_and_update_writes_it() {
    let f = Fixture::new(
        "baseline",
        &[(
            "crates/core/src/solver.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )],
    );
    // Fresh tree: the unwrap is a violation.
    let out = bin().args(["--root"]).arg(&f.root).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Accept the debt into the baseline...
    let out = bin()
        .args(["--update-baseline", "--root"])
        .arg(&f.root)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(f.root.join(".abs-lint.baseline").exists());
    // ...and the same tree now gates clean.
    let out = bin().args(["--root"]).arg(&f.root).output().unwrap();
    assert!(
        out.status.success(),
        "baselined finding must not gate:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // A *new* finding still gates.
    fs::write(
        f.root.join("crates/core/src/fresh.rs"),
        "fn g(x: Option<u8>) -> u8 { x.expect(\"regression\") }\n",
    )
    .unwrap();
    let out = bin().args(["--root"]).arg(&f.root).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fresh.rs"), "{stdout}");
}
