//! Bad fixture core crate: reached from the device hot path, this
//! helper floats (zone-propagation), allocates (hot-alloc-reachable),
//! and can panic (hot-panic-reachable / no-unwrap).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A helper the device zone must never reach in this shape.
#[must_use]
pub fn bad_step(v: i64) -> i64 {
    if v == i64::MIN {
        panic!("bad_step: sentinel input");
    }
    let scaled = (v as f64) * 1.5;
    let boxed = vec![scaled as i64];
    boxed.first().copied().unwrap()
}
