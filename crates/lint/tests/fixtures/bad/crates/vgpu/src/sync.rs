//! Bad fixture: a Release store whose pairing comment names a load
//! that does not exist — the per-file `ordering-pair-named` check is
//! satisfied, only the cross-checked table catches the stale name.

use std::sync::atomic::{AtomicBool, Ordering};

/// Ready flag with a dangling pairing comment.
#[derive(Default)]
pub struct Flag {
    ready: AtomicBool,
}

impl Flag {
    /// Publishes readiness to a consumer that was deleted long ago.
    pub fn publish(&self) {
        // ordering: Release pairs with the Acquire load in consume.
        self.ready.store(true, Ordering::Release);
    }
}
