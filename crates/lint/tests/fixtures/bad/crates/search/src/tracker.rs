//! Bad fixture: the device hot path leaks into a helper crate that
//! uses floats, panics, and allocates — all invisible to a per-file
//! lint, all caught by the whole-program passes.

/// Hot entry point (named in `HOT_FNS`): itself clean, but its only
/// callee breaks every transitive rule.
pub fn flip(d: &mut [i64], k: usize) -> i64 {
    // invariant: k < d.len(), guaranteed by the caller contract.
    let v = abs_core::bad_step(d[k]);
    // invariant: same k < d.len() bound as above.
    d[k] = v;
    v
}
