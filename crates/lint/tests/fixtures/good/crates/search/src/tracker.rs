//! Good fixture: a device hot-path entry whose only cross-file callee
//! is a clean integer helper — every whole-program pass stays silent.

/// Hot entry point (named in `HOT_FNS`): pure integer update routed
/// through a helper that lives in another crate and zone.
pub fn flip(d: &mut [i64], k: usize) -> i64 {
    // invariant: k < d.len(), guaranteed by the caller contract.
    let v = abs_core::clamp_step(d[k]);
    // invariant: same k < d.len() bound as above.
    d[k] = v;
    v
}
