//! Good fixture: a correctly paired Release/Acquire flag — both sides
//! name each other, orderings complement, the field matches.

use std::sync::atomic::{AtomicBool, Ordering};

/// One-way ready flag.
#[derive(Default)]
pub struct Flag {
    ready: AtomicBool,
}

impl Flag {
    /// Publishes readiness to the consumer.
    pub fn publish(&self) {
        // ordering: Release pairs with the Acquire load in consume.
        self.ready.store(true, Ordering::Release);
    }

    /// Observes readiness; everything written before `publish` is
    /// visible once this returns true.
    pub fn consume(&self) -> bool {
        // ordering: Acquire pairs with the Release store in publish.
        self.ready.load(Ordering::Acquire)
    }
}
