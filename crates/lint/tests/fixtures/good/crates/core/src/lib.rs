//! Good fixture core crate: the helper the device hot path calls into.
//! Integer-only and panic-free, so zone propagation infers a device
//! obligation here and finds nothing to report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Saturating step, callable from the device hot path.
#[must_use]
pub fn clamp_step(v: i64) -> i64 {
    v.saturating_add(1)
}
