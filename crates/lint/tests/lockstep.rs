//! Lockstep test: the whole-program driver must run the PR-3 per-file
//! rules *unchanged*. For a corpus seeded with one violation per
//! original rule, the findings produced by `rules::check_file` directly
//! must equal the per-file subset of the `lint_graph` report, finding
//! for finding.

use abs_lint::rules::{check_file, FileCtx, Finding};
use abs_lint::{build_graph, lint_graph};
use std::fs;
use std::path::PathBuf;

/// Rules introduced by the whole-program passes (plus the budget gate),
/// excluded when comparing against the per-file engine.
const WHOLE_PROGRAM_RULES: &[&str] = &[
    "zone-propagation",
    "atomic-pairing",
    "hot-panic-reachable",
    "hot-alloc-reachable",
    "allow-budget",
];

/// The PR-3 style corpus: per-file violations only, each visible to a
/// single-file scan.
const CORPUS: &[(&str, &str)] = &[
    (
        // Device zone: rand, clock, float, alloc, unaudited indexing,
        // unwrap.
        "crates/search/src/tracker.rs",
        "use rand::Rng;\n\
         use std::time::Instant;\n\
         fn flip(d: &[i64]) -> f64 {\n\
             let v = vec![1u8];\n\
             let _ = (d[0], v.first().unwrap());\n\
             1.5\n\
         }\n",
    ),
    (
        // Host GA zone: energy evaluation.
        "crates/ga/src/pool.rs",
        "fn fitness(q: &Qubo, x: &BitVec) -> i64 { q.energy(x) }\n",
    ),
    (
        // Unjustified SeqCst and an unpaired Release.
        "crates/vgpu/src/sync.rs",
        "use std::sync::atomic::{AtomicBool, Ordering};\n\
         fn f(a: &AtomicBool) {\n\
             a.store(true, Ordering::SeqCst);\n\
             a.store(false, Ordering::Release);\n\
         }\n",
    ),
    (
        // Crate root missing the mandatory attributes, plus a marker
        // with no reason.
        "crates/core/src/lib.rs",
        "// abs-lint: allow(no-unwrap)\n\
         pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    ),
];

fn corpus_root() -> PathBuf {
    let root = std::env::temp_dir().join(format!("abs-lint-lockstep-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (rel, src) in CORPUS {
        let p = root.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(&p, src).unwrap();
    }
    root
}

/// A finding reduced to its identity for comparison.
fn key(f: &Finding) -> (String, u32, &'static str, bool) {
    (f.file.clone(), f.line, f.rule, f.allowed)
}

#[test]
fn per_file_rules_fire_identically_under_the_whole_program_driver() {
    let root = corpus_root();
    let graph = build_graph(&root).unwrap();

    // Old engine: check_file per file, exactly as PR 3 ran it.
    let mut old: Vec<(String, u32, &'static str, bool)> = Vec::new();
    for gf in &graph.files {
        let ctx = FileCtx {
            rel_path: &gf.rel_path,
            zone: gf.zone,
            lexed: &gf.lexed,
        };
        for mut f in check_file(&ctx) {
            f.file = gf.rel_path.clone();
            old.push(key(&f));
        }
    }
    old.sort();

    // New engine: the whole-program report, minus the new passes.
    let report = lint_graph(&graph, &root, None);
    let mut new: Vec<(String, u32, &'static str, bool)> = report
        .findings
        .iter()
        .filter(|f| !WHOLE_PROGRAM_RULES.contains(&f.rule))
        .map(key)
        .collect();
    new.sort();

    assert_eq!(old, new, "per-file rules drifted under the new driver");

    // The corpus is only meaningful if it actually exercises the old
    // rule set broadly.
    let fired: std::collections::BTreeSet<&str> = old.iter().map(|k| k.2).collect();
    for rule in [
        "device-no-rand",
        "device-no-clock",
        "device-no-float",
        "device-no-alloc",
        "device-index-invariant",
        "no-unwrap",
        "hostga-no-energy",
        "ordering-seqcst-justified",
        "ordering-pair-named",
        "crate-attrs",
        "bad-allow-marker",
    ] {
        assert!(fired.contains(rule), "corpus no longer trips {rule}");
    }

    let _ = fs::remove_dir_all(&root);
}
