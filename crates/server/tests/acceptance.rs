//! End-to-end acceptance of the job server: the real binary, real
//! sockets, real signals.
//!
//! Each test spawns `abs-server` on an ephemeral port (parsed from its
//! startup line) and speaks raw HTTP/1.1 over `TcpStream`. Covered:
//! bounded-queue 429s, SSE monotonicity, bit-for-bit agreement with a
//! direct `AbsSession` on the same seed, mid-solve cancellation,
//! checkpoint-write failures surfacing as `failed`, SIGTERM drain plus
//! `--resume-jobs` with the `(flips + units) · (n + 1)` accounting
//! intact, a live `/metrics` exposition that parses, and the PR-10
//! scheduler: two jobs running simultaneously on the shared device
//! pool with bit-for-bit isolated results, a SIGTERM drain that spools
//! *every* in-flight job, and warm starts from the content-hash cache
//! (repeat POST hits, mutated-matrix POST misses).

use abs_server::runner::solver_config;
use abs_server::spec::parse_spec;
use qubo::{BitVec, Qubo};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_abs-server");

/// A spawned server, killed on drop unless the test already waited it
/// out.
struct Server {
    child: Child,
    port: u16,
}

impl Server {
    fn spawn(extra_args: &[&str]) -> Self {
        let mut child = Command::new(BIN)
            .args(["--addr", "127.0.0.1", "--port", "0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn abs-server");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("startup line");
        // "abs-server listening on http://127.0.0.1:PORT"
        let port = line
            .trim()
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| panic!("unparseable startup line {line:?}"));
        // Keep draining stdout so the child never blocks on the pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = reader.read_to_string(&mut sink);
        });
        Self { child, port }
    }

    /// Sends SIGTERM and waits for a clean (code 0) drain.
    fn sigterm_and_wait(mut self) {
        let status = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("kill -TERM");
        assert!(status.success());
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "drain must exit 0, got {status:?}");
                return;
            }
            assert!(Instant::now() < deadline, "server did not drain in time");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One request over a fresh connection; returns `(status, body)`.
fn http(port: u16, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to abs-server");
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get_json(port: u16, path: &str) -> (u16, serde_json::Value) {
    let (status, body) = http(port, "GET", path, None);
    let value = serde_json::from_str(&body)
        .unwrap_or_else(|e| panic!("bad JSON from {path}: {e}: {body:?}"));
    (status, value)
}

/// Polls `GET /jobs/{id}` until the job's state is in `until`.
fn wait_state(port: u16, id: u64, until: &[&str], timeout: Duration) -> serde_json::Value {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, v) = get_json(port, &format!("/jobs/{id}"));
        assert_eq!(status, 200);
        let state = v.get("state").and_then(|s| s.as_str()).unwrap_or("");
        if until.contains(&state) {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {state:?}, wanted one of {until:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Serializes a dense problem as the JSON codec's upper triangle.
fn dense_problem_json(q: &Qubo) -> String {
    let n = q.n();
    let mut upper = Vec::with_capacity(n * (n + 1) / 2);
    for i in 0..n {
        for j in i..n {
            upper.push(q.get(i, j).to_string());
        }
    }
    format!(
        "{{\"format\": \"dense\", \"n\": {n}, \"upper\": [{}]}}",
        upper.join(", ")
    )
}

/// First seed from 11 whose 14-bit instance has a *unique* optimum, so
/// "bit-for-bit" is well-defined: any solver that reaches the optimal
/// energy must hold exactly these bits.
fn unique_optimum_instance() -> (Qubo, i64, String) {
    unique_optimum_instance_from(11)
}

/// As above, scanning seeds from `start` — lets tests pick *distinct*
/// unique-optimum instances.
fn unique_optimum_instance_from(start: u64) -> (Qubo, i64, String) {
    for seed in start.. {
        let q = qubo_problems::random::generate(14, seed);
        let mut best = i64::MAX;
        let mut arg = 0u32;
        let mut ties = 0u32;
        for bits in 0..(1u32 << 14) {
            let x = assignment(bits, 14);
            let e = q.energy(&x);
            if e < best {
                best = e;
                arg = bits;
                ties = 1;
            } else if e == best {
                ties += 1;
            }
        }
        if ties == 1 {
            let solution: String = (0..14)
                .map(|i| if (arg >> i) & 1 == 1 { '1' } else { '0' })
                .collect();
            return (q, best, solution);
        }
    }
    unreachable!("some seed yields a unique optimum");
}

fn assignment(bits: u32, n: usize) -> BitVec {
    let mut x = BitVec::zeros(n);
    for i in 0..n {
        x.set(i, (bits >> i) & 1 == 1);
    }
    x
}

#[test]
fn solve_matches_direct_session_bit_for_bit() {
    let (q, optimum, solution) = unique_optimum_instance();
    let body = format!(
        "{{\"problem\": {}, \"config\": {{\"seed\": 7, \"target\": {optimum}, \"timeout_ms\": 30000}}}}",
        dense_problem_json(&q)
    );

    let server = Server::spawn(&[]);
    let (status, created) = http(server.port, "POST", "/jobs", Some(&body));
    assert_eq!(status, 201, "{created}");
    let done = wait_state(server.port, 1, &["done", "failed"], Duration::from_secs(40));
    assert_eq!(done.get("state").and_then(|s| s.as_str()), Some("done"));
    let result = done.get("result").expect("result present");
    assert_eq!(
        result.get("best_energy").and_then(|v| v.as_i64()),
        Some(optimum)
    );
    assert_eq!(
        result.get("reached_target").and_then(|v| v.as_bool()),
        Some(true)
    );
    let served_solution = result
        .get("solution")
        .and_then(|v| v.as_str())
        .expect("solution string")
        .to_string();
    assert_eq!(
        served_solution, solution,
        "server must land on the unique optimum"
    );

    // The direct twin: same payload through the same config mapping.
    let spec = parse_spec(&body).expect("spec parses");
    let cfg = solver_config(&spec, None);
    let direct = abs::AbsSession::start(cfg, &spec.problem)
        .expect("direct session")
        .run_to_completion()
        .expect("direct solve");
    assert_eq!(direct.best_energy, optimum);
    let direct_solution: String = (0..direct.best.len())
        .map(|i| if direct.best.get(i) { '1' } else { '0' })
        .collect();
    assert_eq!(
        direct_solution, served_solution,
        "bit-for-bit with the direct session"
    );
}

#[test]
fn full_queue_refuses_with_429() {
    // One solver worker, or the second job would be claimed instead of
    // waiting in the (depth-1) queue.
    let server = Server::spawn(&["--queue-depth", "1", "--solver-workers", "1"]);
    let q = qubo_problems::random::generate(16, 2);
    let slow = format!(
        "{{\"problem\": {}, \"config\": {{\"timeout_ms\": 20000}}}}",
        dense_problem_json(&q)
    );
    let slow = slow.as_str();
    let (status, _) = http(server.port, "POST", "/jobs", Some(slow));
    assert_eq!(status, 201);
    // Job 1 must be claimed (leave the queue) before the queue can hold
    // job 2.
    wait_state(server.port, 1, &["running"], Duration::from_secs(10));
    let (status, _) = http(server.port, "POST", "/jobs", Some(slow));
    assert_eq!(status, 201, "one job may wait");
    let (status, body) = http(server.port, "POST", "/jobs", Some(slow));
    assert_eq!(status, 429, "the bounded queue must refuse: {body}");
    assert!(body.contains("queue"), "{body}");

    // Queued job reports its position; both cancel cleanly.
    let (_, v) = get_json(server.port, "/jobs/2");
    assert_eq!(v.get("queue_position").and_then(|p| p.as_u64()), Some(0));
    let (status, _) = http(server.port, "DELETE", "/jobs/2", None);
    assert_eq!(status, 200);
    let (status, _) = http(server.port, "DELETE", "/jobs/1", None);
    assert_eq!(status, 202);
    wait_state(server.port, 1, &["cancelled"], Duration::from_secs(10));
}

#[test]
fn delete_cancels_a_running_job_promptly() {
    let server = Server::spawn(&[]);
    let q = qubo_problems::random::generate(32, 5);
    let body = format!(
        "{{\"problem\": {}, \"config\": {{\"timeout_ms\": 30000}}}}",
        dense_problem_json(&q)
    );
    let (status, _) = http(server.port, "POST", "/jobs", Some(&body));
    assert_eq!(status, 201);
    wait_state(server.port, 1, &["running"], Duration::from_secs(10));
    let started = Instant::now();
    let (status, body) = http(server.port, "DELETE", "/jobs/1", None);
    assert_eq!(status, 202, "{body}");
    let v = wait_state(server.port, 1, &["cancelled"], Duration::from_secs(5));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cancel must land within a poll stride, took {:?}",
        started.elapsed()
    );
    // A mid-solve cancel keeps the partial result.
    assert!(v.get("result").is_some(), "partial result retained: {v:?}");
    // Cancelling again is idempotent and settled.
    let (status, _) = http(server.port, "DELETE", "/jobs/1", None);
    assert_eq!(status, 200);
}

#[test]
fn sse_stream_is_monotone_and_ends_with_state() {
    let server = Server::spawn(&[]);
    let q = qubo_problems::random::generate(48, 3);
    let body = format!(
        "{{\"problem\": {}, \"config\": {{\"timeout_ms\": 1500}}}}",
        dense_problem_json(&q)
    );
    let (status, _) = http(server.port, "POST", "/jobs", Some(&body));
    assert_eq!(status, 201);

    // Stream until the server closes the connection at job end.
    let mut stream = TcpStream::connect(("127.0.0.1", server.port)).expect("connect");
    stream
        .write_all(b"GET /jobs/1/events HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read stream");
    assert!(raw.contains("text/event-stream"), "{raw:?}");

    let mut seqs = Vec::new();
    let mut bests = Vec::new();
    let mut flips = Vec::new();
    let mut end_state = None;
    let frames = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    for frame in frames.split("\n\n") {
        let mut event = "";
        let mut data = "";
        for line in frame.lines() {
            if let Some(v) = line.strip_prefix("event: ") {
                event = v;
            } else if let Some(v) = line.strip_prefix("data: ") {
                data = v;
            }
        }
        match event {
            "progress" => {
                let v: serde_json::Value = serde_json::from_str(data).expect("progress JSON");
                seqs.push(v.get("seq").and_then(|x| x.as_u64()).expect("seq"));
                if let Some(e) = v.get("best_energy").and_then(|x| x.as_i64()) {
                    bests.push(e);
                }
                flips.push(v.get("flips").and_then(|x| x.as_u64()).expect("flips"));
            }
            "end" => {
                let v: serde_json::Value = serde_json::from_str(data).expect("end JSON");
                end_state = v.get("state").and_then(|s| s.as_str()).map(String::from);
            }
            _ => {}
        }
    }
    assert!(!seqs.is_empty(), "at least one progress event: {raw:?}");
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "seq gap-free and increasing: {seqs:?}"
    );
    assert!(
        bests.windows(2).all(|w| w[1] <= w[0]),
        "best energy monotone non-increasing: {bests:?}"
    );
    assert!(
        flips.windows(2).all(|w| w[1] >= w[0]),
        "flips monotone non-decreasing: {flips:?}"
    );
    assert_eq!(end_state.as_deref(), Some("done"), "{raw:?}");
}

#[test]
fn denied_checkpoint_write_fails_the_job_loudly() {
    let spool = temp_dir("deny");
    let server = Server::spawn(&["--spool", spool.to_str().expect("utf-8 path")]);
    let q = qubo_problems::random::generate(24, 9);
    let body = format!(
        "{{\"problem\": {}, \"config\": {{\"timeout_ms\": 20000,
           \"checkpoint_interval_ms\": 1, \"deny_checkpoint_write\": 0}}}}",
        dense_problem_json(&q)
    );
    let (status, _) = http(server.port, "POST", "/jobs", Some(&body));
    assert_eq!(status, 201);
    let v = wait_state(server.port, 1, &["failed", "done"], Duration::from_secs(20));
    assert_eq!(v.get("state").and_then(|s| s.as_str()), Some("failed"));
    let reason = v
        .get("error")
        .and_then(|e| e.as_str())
        .expect("error reason");
    assert!(
        reason.contains("injected write denial"),
        "the checkpoint I/O error must reach the status body: {reason:?}"
    );
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn sigterm_drains_and_resume_preserves_accounting() {
    let spool = temp_dir("drain");
    let spool_arg = spool.to_str().expect("utf-8 path");
    let server = Server::spawn(&["--spool", spool_arg]);
    let port_a = server.port;

    let q = qubo_problems::random::generate(32, 5);
    let n = q.n() as u64;
    let body = format!(
        "{{\"problem\": {}, \"config\": {{\"seed\": 3, \"timeout_ms\": 4000,
           \"checkpoint_interval_ms\": 25}}}}",
        dense_problem_json(&q)
    );
    let (status, _) = http(port_a, "POST", "/jobs", Some(&body));
    assert_eq!(status, 201);
    wait_state(port_a, 1, &["running"], Duration::from_secs(10));
    // Let it accrue some progress (and at least one stride checkpoint).
    std::thread::sleep(Duration::from_millis(400));
    server.sigterm_and_wait();
    assert!(
        spool.join("jobs.json").exists(),
        "drain must leave a manifest"
    );
    assert!(spool.join("1.ckpt").exists(), "drain must checkpoint job 1");

    // Restart from the spool; the job keeps its id and finishes its
    // remaining budget.
    let server = Server::spawn(&["--spool", spool_arg, "--resume-jobs"]);
    let v = wait_state(server.port, 1, &["done", "failed"], Duration::from_secs(30));
    assert_eq!(
        v.get("state").and_then(|s| s.as_str()),
        Some("done"),
        "{v:?}"
    );
    let result = v.get("result").expect("result");
    let flips = result
        .get("total_flips")
        .and_then(|x| x.as_u64())
        .expect("flips");
    let units = result
        .get("search_units")
        .and_then(|x| x.as_u64())
        .expect("units");
    let evaluated = result
        .get("evaluated")
        .and_then(|x| x.as_u64())
        .expect("evaluated");
    let elapsed = result
        .get("elapsed_ms")
        .and_then(|x| x.as_u64())
        .expect("elapsed");
    assert_eq!(
        evaluated,
        (flips + units) * (n + 1),
        "cumulative Theorem-1 accounting must survive the restart"
    );
    assert!(
        elapsed >= 4000,
        "elapsed is cumulative across the drain ({elapsed}ms)"
    );
    assert!(flips > 0 && units > 0);
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn metrics_endpoint_serves_live_valid_prometheus() {
    let server = Server::spawn(&[]);
    let q = qubo_problems::random::generate(32, 8);
    let body = format!(
        "{{\"problem\": {}, \"config\": {{\"timeout_ms\": 2000}}}}",
        dense_problem_json(&q)
    );
    let (status, _) = http(server.port, "POST", "/jobs", Some(&body));
    assert_eq!(status, 201);
    wait_state(server.port, 1, &["running"], Duration::from_secs(10));
    // Give the worker an event stride to publish a live snapshot.
    std::thread::sleep(Duration::from_millis(300));

    let (status, text) = http(server.port, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let samples = abs_telemetry::expose::parse_prometheus(&text)
        .unwrap_or_else(|e| panic!("/metrics must parse: {e}\n{text}"));
    assert!(samples > 0);
    assert!(text.contains("abs_server_jobs_submitted_total 1"), "{text}");
    assert!(
        text.contains("abs_flips_total"),
        "live solver families must be exposed mid-solve"
    );
    wait_state(server.port, 1, &["done"], Duration::from_secs(20));
}

#[test]
fn bad_requests_are_typed() {
    let server = Server::spawn(&[]);
    let (status, body) = http(server.port, "POST", "/jobs", Some("{\"problem\": 3}"));
    assert_eq!(status, 400, "{body}");
    let (status, _) = http(server.port, "GET", "/jobs/99", None);
    assert_eq!(status, 404);
    let (status, _) = http(server.port, "PUT", "/jobs/1", None);
    assert_eq!(status, 405);
    let (status, _) = http(server.port, "GET", "/nope", None);
    assert_eq!(status, 404);
}

#[test]
fn concurrent_jobs_run_simultaneously() {
    // Two solver workers share the device pool: two submitted jobs
    // must both be observably `running` at the same instant, and the
    // serving metrics must count them truthfully.
    let server = Server::spawn(&["--solver-workers", "2"]);
    let q1 = qubo_problems::random::generate(48, 21);
    let q2 = qubo_problems::random::generate(48, 22);
    for q in [&q1, &q2] {
        let body = format!(
            "{{\"problem\": {}, \"config\": {{\"timeout_ms\": 20000, \"tenant\": \"stress\"}}}}",
            dense_problem_json(q)
        );
        let (status, _) = http(server.port, "POST", "/jobs", Some(&body));
        assert_eq!(status, 201);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, a) = get_json(server.port, "/jobs/1");
        let (_, b) = get_json(server.port, "/jobs/2");
        let running =
            |v: &serde_json::Value| v.get("state").and_then(|s| s.as_str()) == Some("running");
        if running(&a) && running(&b) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "both jobs must run simultaneously: {a:?} / {b:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, text) = http(server.port, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        text.contains("abs_server_jobs_running 2"),
        "the gauge must count concurrent sessions, not saturate at 1: {text}"
    );
    assert!(
        text.contains("abs_pool_blocks_leased{tenant=\"stress\"} 16"),
        "two 8-block leases aggregate per tenant: {text}"
    );
    for id in [1, 2] {
        let (status, _) = http(server.port, "DELETE", &format!("/jobs/{id}"), None);
        assert_eq!(status, 202);
        wait_state(server.port, id, &["cancelled"], Duration::from_secs(10));
    }
}

#[test]
fn concurrent_results_match_direct_sessions_bit_for_bit() {
    // Two *different* unique-optimum instances solved concurrently on
    // the shared pool: each must land on exactly the bits a direct,
    // exclusive session finds — tenant isolation means no cross-talk
    // in results, not just in memory.
    let (qa, opt_a, _) = unique_optimum_instance_from(11);
    let (qb, opt_b, _) = unique_optimum_instance_from(101);
    assert_ne!(
        qa.content_hash(),
        qb.content_hash(),
        "the two instances must be distinct"
    );
    let body_a = format!(
        "{{\"problem\": {}, \"config\": {{\"seed\": 7, \"target\": {opt_a}, \"timeout_ms\": 30000}}}}",
        dense_problem_json(&qa)
    );
    let body_b = format!(
        "{{\"problem\": {}, \"config\": {{\"seed\": 9, \"target\": {opt_b}, \"timeout_ms\": 30000}}}}",
        dense_problem_json(&qb)
    );

    let server = Server::spawn(&["--solver-workers", "2"]);
    let (status, _) = http(server.port, "POST", "/jobs", Some(&body_a));
    assert_eq!(status, 201);
    let (status, _) = http(server.port, "POST", "/jobs", Some(&body_b));
    assert_eq!(status, 201);

    let mut served = Vec::new();
    for (id, optimum) in [(1u64, opt_a), (2u64, opt_b)] {
        let done = wait_state(
            server.port,
            id,
            &["done", "failed"],
            Duration::from_secs(40),
        );
        assert_eq!(done.get("state").and_then(|s| s.as_str()), Some("done"));
        let result = done.get("result").expect("result present");
        assert_eq!(
            result.get("best_energy").and_then(|v| v.as_i64()),
            Some(optimum)
        );
        served.push(
            result
                .get("solution")
                .and_then(|v| v.as_str())
                .expect("solution")
                .to_string(),
        );
    }

    for (body, expect) in [(&body_a, &served[0]), (&body_b, &served[1])] {
        let spec = parse_spec(body).expect("spec parses");
        let cfg = solver_config(&spec, None);
        let direct = abs::AbsSession::start(cfg, &spec.problem)
            .expect("direct session")
            .run_to_completion()
            .expect("direct solve");
        let direct_solution: String = (0..direct.best.len())
            .map(|i| if direct.best.get(i) { '1' } else { '0' })
            .collect();
        assert_eq!(
            direct_solution, **expect,
            "a pooled concurrent session must be bit-for-bit a direct one"
        );
    }
}

#[test]
fn concurrent_drain_spools_every_in_flight_job() {
    let spool = temp_dir("drain-all");
    let spool_arg = spool.to_str().expect("utf-8 path");
    let server = Server::spawn(&["--spool", spool_arg, "--solver-workers", "2"]);
    let port = server.port;
    for seed in [31, 32] {
        let q = qubo_problems::random::generate(32, seed);
        let body = format!(
            "{{\"problem\": {}, \"config\": {{\"timeout_ms\": 8000,
               \"checkpoint_interval_ms\": 25}}}}",
            dense_problem_json(&q)
        );
        let (status, _) = http(port, "POST", "/jobs", Some(&body));
        assert_eq!(status, 201);
    }
    wait_state(port, 1, &["running"], Duration::from_secs(10));
    wait_state(port, 2, &["running"], Duration::from_secs(10));
    std::thread::sleep(Duration::from_millis(400));
    server.sigterm_and_wait();

    let manifest = std::fs::read_to_string(spool.join("jobs.json")).expect("manifest");
    for id in [1, 2] {
        assert!(
            manifest.contains(&format!("\"id\": {id}"))
                || manifest.contains(&format!("\"id\":{id}")),
            "job {id} must be in the drain manifest: {manifest}"
        );
        assert!(
            spool.join(format!("{id}.ckpt")).exists(),
            "drain must checkpoint job {id}"
        );
    }

    // Both resume and finish on a restarted server.
    let server = Server::spawn(&[
        "--spool",
        spool_arg,
        "--resume-jobs",
        "--solver-workers",
        "2",
    ]);
    for id in [1, 2] {
        let v = wait_state(
            server.port,
            id,
            &["done", "failed"],
            Duration::from_secs(30),
        );
        assert_eq!(
            v.get("state").and_then(|s| s.as_str()),
            Some("done"),
            "{v:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn warm_start_repeat_submission_hits_cache_and_stays_exact() {
    // Warm-start correctness: a cached-seed solve on a unique-optimum
    // instance must land bit-for-bit where the cold start landed, the
    // repeat POST must actually hit the cache, and a mutated matrix of
    // the same n must MISS (hash staleness regression).
    let (q, optimum, solution) = unique_optimum_instance();
    let body = format!(
        "{{\"problem\": {}, \"config\": {{\"seed\": 7, \"target\": {optimum}, \"timeout_ms\": 30000}}}}",
        dense_problem_json(&q)
    );
    let server = Server::spawn(&[]);

    let (status, _) = http(server.port, "POST", "/jobs", Some(&body));
    assert_eq!(status, 201);
    let cold = wait_state(server.port, 1, &["done", "failed"], Duration::from_secs(40));
    assert_eq!(cold.get("state").and_then(|s| s.as_str()), Some("done"));
    assert_eq!(
        cold.get("warm_started").and_then(|v| v.as_bool()),
        Some(false),
        "first sight of the instance is a cold start: {cold:?}"
    );
    let cold_hash = cold
        .get("problem_hash")
        .and_then(|v| v.as_str())
        .expect("hash exposed")
        .to_string();

    // Repeat POST of the same problem: must start from the cached
    // incumbent (which *is* the unique optimum) and return it exactly.
    let (status, _) = http(server.port, "POST", "/jobs", Some(&body));
    assert_eq!(status, 201);
    let warm = wait_state(server.port, 2, &["done", "failed"], Duration::from_secs(40));
    assert_eq!(warm.get("state").and_then(|s| s.as_str()), Some("done"));
    assert_eq!(
        warm.get("warm_started").and_then(|v| v.as_bool()),
        Some(true),
        "repeat POST of the same W must warm-start: {warm:?}"
    );
    assert_eq!(
        warm.get("problem_hash").and_then(|v| v.as_str()),
        Some(cold_hash.as_str()),
        "same matrix, same digest"
    );
    let warm_result = warm.get("result").expect("result");
    assert_eq!(
        warm_result.get("best_energy").and_then(|v| v.as_i64()),
        Some(optimum)
    );
    assert_eq!(
        warm_result.get("solution").and_then(|v| v.as_str()),
        Some(solution.as_str()),
        "warm start must be bit-for-bit as good as cold on a unique optimum"
    );
    assert_eq!(
        warm_result.get("reached_target").and_then(|v| v.as_bool()),
        Some(true)
    );

    // Mutate one weight (same n): different digest, must MISS.
    let mut mutated = q.clone();
    mutated.set(3, 9, mutated.get(3, 9).wrapping_add(1));
    let mutated_body = format!(
        "{{\"problem\": {}, \"config\": {{\"seed\": 7, \"timeout_ms\": 2000}}}}",
        dense_problem_json(&mutated)
    );
    let (status, _) = http(server.port, "POST", "/jobs", Some(&mutated_body));
    assert_eq!(status, 201);
    let miss = wait_state(server.port, 3, &["done", "failed"], Duration::from_secs(20));
    assert_eq!(
        miss.get("warm_started").and_then(|v| v.as_bool()),
        Some(false),
        "a mutated W with the same n must MISS the cache: {miss:?}"
    );
    assert_ne!(
        miss.get("problem_hash").and_then(|v| v.as_str()),
        Some(cold_hash.as_str()),
        "mutation must change the digest"
    );
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("abs-server-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}
