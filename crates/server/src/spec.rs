//! Job payload parsing: the `POST /jobs` body.
//!
//! ```json
//! {
//!   "problem": { "format": "dense" | "edge-list", ... },
//!   "config": {
//!     "seed": 7,
//!     "timeout_ms": 1000,
//!     "target": -123,
//!     "devices": 1,
//!     "blocks": 8,
//!     "deadline_ms": 10000,
//!     "checkpoint_interval_ms": 250
//!   }
//! }
//! ```
//!
//! The `problem` object is decoded by the shared [`qubo::json`] codec
//! (the same one behind the CLI's `--problem-json`); everything in
//! `config` is optional. `deadline_ms` maps onto the session watchdog's
//! hard timeout, so a job that exhausts its deadline *with* an
//! incumbent finishes `done` and one without any result fails — the
//! same semantics a one-shot solve has.

use qubo::{json, Qubo};
use std::sync::Arc;

/// Default per-job solve budget when `timeout_ms` is absent.
pub const DEFAULT_TIMEOUT_MS: u64 = 1_000;

/// Per-job solver knobs, all optional in the payload.
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Master seed (default 0).
    pub seed: u64,
    /// Wall-clock budget in milliseconds.
    pub timeout_ms: u64,
    /// Early-stop target energy.
    pub target: Option<i64>,
    /// Virtual GPU count override.
    pub devices: Option<usize>,
    /// Blocks-per-device override.
    pub blocks: Option<usize>,
    /// Watchdog hard deadline (milliseconds).
    pub deadline_ms: Option<u64>,
    /// Stride between spool checkpoints while running.
    pub checkpoint_interval_ms: Option<u64>,
    /// Testing hook: refuse the k-th checkpoint write (the PR-7 seeded
    /// host I/O fault injection), so the acceptance suite can assert
    /// that a checkpoint-write error fails the job loudly.
    pub deny_checkpoint_write: Option<u64>,
    /// Tenant label for pool accounting and the per-tenant
    /// `abs_pool_blocks_leased` gauge (default `"default"`).
    pub tenant: String,
    /// Device-pool scheduling class: `"interactive"` jumps the batch
    /// queue when capacity is contended (default `"batch"`).
    pub priority: vgpu::Priority,
    /// Whether a repeat submission may seed from cached incumbents
    /// (default true; disable for bit-for-bit cold-start twins).
    pub warm_start: bool,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            timeout_ms: DEFAULT_TIMEOUT_MS,
            target: None,
            devices: None,
            blocks: None,
            deadline_ms: None,
            checkpoint_interval_ms: None,
            deny_checkpoint_write: None,
            tenant: "default".to_string(),
            priority: vgpu::Priority::Batch,
            warm_start: true,
        }
    }
}

/// A parsed, admitted job submission. The original body text rides
/// along verbatim so the drain spool can persist exactly what the
/// client sent.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The verbatim `POST /jobs` body.
    pub body: String,
    /// Decoded problem (shared with the solver worker).
    pub problem: Arc<Qubo>,
    /// Decoded config.
    pub config: JobConfig,
}

/// A typed rejection of a job payload (HTTP 400 with this message).
#[derive(Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The body is not a JSON object.
    NotObject,
    /// No `"problem"` field.
    MissingProblem,
    /// The problem sub-object was refused by the shared codec.
    Problem(json::JsonProblemError),
    /// A config field has the wrong type or an out-of-range value.
    BadConfig {
        /// Field name.
        field: &'static str,
        /// What was expected.
        expected: &'static str,
    },
    /// A config field nobody reads. A misspelled knob (`target_energy`
    /// for `target`) silently solving with defaults is worse than a
    /// 400, so unknown keys are refused.
    UnknownConfigField(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotObject => write!(f, "job payload must be a JSON object"),
            Self::MissingProblem => write!(f, "missing field \"problem\""),
            Self::Problem(e) => write!(f, "problem: {e}"),
            Self::BadConfig { field, expected } => {
                write!(f, "config.{field} must be {expected}")
            }
            Self::UnknownConfigField(field) => {
                write!(
                    f,
                    "config has no field {field:?} (known: {})",
                    CONFIG_FIELDS.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Every key `parse_spec` reads from the `config` object.
const CONFIG_FIELDS: &[&str] = &[
    "seed",
    "timeout_ms",
    "target",
    "devices",
    "blocks",
    "deadline_ms",
    "checkpoint_interval_ms",
    "deny_checkpoint_write",
    "tenant",
    "priority",
    "warm_start",
];

fn u64_field(obj: &serde_json::Value, field: &'static str) -> Result<Option<u64>, SpecError> {
    match obj.get(field) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(SpecError::BadConfig {
            field,
            expected: "a non-negative integer",
        }),
    }
}

fn usize_field(obj: &serde_json::Value, field: &'static str) -> Result<Option<usize>, SpecError> {
    match u64_field(obj, field)? {
        None => Ok(None),
        Some(v) => usize::try_from(v)
            .map(Some)
            .map_err(|_| SpecError::BadConfig {
                field,
                expected: "a non-negative integer",
            }),
    }
}

/// Parses a `POST /jobs` body.
///
/// # Errors
/// [`SpecError`] on a malformed payload; syntax errors surface through
/// the codec's `Syntax` variant.
pub fn parse_spec(body: &str) -> Result<JobSpec, SpecError> {
    let value = serde_json::from_str(body)
        .map_err(|e| SpecError::Problem(json::JsonProblemError::Syntax(e.to_string())))?;
    if value.as_object().is_none() {
        return Err(SpecError::NotObject);
    }
    let problem_value = value.get("problem").ok_or(SpecError::MissingProblem)?;
    let problem = json::parse_problem_value(problem_value).map_err(SpecError::Problem)?;

    let mut config = JobConfig::default();
    if let Some(c) = value.get("config") {
        let Some(fields) = c.as_object() else {
            return Err(SpecError::BadConfig {
                field: "config",
                expected: "an object",
            });
        };
        if let Some(unknown) = fields.keys().find(|k| !CONFIG_FIELDS.contains(k)) {
            return Err(SpecError::UnknownConfigField((*unknown).to_string()));
        }
        if let Some(seed) = u64_field(c, "seed")? {
            config.seed = seed;
        }
        if let Some(t) = u64_field(c, "timeout_ms")? {
            config.timeout_ms = t;
        }
        if let Some(v) = c.get("target") {
            config.target = Some(v.as_i64().ok_or(SpecError::BadConfig {
                field: "target",
                expected: "an integer",
            })?);
        }
        config.devices = usize_field(c, "devices")?;
        config.blocks = usize_field(c, "blocks")?;
        config.deadline_ms = u64_field(c, "deadline_ms")?;
        config.checkpoint_interval_ms = u64_field(c, "checkpoint_interval_ms")?;
        config.deny_checkpoint_write = u64_field(c, "deny_checkpoint_write")?;
        if let Some(v) = c.get("tenant") {
            let tenant = v.as_str().ok_or(SpecError::BadConfig {
                field: "tenant",
                expected: "a non-empty string",
            })?;
            if tenant.is_empty() {
                return Err(SpecError::BadConfig {
                    field: "tenant",
                    expected: "a non-empty string",
                });
            }
            config.tenant = tenant.to_string();
        }
        if let Some(v) = c.get("priority") {
            config.priority =
                v.as_str()
                    .and_then(vgpu::Priority::parse)
                    .ok_or(SpecError::BadConfig {
                        field: "priority",
                        expected: "\"interactive\" or \"batch\"",
                    })?;
        }
        if let Some(v) = c.get("warm_start") {
            config.warm_start = v.as_bool().ok_or(SpecError::BadConfig {
                field: "warm_start",
                expected: "a boolean",
            })?;
        }
    }
    Ok(JobSpec {
        body: body.to_string(),
        problem: Arc::new(problem),
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_defaults() {
        let s = parse_spec(r#"{"problem": {"format": "dense", "n": 1, "upper": [-1]}}"#).unwrap();
        assert_eq!(s.problem.n(), 1);
        assert_eq!(s.config.seed, 0);
        assert_eq!(s.config.timeout_ms, DEFAULT_TIMEOUT_MS);
        assert_eq!(s.config.target, None);
    }

    #[test]
    fn full_config_round_trips() {
        let s = parse_spec(
            r#"{"problem": {"format": "edge-list", "n": 3, "edges": [[1, 2, 5]]},
                "config": {"seed": 9, "timeout_ms": 50, "target": -5,
                           "devices": 2, "blocks": 4, "deadline_ms": 700,
                           "checkpoint_interval_ms": 25, "tenant": "team-a",
                           "priority": "interactive", "warm_start": false}}"#,
        )
        .unwrap();
        assert_eq!(s.config.seed, 9);
        assert_eq!(s.config.timeout_ms, 50);
        assert_eq!(s.config.target, Some(-5));
        assert_eq!(s.config.devices, Some(2));
        assert_eq!(s.config.blocks, Some(4));
        assert_eq!(s.config.deadline_ms, Some(700));
        assert_eq!(s.config.checkpoint_interval_ms, Some(25));
        assert_eq!(s.config.tenant, "team-a");
        assert_eq!(s.config.priority, vgpu::Priority::Interactive);
        assert!(!s.config.warm_start);
    }

    #[test]
    fn tenant_priority_warm_start_defaults_and_rejections() {
        let s = parse_spec(r#"{"problem": {"format": "dense", "n": 1, "upper": [-1]}}"#).unwrap();
        assert_eq!(s.config.tenant, "default");
        assert_eq!(s.config.priority, vgpu::Priority::Batch);
        assert!(s.config.warm_start);
        let problem = r#""problem": {"format": "dense", "n": 1, "upper": [-1]}"#;
        assert_eq!(
            parse_spec(&format!(r#"{{{problem}, "config": {{"tenant": ""}}}}"#)).unwrap_err(),
            SpecError::BadConfig {
                field: "tenant",
                expected: "a non-empty string"
            }
        );
        assert_eq!(
            parse_spec(&format!(
                r#"{{{problem}, "config": {{"priority": "urgent"}}}}"#
            ))
            .unwrap_err(),
            SpecError::BadConfig {
                field: "priority",
                expected: "\"interactive\" or \"batch\""
            }
        );
        assert_eq!(
            parse_spec(&format!(r#"{{{problem}, "config": {{"warm_start": 1}}}}"#)).unwrap_err(),
            SpecError::BadConfig {
                field: "warm_start",
                expected: "a boolean"
            }
        );
    }

    #[test]
    fn typed_rejections() {
        assert_eq!(parse_spec("[]").unwrap_err(), SpecError::NotObject);
        assert_eq!(
            parse_spec(r#"{"config": {}}"#).unwrap_err(),
            SpecError::MissingProblem
        );
        assert!(matches!(
            parse_spec(r#"{"problem": {"format": "dense", "n": 1, "upper": [1.5]}}"#).unwrap_err(),
            SpecError::Problem(json::JsonProblemError::NotInteger { .. })
        ));
        assert_eq!(
            parse_spec(
                r#"{"problem": {"format": "dense", "n": 1, "upper": [1]},
                    "config": {"seed": -4}}"#
            )
            .unwrap_err(),
            SpecError::BadConfig {
                field: "seed",
                expected: "a non-negative integer"
            }
        );
    }

    #[test]
    fn unknown_config_keys_are_refused_not_ignored() {
        // A misspelled knob must not silently solve with defaults.
        let err = parse_spec(
            r#"{"problem": {"format": "dense", "n": 1, "upper": [1]},
                "config": {"target_energy": -13}}"#,
        )
        .unwrap_err();
        assert_eq!(err, SpecError::UnknownConfigField("target_energy".into()));
        assert!(err.to_string().contains("known: seed"), "{err}");
    }
}
