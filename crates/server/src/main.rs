//! `abs-server`: the ABS solve-as-a-service binary.
//!
//! ```text
//! abs-server [--addr A] [--port P] [--queue-depth N] [--http-workers N]
//!            [--spool DIR] [--resume-jobs]
//! ```
//!
//! Exit codes follow the CLI convention: `2` for usage errors, `1` for
//! runtime failures, `0` for a clean drain after SIGINT/SIGTERM.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use abs_server::{args, run};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let config = match args::parse(&argv) {
        Ok(None) => {
            print!("{}", args::USAGE);
            return ExitCode::SUCCESS;
        }
        Ok(Some(config)) => config,
        Err(msg) => {
            eprintln!("abs-server: {msg}");
            eprint!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    match run(&config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("abs-server: {e}");
            ExitCode::FAILURE
        }
    }
}
