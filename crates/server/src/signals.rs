//! Graceful-shutdown signal hooks for the server.
//!
//! SIGINT/SIGTERM begin a *drain*, not an exit: the accept loop stops
//! taking connections, the solver worker checkpoints the in-flight job
//! to the spool, and the store's non-terminal jobs are written to the
//! drain manifest so `--resume-jobs` can pick them back up. As in the
//! CLI, the handler body is one atomic store — the only
//! async-signal-safe thing it could do — and the accept loop polls the
//! flag between connections.
//!
//! There is no libc dependency in this workspace, so the Unix `signal`
//! entry point is declared directly; this module is the crate's single
//! `unsafe` island (the crate root holds `deny(unsafe_code)`). On
//! non-Unix targets installation is a no-op and the server is only
//! stoppable by killing the process.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on SIGINT/SIGTERM, read by the accept loop.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// `true` once SIGINT or SIGTERM has been received.
pub fn interrupted() -> bool {
    // ordering: pairs with the SeqCst store in `on_signal`; total order
    // keeps the one flag trivially race-free across async signal entry.
    INTERRUPTED.load(Ordering::SeqCst)
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{AtomicBool, Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`. Returns the previous handler (unused).
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// The handler body is a single atomic store — async-signal-safe.
    extern "C" fn on_signal(_signum: i32) {
        // ordering: pairs with the SeqCst load in `interrupted`.
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    static INSTALLED: AtomicBool = AtomicBool::new(false);

    pub fn install() {
        // ordering: one-shot guard — the SeqCst swap pairs with the
        // competing SeqCst swap in install; the winner of a concurrent
        // race is unambiguous (install is idempotent anyway).
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        // SAFETY: `signal` is the POSIX entry point; the handler only
        // performs an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent; no-op off Unix).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_flag_starts_clear() {
        install();
        install();
        // The test harness has not been signalled.
        assert!(!interrupted());
    }
}
