//! The job state machine and bounded-admission store.
//!
//! ```text
//!            submit               claim              stop conditions
//! client ──► Queued ──────────► Running ──────────► Done
//!               │                  │ ├─ poll error ► Failed { reason }
//!               │ DELETE           │ ├─ DELETE     ► Cancelled
//!               ▼                  │ └─ drain      ► Interrupted (spooled)
//!            Cancelled ◄───────────┘
//! ```
//!
//! Admission is a bounded queue: when `queue_depth` jobs are already
//! waiting, `submit` refuses with [`AdmitError::QueueFull`] (HTTP 429)
//! instead of buffering unboundedly — the paper's host runs one solve
//! at a time, and the serving layer keeps that property per job slot
//! rather than oversubscribing the machine. During drain every submit
//! refuses with [`AdmitError::Draining`] (HTTP 503).
//!
//! All transitions go through one mutex; a condvar wakes both the
//! solver worker (new work) and event streamers (new progress).

use crate::spec::JobSpec;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Monotone job identifier, 1-based.
pub type JobId = u64;

/// Where a job sits in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting in the bounded queue.
    Queued,
    /// Owned by the solver worker; an `AbsSession` is live.
    Running,
    /// Stop condition met; `result` is populated.
    Done,
    /// The session refused to start or a poll errored; `error` says why.
    Failed,
    /// Cancelled by `DELETE` (queued or mid-solve; a mid-solve cancel
    /// still carries the partial result).
    Cancelled,
    /// Checkpointed to the spool during drain; a restarted server with
    /// `--resume-jobs` re-queues it with its baseline intact.
    Interrupted,
}

impl JobPhase {
    /// Stable lowercase label used in every JSON body.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done => "done",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
            Self::Interrupted => "interrupted",
        }
    }

    /// Terminal phases never change again.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Done | Self::Failed | Self::Cancelled)
    }
}

/// One progress sample on the event stream. `best_energy` is monotone
/// non-increasing over `seq` by construction: it is read from the
/// session's incumbent, which only improves.
#[derive(Clone, Debug, Serialize)]
pub struct ProgressEvent {
    /// Position in the job's event log, 0-based.
    pub seq: u64,
    /// Cumulative solve wall-clock (across resumes) in milliseconds.
    pub elapsed_ms: u64,
    /// Incumbent best energy, absent until the first record arrives.
    pub best_energy: Option<i64>,
    /// Cumulative device flips.
    pub flips: u64,
}

/// The final accounting of a finished (or cancelled-with-partial) job.
#[derive(Clone, Debug, Serialize)]
pub struct JobResult {
    /// Best energy found.
    pub best_energy: i64,
    /// Best solution as a `0`/`1` string, bit 0 first.
    pub solution: String,
    /// Whether the target energy (if any) was reached.
    pub reached_target: bool,
    /// Cumulative wall-clock milliseconds (across resumes).
    pub elapsed_ms: u64,
    /// Cumulative device flips.
    pub total_flips: u64,
    /// Search units started (the `m` of the Theorem-1 projection).
    pub search_units: u64,
    /// Solutions evaluated; dense arms satisfy
    /// `evaluated == (total_flips + search_units) * (n + 1)` exactly,
    /// including across a drain/resume cycle.
    pub evaluated: u64,
}

/// One job record.
#[derive(Debug)]
pub struct Job {
    /// Identifier (also the spool file stem).
    pub id: JobId,
    /// Parsed submission.
    pub spec: JobSpec,
    /// Current phase.
    pub phase: JobPhase,
    /// Set by `DELETE`; the solver worker honours it at the next poll.
    pub cancel_requested: bool,
    /// Progress log, append-only.
    pub events: Vec<ProgressEvent>,
    /// Failure reason when `phase == Failed`.
    pub error: Option<String>,
    /// Final accounting when terminal (Done, or Cancelled mid-solve).
    pub result: Option<JobResult>,
    /// Checkpoint to resume from (jobs restored via `--resume-jobs`).
    pub resume_from: Option<PathBuf>,
    /// Canonical instance digest (hex), set when the worker claims the
    /// job — the warm-start cache key, exposed in the status body.
    pub problem_hash: Option<String>,
    /// Whether the session was seeded from cached incumbents.
    pub warm_started: bool,
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The bounded queue is full: HTTP 429.
    QueueFull,
    /// The server is draining after SIGINT/SIGTERM: HTTP 503.
    Draining,
}

#[derive(Default)]
struct Inner {
    jobs: BTreeMap<JobId, Job>,
    queue: VecDeque<JobId>,
    next_id: JobId,
    draining: bool,
}

/// The shared job table: one mutex, one condvar.
pub struct JobStore {
    inner: Mutex<Inner>,
    cv: Condvar,
    queue_depth: usize,
}

/// Poison-tolerant lock: a panicking HTTP worker must not wedge the
/// whole server, and every invariant here is re-checked by readers.
fn lock<'a>(m: &'a Mutex<Inner>) -> MutexGuard<'a, Inner> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl JobStore {
    /// Creates a store admitting at most `queue_depth` queued jobs.
    #[must_use]
    pub fn new(queue_depth: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                next_id: 1,
                ..Inner::default()
            }),
            cv: Condvar::new(),
            queue_depth: queue_depth.max(1),
        }
    }

    /// Admits a job, or refuses when the queue is full / draining.
    ///
    /// `fixed_id` preserves identifiers across a `--resume-jobs`
    /// restart; fresh submissions pass `None`. Restores bypass the
    /// queue bound — they were admitted once already, and a drained
    /// predecessor can leave `depth + 1` non-terminal jobs (the one
    /// that was running plus a full queue).
    ///
    /// # Errors
    /// [`AdmitError`] as above.
    pub fn submit(
        &self,
        spec: JobSpec,
        resume_from: Option<PathBuf>,
        fixed_id: Option<JobId>,
    ) -> Result<JobId, AdmitError> {
        let mut g = lock(&self.inner);
        if g.draining {
            return Err(AdmitError::Draining);
        }
        if fixed_id.is_none() && g.queue.len() >= self.queue_depth {
            return Err(AdmitError::QueueFull);
        }
        let id = match fixed_id {
            Some(id) => {
                g.next_id = g.next_id.max(id + 1);
                id
            }
            None => {
                let id = g.next_id;
                g.next_id += 1;
                id
            }
        };
        g.jobs.insert(
            id,
            Job {
                id,
                spec,
                phase: JobPhase::Queued,
                cancel_requested: false,
                events: Vec::new(),
                error: None,
                result: None,
                resume_from,
                problem_hash: None,
                warm_started: false,
            },
        );
        g.queue.push_back(id);
        self.cv.notify_all();
        Ok(id)
    }

    /// Blocks until a queued job is available (marking it Running and
    /// returning its id) or the store starts draining (`None`).
    pub fn claim_next(&self) -> Option<JobId> {
        let mut g = lock(&self.inner);
        loop {
            if g.draining {
                return None;
            }
            if let Some(id) = g.queue.pop_front() {
                if let Some(job) = g.jobs.get_mut(&id) {
                    // A queued job cancelled before its turn never runs.
                    if job.cancel_requested {
                        job.phase = JobPhase::Cancelled;
                        self.cv.notify_all();
                        continue;
                    }
                    job.phase = JobPhase::Running;
                    self.cv.notify_all();
                    return Some(id);
                }
            } else {
                g = self
                    .cv
                    .wait(g)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    /// Flips the store into drain mode: submissions refuse, the worker
    /// stops claiming, event streams close out.
    pub fn begin_drain(&self) {
        lock(&self.inner).draining = true;
        self.cv.notify_all();
    }

    /// Whether drain mode is active.
    #[must_use]
    pub fn draining(&self) -> bool {
        lock(&self.inner).draining
    }

    /// Runs `f` over the job, if it exists.
    pub fn with_job<R>(&self, id: JobId, f: impl FnOnce(&Job) -> R) -> Option<R> {
        lock(&self.inner).jobs.get(&id).map(f)
    }

    /// Mutates the job and wakes event waiters.
    pub fn update<R>(&self, id: JobId, f: impl FnOnce(&mut Job) -> R) -> Option<R> {
        let out = lock(&self.inner).jobs.get_mut(&id).map(f);
        self.cv.notify_all();
        out
    }

    /// Requests cancellation. A queued job is cancelled on the spot; a
    /// running one is flagged for the solver worker's next poll round.
    /// Returns the phase after the request, `None` for an unknown id.
    pub fn cancel(&self, id: JobId) -> Option<JobPhase> {
        let mut g = lock(&self.inner);
        let job = g.jobs.get_mut(&id)?;
        let phase = match job.phase {
            JobPhase::Queued => {
                job.cancel_requested = true;
                job.phase = JobPhase::Cancelled;
                JobPhase::Cancelled
            }
            JobPhase::Running => {
                job.cancel_requested = true;
                JobPhase::Running
            }
            terminal => terminal,
        };
        if phase == JobPhase::Cancelled {
            g.queue.retain(|&q| q != id);
        }
        self.cv.notify_all();
        Some(phase)
    }

    /// 0-based position in the wait queue, for status bodies.
    #[must_use]
    pub fn queue_position(&self, id: JobId) -> Option<usize> {
        lock(&self.inner).queue.iter().position(|&q| q == id)
    }

    /// Number of queued (not running) jobs.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        lock(&self.inner).queue.len()
    }

    /// Waits up to `timeout` for events past `from_seq` or a phase
    /// change, then returns `(new events, phase, draining)`. `None` for
    /// an unknown id.
    pub fn wait_events(
        &self,
        id: JobId,
        from_seq: usize,
        timeout: Duration,
    ) -> Option<(Vec<ProgressEvent>, JobPhase, bool)> {
        let mut g = lock(&self.inner);
        {
            let job = g.jobs.get(&id)?;
            if job.events.len() <= from_seq && !job.phase.is_terminal() && !g.draining {
                let (g2, _timed_out) = self
                    .cv
                    .wait_timeout(g, timeout)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                g = g2;
            }
        }
        let draining = g.draining;
        let job = g.jobs.get(&id)?;
        let fresh = job.events.get(from_seq..).unwrap_or(&[]).to_vec();
        Some((fresh, job.phase, draining))
    }

    /// Ids and phases of every non-terminal job, in id order — the
    /// drain manifest.
    #[must_use]
    pub fn non_terminal(&self) -> Vec<(JobId, JobPhase)> {
        lock(&self.inner)
            .jobs
            .values()
            .filter(|j| !j.phase.is_terminal())
            .map(|j| (j.id, j.phase))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;

    fn spec() -> JobSpec {
        parse_spec(r#"{"problem": {"format": "dense", "n": 1, "upper": [-1]}}"#).unwrap()
    }

    #[test]
    fn bounded_queue_admits_then_refuses() {
        let store = JobStore::new(2);
        let a = store.submit(spec(), None, None).unwrap();
        assert_eq!(a, 1);
        // Claim moves job 1 out of the queue: capacity counts *waiting*
        // jobs only.
        assert_eq!(store.claim_next(), Some(1));
        store.submit(spec(), None, None).unwrap();
        store.submit(spec(), None, None).unwrap();
        assert_eq!(
            store.submit(spec(), None, None).unwrap_err(),
            AdmitError::QueueFull
        );
        store.begin_drain();
        assert_eq!(
            store.submit(spec(), None, None).unwrap_err(),
            AdmitError::Draining
        );
        assert_eq!(store.claim_next(), None);
    }

    #[test]
    fn queued_cancel_never_runs() {
        let store = JobStore::new(4);
        let id = store.submit(spec(), None, None).unwrap();
        assert_eq!(store.cancel(id), Some(JobPhase::Cancelled));
        assert_eq!(store.queue_len(), 0);
        store.begin_drain();
        assert_eq!(store.claim_next(), None);
        assert_eq!(store.with_job(id, |j| j.phase), Some(JobPhase::Cancelled));
    }

    #[test]
    fn running_cancel_sets_the_flag_only() {
        let store = JobStore::new(4);
        let id = store.submit(spec(), None, None).unwrap();
        assert_eq!(store.claim_next(), Some(id));
        assert_eq!(store.cancel(id), Some(JobPhase::Running));
        assert_eq!(store.with_job(id, |j| j.cancel_requested), Some(true));
    }

    #[test]
    fn fixed_ids_advance_the_counter() {
        let store = JobStore::new(8);
        assert_eq!(store.submit(spec(), None, Some(7)).unwrap(), 7);
        assert_eq!(store.submit(spec(), None, None).unwrap(), 8);
    }

    #[test]
    fn queue_position_recomputes_under_concurrent_dequeues() {
        // Several solver workers claim off the same queue at once; any
        // job still queued must report a 0-based position consistent
        // with the *current* queue, never a stale pre-claim index.
        use std::sync::Arc;
        let store = Arc::new(JobStore::new(16));
        let ids: Vec<JobId> = (0..8)
            .map(|_| store.submit(spec(), None, None).unwrap())
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(store.queue_position(id), Some(i));
        }
        // Four concurrent claimers dequeue two jobs each.
        let mut claimers = Vec::new();
        for _ in 0..4 {
            let store = Arc::clone(&store);
            claimers.push(std::thread::spawn(move || {
                [store.claim_next().unwrap(), store.claim_next().unwrap()]
            }));
        }
        let mut claimed: Vec<JobId> = claimers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        claimed.sort_unstable();
        // FIFO across workers: the eight oldest jobs were claimed,
        // each exactly once.
        assert_eq!(claimed, ids);
        // Fill in behind the concurrent dequeues and check positions
        // recompute from scratch.
        let late_a = store.submit(spec(), None, None).unwrap();
        let late_b = store.submit(spec(), None, None).unwrap();
        assert_eq!(store.queue_position(late_a), Some(0));
        assert_eq!(store.queue_position(late_b), Some(1));
        for &id in &ids {
            assert_eq!(
                store.queue_position(id),
                None,
                "a claimed job must leave the queue entirely"
            );
            assert_eq!(store.with_job(id, |j| j.phase), Some(JobPhase::Running));
        }
        // A cancellation in the middle shifts later positions down.
        assert_eq!(store.cancel(late_a), Some(JobPhase::Cancelled));
        assert_eq!(store.queue_position(late_b), Some(0));
    }

    #[test]
    fn wait_events_returns_fresh_suffix() {
        let store = JobStore::new(4);
        let id = store.submit(spec(), None, None).unwrap();
        store.update(id, |j| {
            j.events.push(ProgressEvent {
                seq: 0,
                elapsed_ms: 1,
                best_energy: Some(-1),
                flips: 10,
            });
            j.phase = JobPhase::Done;
        });
        let (events, phase, draining) =
            store.wait_events(id, 0, Duration::from_millis(10)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(phase, JobPhase::Done);
        assert!(!draining);
        let (events, _, _) = store.wait_events(id, 1, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty());
    }
}
