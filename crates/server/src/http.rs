//! A minimal HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The workspace builds fully offline, so there is no tokio/axum (or
//! any async runtime) to reach for; the serving layer needs exactly
//! five routes, one request per connection, and Server-Sent Events for
//! the progress stream — a hand-rolled parser over blocking sockets
//! covers that in a few hundred auditable lines (DESIGN.md §12 records
//! the trade-off). Every connection is `Connection: close`: job
//! submission and polling are low-rate control traffic, not the data
//! path, and the solver itself never blocks on a socket.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request line + headers.
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body (a dense 2048-bit upper triangle in
/// JSON is ~15 MiB; edge lists are far smaller).
pub const MAX_BODY: usize = 32 * 1024 * 1024;
/// How long a worker waits on a slow client before giving up.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path component only (no query parsing; none of the routes need
    /// it).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// A request the parser refuses, mapped to a status code.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing: 400.
    BadRequest(String),
    /// Declared body beyond [`MAX_BODY`]: 413.
    PayloadTooLarge,
    /// The socket died or timed out mid-request; nothing to answer.
    Disconnected,
}

/// Reads and parses exactly one request from `stream`.
///
/// # Errors
/// [`HttpError`] as above; the caller maps `BadRequest` /
/// `PayloadTooLarge` to responses and drops `Disconnected` silently.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::BadRequest("request head too large".into()));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|_| HttpError::Disconnected)?;
        if n == 0 {
            return Err(HttpError::Disconnected);
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::BadRequest("bad Content-Length".into()))?;
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::PayloadTooLarge);
    }

    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|_| HttpError::Disconnected)?;
        if n == 0 {
            return Err(HttpError::BadRequest("truncated body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Canonical reason phrases for the status codes the server emits.
#[must_use]
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response and flushes.
///
/// # Errors
/// Propagates socket errors; the caller treats them as a disconnect.
pub fn write_response(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(code),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Starts a Server-Sent Events response; events follow via
/// [`write_sse_event`].
///
/// # Errors
/// Propagates socket errors.
pub fn write_sse_header(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Writes one SSE frame (`event:` line only when `name` is given).
///
/// # Errors
/// Propagates socket errors; a failed write means the client went away
/// and the stream loop should end.
pub fn write_sse_event(
    stream: &mut TcpStream,
    name: Option<&str>,
    data: &str,
) -> std::io::Result<()> {
    if let Some(name) = name {
        stream.write_all(b"event: ")?;
        stream.write_all(name.as_bytes())?;
        stream.write_all(b"\n")?;
    }
    stream.write_all(b"data: ")?;
    stream.write_all(data.as_bytes())?;
    stream.write_all(b"\n\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs the parser against raw bytes via a real socket pair.
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let out = read_request(&mut conn);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse_raw(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"{\"a\": 1}\n");
    }

    #[test]
    fn parses_a_get_and_strips_query() {
        let req = parse_raw(b"GET /jobs/7/events?from=3 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/jobs/7/events");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_bad_framing() {
        assert!(matches!(
            parse_raw(b"GET\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / SPDY/9\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let head = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse_raw(head.as_bytes()),
            Err(HttpError::PayloadTooLarge)
        ));
    }
}
