//! Server observability: a dedicated [`abs_telemetry::Registry`] for
//! serving-layer counters plus a live slot for the running session's
//! solver snapshot.
//!
//! `GET /metrics` renders both in one Prometheus text exposition: the
//! server registry first (`abs_server_*` families), then the most
//! recent solver snapshot published by the worker at a poll boundary
//! (`abs_*` families) — live mid-solve, not only at solve end. The
//! solver families carry the currently-running job's view; between jobs
//! the last finished job's final fold stays visible.

use abs_telemetry::expose::prometheus_text;
use abs_telemetry::{Counter, Gauge, MetricsSnapshot, Registry};
use std::sync::{Arc, Mutex};

/// All serving-layer instruments, registered once at startup.
pub struct ServerMetrics {
    registry: Registry,
    /// Jobs admitted by `POST /jobs`.
    pub jobs_submitted: Arc<Counter>,
    /// Submissions refused with 429 (queue full) or 503 (draining).
    pub jobs_rejected: Arc<Counter>,
    /// Jobs finished in `done`.
    pub jobs_done: Arc<Counter>,
    /// Jobs finished in `failed`.
    pub jobs_failed: Arc<Counter>,
    /// Jobs finished in `cancelled`.
    pub jobs_cancelled: Arc<Counter>,
    /// Jobs checkpointed to the spool during drain.
    pub jobs_interrupted: Arc<Counter>,
    /// HTTP requests accepted (any route, any outcome).
    pub http_requests: Arc<Counter>,
    /// Jobs currently waiting in the bounded queue.
    pub queue_depth: Arc<Gauge>,
    /// 1 while a session is live, 0 otherwise.
    pub jobs_running: Arc<Gauge>,
    live: Mutex<Option<MetricsSnapshot>>,
}

impl ServerMetrics {
    /// Registers every instrument.
    #[must_use]
    pub fn new() -> Self {
        let mut r = Registry::new();
        let jobs_submitted = r.counter(
            "abs_server_jobs_submitted_total",
            &[],
            "Jobs admitted by POST /jobs.",
        );
        let jobs_rejected = r.counter(
            "abs_server_jobs_rejected_total",
            &[],
            "Submissions refused by admission control (queue full or draining).",
        );
        let jobs_done = r.counter(
            "abs_server_jobs_done_total",
            &[],
            "Jobs that met a stop condition.",
        );
        let jobs_failed = r.counter(
            "abs_server_jobs_failed_total",
            &[],
            "Jobs that failed (session start, poll error, or checkpoint write).",
        );
        let jobs_cancelled = r.counter(
            "abs_server_jobs_cancelled_total",
            &[],
            "Jobs cancelled via DELETE.",
        );
        let jobs_interrupted = r.counter(
            "abs_server_jobs_interrupted_total",
            &[],
            "Jobs checkpointed to the spool during drain.",
        );
        let http_requests = r.counter(
            "abs_server_http_requests_total",
            &[],
            "HTTP requests read off the socket.",
        );
        let queue_depth = r.gauge(
            "abs_server_queue_depth",
            &[],
            "Jobs waiting in the bounded admission queue.",
        );
        let jobs_running = r.gauge(
            "abs_server_jobs_running",
            &[],
            "Live solver sessions (0 or 1).",
        );
        Self {
            registry: r,
            jobs_submitted,
            jobs_rejected,
            jobs_done,
            jobs_failed,
            jobs_cancelled,
            jobs_interrupted,
            http_requests,
            queue_depth,
            jobs_running,
            live: Mutex::new(None),
        }
    }

    /// Publishes the running session's latest aggregator snapshot.
    pub fn publish_live(&self, snapshot: MetricsSnapshot) {
        *self
            .live
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(snapshot);
    }

    /// Renders the combined Prometheus text exposition.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = prometheus_text(&self.registry.snapshot());
        let live = self
            .live
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(snapshot) = live.as_ref() {
            out.push_str(&prometheus_text(snapshot));
        }
        out
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abs_telemetry::expose::parse_prometheus;

    #[test]
    fn render_is_valid_exposition_with_and_without_live() {
        let m = ServerMetrics::new();
        m.jobs_submitted.inc();
        m.queue_depth.set(2.0);
        let samples = parse_prometheus(&m.render()).unwrap();
        assert!(samples >= 9, "all server families present: {samples}");

        // Fold in a live solver snapshot; the merged text must stay a
        // valid exposition (the CI smoke check curls exactly this).
        let mut solver = Registry::new();
        solver
            .counter("abs_flips_total", &[("device", "0")], "Flips.")
            .add(7);
        m.publish_live(solver.snapshot());
        let text = m.render();
        assert!(text.contains("abs_server_jobs_submitted_total 1"));
        assert!(text.contains("abs_flips_total"));
        parse_prometheus(&text).unwrap();
    }
}
