//! Server observability: a dedicated [`abs_telemetry::Registry`] for
//! serving-layer counters plus a live slot for the running session's
//! solver snapshot.
//!
//! `GET /metrics` renders both in one Prometheus text exposition: the
//! server registry first (`abs_server_*` families), then the most
//! recent solver snapshot published by the worker at a poll boundary
//! (`abs_*` families) — live mid-solve, not only at solve end. The
//! solver families carry the currently-running job's view; between jobs
//! the last finished job's final fold stays visible.

use abs_telemetry::expose::prometheus_text;
use abs_telemetry::{Counter, Gauge, MetricsSnapshot, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-tenant `abs_pool_blocks_leased` gauges, created on demand as
/// tenants first lease capacity. Lives in its own registry so the
/// label-bearing family renders after the plain server families.
#[derive(Default)]
struct PoolGauges {
    registry: Registry,
    tenants: HashMap<String, Arc<Gauge>>,
}

/// All serving-layer instruments, registered once at startup.
pub struct ServerMetrics {
    registry: Registry,
    /// Jobs admitted by `POST /jobs`.
    pub jobs_submitted: Arc<Counter>,
    /// Submissions refused with 429 (queue full) or 503 (draining).
    pub jobs_rejected: Arc<Counter>,
    /// Jobs finished in `done`.
    pub jobs_done: Arc<Counter>,
    /// Jobs finished in `failed`.
    pub jobs_failed: Arc<Counter>,
    /// Jobs finished in `cancelled`.
    pub jobs_cancelled: Arc<Counter>,
    /// Jobs checkpointed to the spool during drain.
    pub jobs_interrupted: Arc<Counter>,
    /// HTTP requests accepted (any route, any outcome).
    pub http_requests: Arc<Counter>,
    /// Jobs currently waiting in the bounded queue.
    pub queue_depth: Arc<Gauge>,
    /// Count of live solver sessions (kept real under concurrency by
    /// [`ServerMetrics::job_started`] / [`ServerMetrics::job_finished`]).
    pub jobs_running: Arc<Gauge>,
    /// Authoritative running count backing `jobs_running`; the gauge
    /// API is set-only, so concurrent workers go through this atomic.
    running: AtomicI64,
    pool: Mutex<PoolGauges>,
    live: Mutex<Option<MetricsSnapshot>>,
}

impl ServerMetrics {
    /// Registers every instrument.
    #[must_use]
    pub fn new() -> Self {
        let mut r = Registry::new();
        let jobs_submitted = r.counter(
            "abs_server_jobs_submitted_total",
            &[],
            "Jobs admitted by POST /jobs.",
        );
        let jobs_rejected = r.counter(
            "abs_server_jobs_rejected_total",
            &[],
            "Submissions refused by admission control (queue full or draining).",
        );
        let jobs_done = r.counter(
            "abs_server_jobs_done_total",
            &[],
            "Jobs that met a stop condition.",
        );
        let jobs_failed = r.counter(
            "abs_server_jobs_failed_total",
            &[],
            "Jobs that failed (session start, poll error, or checkpoint write).",
        );
        let jobs_cancelled = r.counter(
            "abs_server_jobs_cancelled_total",
            &[],
            "Jobs cancelled via DELETE.",
        );
        let jobs_interrupted = r.counter(
            "abs_server_jobs_interrupted_total",
            &[],
            "Jobs checkpointed to the spool during drain.",
        );
        let http_requests = r.counter(
            "abs_server_http_requests_total",
            &[],
            "HTTP requests read off the socket.",
        );
        let queue_depth = r.gauge(
            "abs_server_queue_depth",
            &[],
            "Jobs waiting in the bounded admission queue.",
        );
        let jobs_running = r.gauge("abs_server_jobs_running", &[], "Live solver sessions.");
        Self {
            registry: r,
            jobs_submitted,
            jobs_rejected,
            jobs_done,
            jobs_failed,
            jobs_cancelled,
            jobs_interrupted,
            http_requests,
            queue_depth,
            jobs_running,
            running: AtomicI64::new(0),
            pool: Mutex::new(PoolGauges::default()),
            live: Mutex::new(None),
        }
    }

    /// A solver worker picked up a job: bumps the live-session count.
    pub fn job_started(&self) {
        // Pure occupancy counter — no data is published under it, so
        // Relaxed is exact; the gauge tolerates scrape-order races.
        let now = self.running.fetch_add(1, Ordering::Relaxed) + 1;
        self.jobs_running.set(now as f64);
    }

    /// A solver worker finished (or parked) a job.
    pub fn job_finished(&self) {
        // Same counter as job_started: Relaxed, no publication.
        let now = self.running.fetch_sub(1, Ordering::Relaxed) - 1;
        self.jobs_running.set(now.max(0) as f64);
    }

    /// Publishes the device pool's per-tenant holdings as
    /// `abs_pool_blocks_leased{tenant="..."}` gauges. Tenants absent
    /// from `per_tenant` drop to 0 (their series stays visible, which
    /// is what a scrape-based collector expects).
    pub fn set_pool_leased(&self, per_tenant: &[(String, usize)]) {
        let mut pool = self
            .pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for gauge in pool.tenants.values() {
            gauge.set(0.0);
        }
        for (tenant, blocks) in per_tenant {
            if !pool.tenants.contains_key(tenant) {
                let gauge = pool.registry.gauge(
                    "abs_pool_blocks_leased",
                    &[("tenant", tenant)],
                    "Device-pool blocks currently leased, per tenant.",
                );
                pool.tenants.insert(tenant.clone(), gauge);
            }
            if let Some(gauge) = pool.tenants.get(tenant) {
                gauge.set(*blocks as f64);
            }
        }
    }

    /// Publishes the running session's latest aggregator snapshot.
    pub fn publish_live(&self, snapshot: MetricsSnapshot) {
        *self
            .live
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(snapshot);
    }

    /// Renders the combined Prometheus text exposition.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = prometheus_text(&self.registry.snapshot());
        {
            let pool = self
                .pool
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if !pool.tenants.is_empty() {
                out.push_str(&prometheus_text(&pool.registry.snapshot()));
            }
        }
        let live = self
            .live
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(snapshot) = live.as_ref() {
            out.push_str(&prometheus_text(snapshot));
        }
        out
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abs_telemetry::expose::parse_prometheus;

    #[test]
    fn render_is_valid_exposition_with_and_without_live() {
        let m = ServerMetrics::new();
        m.jobs_submitted.inc();
        m.queue_depth.set(2.0);
        let samples = parse_prometheus(&m.render()).unwrap();
        assert!(samples >= 9, "all server families present: {samples}");

        // Fold in a live solver snapshot; the merged text must stay a
        // valid exposition (the CI smoke check curls exactly this).
        let mut solver = Registry::new();
        solver
            .counter("abs_flips_total", &[("device", "0")], "Flips.")
            .add(7);
        m.publish_live(solver.snapshot());
        let text = m.render();
        assert!(text.contains("abs_server_jobs_submitted_total 1"));
        assert!(text.contains("abs_flips_total"));
        parse_prometheus(&text).unwrap();
    }

    #[test]
    fn jobs_running_counts_concurrent_sessions() {
        let m = Arc::new(ServerMetrics::new());
        // Interleave starts/finishes from several threads; the gauge
        // must track the true live count, not saturate at 0/1.
        m.job_started();
        m.job_started();
        m.job_started();
        assert_eq!(m.jobs_running.get(), 3.0);
        m.job_finished();
        assert_eq!(m.jobs_running.get(), 2.0);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    m.job_started();
                    m.job_finished();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.jobs_running.get(), 2.0, "balanced start/finish pairs");
        m.job_finished();
        m.job_finished();
        assert_eq!(m.jobs_running.get(), 0.0);
    }

    #[test]
    fn pool_gauges_carry_tenant_labels_and_zero_on_release() {
        let m = ServerMetrics::new();
        m.set_pool_leased(&[("alice".to_string(), 12), ("bob".to_string(), 8)]);
        let text = m.render();
        assert!(text.contains("abs_pool_blocks_leased{tenant=\"alice\"} 12"));
        assert!(text.contains("abs_pool_blocks_leased{tenant=\"bob\"} 8"));
        parse_prometheus(&text).unwrap();
        // bob releases everything: the series stays, at 0.
        m.set_pool_leased(&[("alice".to_string(), 4)]);
        let text = m.render();
        assert!(text.contains("abs_pool_blocks_leased{tenant=\"alice\"} 4"));
        assert!(text.contains("abs_pool_blocks_leased{tenant=\"bob\"} 0"));
    }
}
