//! The drain spool: how in-flight work survives a server restart.
//!
//! Layout under the `--spool` directory:
//!
//! ```text
//! spool/
//!   jobs.json     drain manifest: [{"id": 3, "state": "interrupted"}, …]
//!   3.job         verbatim POST /jobs body of job 3
//!   3.ckpt[.k]    AbsSession checkpoint generations of job 3
//! ```
//!
//! Job bodies are written at admission time (so a crash loses nothing
//! that was acknowledged), checkpoints at stride boundaries and on
//! drain, and the manifest only during graceful shutdown. On restart
//! with `--resume-jobs`, the manifest is consumed: interrupted jobs
//! resume from their checkpoint (cumulative accounting intact, the
//! PR-7 machinery), queued jobs are re-queued, and the manifest file is
//! removed so a second restart does not double-load.

use crate::job::JobId;
use std::io;
use std::path::{Path, PathBuf};

/// Path of a job's verbatim submission body.
#[must_use]
pub fn job_file(spool: &Path, id: JobId) -> PathBuf {
    spool.join(format!("{id}.job"))
}

/// Path of a job's checkpoint chain head.
#[must_use]
pub fn ckpt_file(spool: &Path, id: JobId) -> PathBuf {
    spool.join(format!("{id}.ckpt"))
}

fn manifest_file(spool: &Path) -> PathBuf {
    spool.join("jobs.json")
}

/// One manifest entry: a job that was not terminal at drain time.
#[derive(Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Job identifier (also the spool file stem).
    pub id: JobId,
    /// `"queued"` or `"interrupted"`.
    pub state: String,
}

/// Writes the drain manifest (atomically: tmp + rename).
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_manifest(spool: &Path, entries: &[ManifestEntry]) -> io::Result<()> {
    let mut body = String::from("{\"jobs\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("{{\"id\": {}, \"state\": \"{}\"}}", e.id, e.state));
    }
    body.push_str("]}\n");
    let tmp = spool.join("jobs.json.tmp");
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, manifest_file(spool))
}

/// Reads and *consumes* the manifest: entries are returned in id order
/// and the file is removed so the load is one-shot.
///
/// # Errors
/// Filesystem errors, or `InvalidData` on a malformed manifest. A
/// missing manifest is an empty load, not an error.
pub fn take_manifest(spool: &Path) -> io::Result<Vec<ManifestEntry>> {
    let path = manifest_file(spool);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let value = serde_json::from_str(&text).map_err(|e| bad(&format!("manifest: {e}")))?;
    let jobs = value
        .get("jobs")
        .and_then(|j| j.as_array())
        .ok_or_else(|| bad("manifest: missing \"jobs\" array"))?;
    let mut entries = Vec::with_capacity(jobs.len());
    for j in jobs {
        let id = j
            .get("id")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| bad("manifest: entry without integer id"))?;
        let state = j
            .get("state")
            .and_then(|v| v.as_str())
            .ok_or_else(|| bad("manifest: entry without state"))?;
        entries.push(ManifestEntry {
            id,
            state: state.to_string(),
        });
    }
    entries.sort_by_key(|e| e.id);
    std::fs::remove_file(&path)?;
    Ok(entries)
}

/// Removes a terminal job's spool files (best-effort: the generations
/// trail `.1`, `.2`, … up to the configured keep count).
pub fn remove_job_files(spool: &Path, id: JobId, keep: usize) {
    let _ = std::fs::remove_file(job_file(spool, id));
    let ckpt = ckpt_file(spool, id);
    let _ = std::fs::remove_file(&ckpt);
    for k in 1..=keep {
        let mut os = ckpt.clone().into_os_string();
        os.push(format!(".{k}"));
        let _ = std::fs::remove_file(PathBuf::from(os));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("abs-spool-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips_and_is_consumed() {
        let spool = temp_spool("roundtrip");
        write_manifest(
            &spool,
            &[
                ManifestEntry {
                    id: 3,
                    state: "interrupted".into(),
                },
                ManifestEntry {
                    id: 5,
                    state: "queued".into(),
                },
            ],
        )
        .unwrap();
        let entries = take_manifest(&spool).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, 3);
        assert_eq!(entries[0].state, "interrupted");
        assert_eq!(entries[1].state, "queued");
        // Consumed: a second load sees nothing.
        assert!(take_manifest(&spool).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn missing_manifest_is_an_empty_load() {
        let spool = temp_spool("empty");
        assert!(take_manifest(&spool).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn malformed_manifest_is_invalid_data() {
        let spool = temp_spool("malformed");
        std::fs::write(spool.join("jobs.json"), "{\"jobs\": 7}").unwrap();
        let err = take_manifest(&spool).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&spool);
    }
}
