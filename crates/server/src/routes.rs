//! Route dispatch and handlers.
//!
//! Five routes, one request per connection:
//!
//! | route                  | handler         | outcome                      |
//! |------------------------|-----------------|------------------------------|
//! | `POST /jobs`           | `handle_submit` | 201 + id, 429 full, 503 drain|
//! | `GET /jobs/{id}`       | `handle_status` | 200 status/result JSON       |
//! | `GET /jobs/{id}/events`| `handle_events` | 200 SSE progress stream      |
//! | `DELETE /jobs/{id}`    | `handle_cancel` | 202 accepted, 200 if settled |
//! | `GET /metrics`         | `handle_metrics`| 200 Prometheus text          |
//!
//! Handlers return typed results — no panicking shortcuts; the lint
//! rule `server-no-unwrap-in-handler` holds every `handle_*` body to
//! that. [`ApiError`] carries the status code and a JSON error body.

use crate::http::{self, HttpError, Request};
use crate::job::{AdmitError, JobId, JobPhase, JobStore, ProgressEvent};
use crate::metrics::ServerMetrics;
use crate::spec::parse_spec;
use crate::spool;
use serde::write_json_string;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// How long one SSE wait round blocks before re-checking for drain.
const SSE_WAIT: Duration = Duration::from_millis(100);

/// Everything a handler can see.
pub struct AppState {
    /// The shared job table.
    pub store: Arc<JobStore>,
    /// Serving-layer instruments.
    pub metrics: Arc<ServerMetrics>,
    /// Spool directory (set when the server was started with `--spool`).
    pub spool: Option<PathBuf>,
}

/// A typed refusal: status code plus a JSON `{"error": …}` body.
#[derive(Debug)]
pub enum ApiError {
    /// 400 with a reason.
    BadRequest(String),
    /// 404: no such job.
    NotFound,
    /// 405: the path exists, the method does not.
    MethodNotAllowed,
    /// 429: the bounded queue is full.
    QueueFull,
    /// 503: drain in progress.
    Draining,
    /// 413: declared body too large.
    PayloadTooLarge,
    /// 500: an internal invariant failed.
    Internal(String),
}

impl ApiError {
    fn status(&self) -> u16 {
        match self {
            Self::BadRequest(_) => 400,
            Self::NotFound => 404,
            Self::MethodNotAllowed => 405,
            Self::QueueFull => 429,
            Self::Draining => 503,
            Self::PayloadTooLarge => 413,
            Self::Internal(_) => 500,
        }
    }

    fn body(&self) -> String {
        let msg = match self {
            Self::BadRequest(m) | Self::Internal(m) => m.clone(),
            Self::NotFound => "no such job".into(),
            Self::MethodNotAllowed => "method not allowed".into(),
            Self::QueueFull => "job queue is full; retry later".into(),
            Self::Draining => "server is draining".into(),
            Self::PayloadTooLarge => "request body too large".into(),
        };
        let mut out = String::from("{\"error\": ");
        write_json_string(&msg, &mut out);
        out.push_str("}\n");
        out
    }
}

/// A non-streaming handler's success: status code + JSON body.
type Reply = (u16, String);

/// Serves one connection end to end. Owns the socket so SSE can stream.
pub fn serve_connection(mut stream: TcpStream, state: &AppState) {
    let req = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::Disconnected) => return,
        Err(HttpError::PayloadTooLarge) => {
            let e = ApiError::PayloadTooLarge;
            let _ = http::write_response(
                &mut stream,
                e.status(),
                "application/json",
                e.body().as_bytes(),
            );
            return;
        }
        Err(HttpError::BadRequest(m)) => {
            let e = ApiError::BadRequest(m);
            let _ = http::write_response(
                &mut stream,
                e.status(),
                "application/json",
                e.body().as_bytes(),
            );
            return;
        }
    };
    state.metrics.http_requests.inc();

    // The SSE route keeps the socket; everything else returns a Reply.
    if let Some(id) = route_events(&req) {
        stream_events(&mut stream, state, id);
        return;
    }
    let reply = dispatch(&req, state);
    let (code, body) = match reply {
        Ok((code, body)) => (code, body),
        Err(e) => (e.status(), e.body()),
    };
    let content_type = if code == 200 && req.path == "/metrics" {
        "text/plain; version=0.0.4"
    } else {
        "application/json"
    };
    let _ = http::write_response(&mut stream, code, content_type, body.as_bytes());
}

/// `GET /jobs/{id}/events` is the one route that streams.
fn route_events(req: &Request) -> Option<JobId> {
    if req.method != "GET" {
        return None;
    }
    let rest = req.path.strip_prefix("/jobs/")?;
    let id = rest.strip_suffix("/events")?;
    id.parse().ok()
}

fn dispatch(req: &Request, state: &AppState) -> Result<Reply, ApiError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => handle_submit(req, state),
        ("GET", "/metrics") => handle_metrics(state),
        (method, path) => {
            let Some(rest) = path.strip_prefix("/jobs/") else {
                return Err(ApiError::NotFound);
            };
            let id: JobId = rest
                .parse()
                .map_err(|_| ApiError::BadRequest(format!("bad job id {rest:?}")))?;
            match method {
                "GET" => handle_status(state, id),
                "DELETE" => handle_cancel(state, id),
                _ => Err(ApiError::MethodNotAllowed),
            }
        }
    }
}

/// `POST /jobs`: parse, persist to the spool, admit.
fn handle_submit(req: &Request, state: &AppState) -> Result<Reply, ApiError> {
    let body = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::BadRequest("body is not UTF-8".into()))?;
    let spec = parse_spec(body).map_err(|e| ApiError::BadRequest(e.to_string()))?;
    let id = state.store.submit(spec, None, None).map_err(|e| {
        state.metrics.jobs_rejected.inc();
        match e {
            AdmitError::QueueFull => ApiError::QueueFull,
            AdmitError::Draining => ApiError::Draining,
        }
    })?;
    state.metrics.jobs_submitted.inc();
    state
        .metrics
        .queue_depth
        .set(state.store.queue_len() as f64);
    if let Some(dir) = &state.spool {
        // Persist the verbatim body now, so a drain can re-queue this
        // job even if it never starts. A failed write must not leave an
        // admitted-but-unspoolable job behind.
        if let Err(e) = std::fs::write(spool::job_file(dir, id), &req.body) {
            state.store.cancel(id);
            return Err(ApiError::Internal(format!("spooling job body: {e}")));
        }
    }
    Ok((201, format!("{{\"id\": {id}, \"state\": \"queued\"}}\n")))
}

/// `GET /jobs/{id}`: phase, queue position, result or error.
fn handle_status(state: &AppState, id: JobId) -> Result<Reply, ApiError> {
    let body = state
        .store
        .with_job(id, |j| {
            let mut out = format!("{{\"id\": {}, \"state\": \"{}\"", j.id, j.phase.label());
            if let Some(e) = &j.error {
                out.push_str(", \"error\": ");
                write_json_string(e, &mut out);
            }
            if let Some(r) = &j.result {
                out.push_str(", \"result\": ");
                out.push_str(&serde_json::to_string(r).unwrap_or_else(|_| "null".into()));
            }
            out.push_str(", \"tenant\": ");
            write_json_string(&j.spec.config.tenant, &mut out);
            if let Some(h) = &j.problem_hash {
                out.push_str(", \"problem_hash\": ");
                write_json_string(h, &mut out);
            }
            out.push_str(&format!(", \"warm_started\": {}", j.warm_started));
            out.push_str(&format!(", \"events\": {}", j.events.len()));
            (j.phase, out)
        })
        .ok_or(ApiError::NotFound)?;
    let (phase, mut out) = body;
    if phase == JobPhase::Queued {
        if let Some(pos) = state.store.queue_position(id) {
            out.push_str(&format!(", \"queue_position\": {pos}"));
        }
    }
    out.push_str("}\n");
    Ok((200, out))
}

/// `DELETE /jobs/{id}`: cooperative cancel.
fn handle_cancel(state: &AppState, id: JobId) -> Result<Reply, ApiError> {
    let phase = state.store.cancel(id).ok_or(ApiError::NotFound)?;
    match phase {
        // Still running: the worker honours the flag at its next poll.
        JobPhase::Running => Ok((202, "{\"state\": \"cancelling\"}\n".into())),
        settled => Ok((200, format!("{{\"state\": \"{}\"}}\n", settled.label()))),
    }
}

/// `GET /metrics`: server registry + live solver snapshot.
fn handle_metrics(state: &AppState) -> Result<Reply, ApiError> {
    Ok((200, state.metrics.render()))
}

/// `GET /jobs/{id}/events`: replay the whole event log, then follow
/// live until the job settles (or the server drains), closing with an
/// `end` frame that names the final state.
fn stream_events(stream: &mut TcpStream, state: &AppState, id: JobId) {
    if state.store.with_job(id, |_| ()).is_none() {
        let e = ApiError::NotFound;
        let _ = http::write_response(stream, e.status(), "application/json", e.body().as_bytes());
        return;
    }
    if http::write_sse_header(stream).is_err() {
        return;
    }
    let mut next_seq = 0usize;
    loop {
        let Some((fresh, phase, draining)) = state.store.wait_events(id, next_seq, SSE_WAIT) else {
            return;
        };
        for event in &fresh {
            if write_event_frame(stream, event).is_err() {
                return; // client went away
            }
        }
        next_seq += fresh.len();
        if phase.is_terminal() || phase == JobPhase::Interrupted || draining {
            let _ = http::write_sse_event(
                stream,
                Some("end"),
                &format!("{{\"state\": \"{}\"}}", phase.label()),
            );
            return;
        }
    }
}

fn write_event_frame(stream: &mut TcpStream, event: &ProgressEvent) -> std::io::Result<()> {
    let data = serde_json::to_string(event).unwrap_or_else(|_| "{}".into());
    http::write_sse_event(stream, Some("progress"), &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(depth: usize) -> AppState {
        AppState {
            store: Arc::new(JobStore::new(depth)),
            metrics: Arc::new(ServerMetrics::new()),
            spool: None,
        }
    }

    fn post_jobs(body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: "/jobs".into(),
            body: body.as_bytes().to_vec(),
        }
    }

    const TINY: &str = r#"{"problem": {"format": "dense", "n": 1, "upper": [-1]}}"#;

    #[test]
    fn submit_then_status_then_cancel() {
        let st = state(4);
        let (code, body) = dispatch(&post_jobs(TINY), &st).unwrap();
        assert_eq!(code, 201);
        assert!(body.contains("\"id\": 1"));

        let (code, body) = handle_status(&st, 1).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("\"state\": \"queued\""));
        assert!(body.contains("\"queue_position\": 0"));

        let (code, body) = handle_cancel(&st, 1).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("cancelled"));
        assert!(matches!(handle_status(&st, 9), Err(ApiError::NotFound)));
    }

    #[test]
    fn full_queue_surfaces_as_429_and_drain_as_503() {
        let st = state(1);
        dispatch(&post_jobs(TINY), &st).unwrap();
        assert!(matches!(
            dispatch(&post_jobs(TINY), &st),
            Err(ApiError::QueueFull)
        ));
        st.store.begin_drain();
        assert!(matches!(
            dispatch(&post_jobs(TINY), &st),
            Err(ApiError::Draining)
        ));
        assert_eq!(st.metrics.jobs_rejected.get(), 2);
    }

    #[test]
    fn bad_payloads_are_400_with_the_codec_reason() {
        let st = state(4);
        let err = dispatch(&post_jobs("{\"problem\": 3}"), &st).unwrap_err();
        match err {
            ApiError::BadRequest(m) => assert!(m.contains("problem"), "{m}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        assert!(matches!(
            dispatch(&post_jobs(TINY.trim_end_matches('}')), &st),
            Err(ApiError::BadRequest(_))
        ));
    }

    #[test]
    fn unknown_routes_and_methods() {
        let st = state(4);
        let get = |path: &str| Request {
            method: "GET".into(),
            path: path.into(),
            body: Vec::new(),
        };
        assert!(matches!(
            dispatch(&get("/nope"), &st),
            Err(ApiError::NotFound)
        ));
        assert!(matches!(
            dispatch(
                &Request {
                    method: "PUT".into(),
                    path: "/jobs/1".into(),
                    body: Vec::new()
                },
                &st
            ),
            Err(ApiError::MethodNotAllowed)
        ));
        assert!(matches!(
            dispatch(&get("/jobs/xyz"), &st),
            Err(ApiError::BadRequest(_))
        ));
        // The events route only matches GET.
        assert_eq!(route_events(&get("/jobs/3/events")), Some(3));
        assert_eq!(
            route_events(&Request {
                method: "DELETE".into(),
                path: "/jobs/3/events".into(),
                body: Vec::new()
            }),
            None
        );
    }

    #[test]
    fn metrics_route_renders() {
        let st = state(4);
        let (code, body) = handle_metrics(&st).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("abs_server_jobs_submitted_total"));
    }
}
