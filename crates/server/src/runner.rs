//! The solver workers: N threads, each driving one live
//! [`abs::AbsSession`] at a time over a shared [`vgpu::DevicePool`].
//!
//! The paper's host drives a single bulk-search machine; PR 9 kept
//! that shape (one worker, whole machine). This runner generalises it:
//! jobs are claimed off the bounded queue in FIFO order by a small
//! pool of workers, and each claimed job *leases* its device/block
//! geometry from the shared pool before its session starts — N
//! concurrent sessions, bounded by pool capacity, each on its own
//! freshly-allocated `GlobalMem` regions (isolation is structural; see
//! `vgpu::pool`). Every lease is acquired and released in exactly one
//! place in this file — the `pool-lease-discipline` lint rule holds us
//! to that.
//!
//! Before leasing, the worker digests the instance
//! ([`qubo::Qubo::content_hash`]) and consults the shared
//! [`abs::ProblemCache`]: a repeat submission reuses the cached padded
//! matrix and seeds the GA pool from the best solutions of earlier
//! solves, so it starts from incumbents, not random bits. Finished
//! jobs record their best back into the cache.
//!
//! A worker owns every phase transition out of `Running` for the jobs
//! it claims:
//!
//! * a stop condition (or watchdog deadline with an incumbent) ends the
//!   job `done`;
//! * a poll error — including a refused checkpoint write, which
//!   [`abs::AbsSession::poll`] surfaces as `Err(Checkpoint)` — ends it
//!   `failed` with the reason in the status body;
//! * a `DELETE`-flagged cancel is honoured at the next poll round,
//!   keeping the partial result;
//! * a drain checkpoints the session to the spool and parks the job
//!   `interrupted` for `--resume-jobs`.
//!
//! Between poll rounds the worker appends progress events (monotone
//! best energy — it reads the session incumbent, which only improves)
//! and publishes the live aggregator snapshot for `GET /metrics`
//! (last writer wins across workers).

use crate::job::{JobId, JobPhase, JobResult, JobStore, ProgressEvent};
use crate::metrics::ServerMetrics;
use crate::spec::JobSpec;
use crate::spool;
use abs::{AbsConfig, AbsSession, ProblemCache, SessionStatus, SolveResult, StopCondition};
use qubo::{ContentHash, Qubo};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vgpu::{DevicePool, LeaseRequest, PoolConfig};

/// Progress-event / live-metrics cadence while a job runs.
const EVENT_STRIDE: Duration = Duration::from_millis(100);
/// Default spool checkpoint stride when the job does not pick one.
const DEFAULT_CKPT_INTERVAL: Duration = Duration::from_millis(250);
/// Distinct instances the warm-start cache retains (LRU beyond this).
pub const CACHE_CAPACITY: usize = 64;

/// Scheduling state shared by every solver worker: the device pool
/// capacity is leased from and the content-addressed warm-start cache.
pub struct Scheduler {
    /// Shared device/block capacity.
    pub pool: Arc<DevicePool>,
    /// Warm-start cache keyed by instance digest.
    pub cache: Arc<ProblemCache>,
}

impl Scheduler {
    /// Builds the shared scheduler for a server instance.
    #[must_use]
    pub fn new(pool_config: PoolConfig) -> Arc<Self> {
        Arc::new(Self {
            pool: Arc::new(DevicePool::new(pool_config)),
            cache: Arc::new(ProblemCache::new(CACHE_CAPACITY)),
        })
    }
}

/// Spawns solver worker `index`. Each worker exits when the store
/// drains.
pub fn spawn(
    store: Arc<JobStore>,
    metrics: Arc<ServerMetrics>,
    spool_dir: Option<PathBuf>,
    scheduler: Arc<Scheduler>,
    index: usize,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("abs-solver-{index}"))
        .spawn(move || worker_loop(&store, &metrics, spool_dir.as_deref(), &scheduler))
        .unwrap_or_else(|e| panic!("spawning solver worker {index} failed: {e}"))
}

fn worker_loop(
    store: &JobStore,
    metrics: &ServerMetrics,
    spool_dir: Option<&Path>,
    scheduler: &Scheduler,
) {
    while let Some(id) = store.claim_next() {
        metrics.job_started();
        metrics.queue_depth.set(store.queue_len() as f64);
        run_job(store, metrics, spool_dir, scheduler, id);
        metrics.job_finished();
        metrics.queue_depth.set(store.queue_len() as f64);
    }
}

/// Maps a job spec onto a solver configuration. Public to the crate so
/// the acceptance suite's bit-for-bit twin uses literally this mapping.
/// The pool grants exactly this geometry whenever its per-job budget
/// allows (the default server pool's budget is its whole capacity), so
/// a leased session is the same session a direct run would build.
#[must_use]
pub fn solver_config(spec: &JobSpec, ckpt_out: Option<PathBuf>) -> AbsConfig {
    let mut cfg = AbsConfig::small();
    cfg.seed = spec.config.seed;
    let mut stop = StopCondition::timeout(Duration::from_millis(spec.config.timeout_ms.max(1)));
    if let Some(t) = spec.config.target {
        stop = stop.with_target(t);
    }
    cfg.stop = stop;
    if let Some(d) = spec.config.devices {
        cfg.machine.num_devices = d.max(1);
    }
    if let Some(b) = spec.config.blocks {
        cfg.machine.device.blocks_override = Some(b.max(1));
    }
    if let Some(ms) = spec.config.deadline_ms {
        cfg.watchdog.hard_timeout = Some(Duration::from_millis(ms));
    }
    if let Some(out) = ckpt_out {
        cfg.checkpoint.out = Some(out);
        cfg.checkpoint.interval = Some(
            spec.config
                .checkpoint_interval_ms
                .map_or(DEFAULT_CKPT_INTERVAL, Duration::from_millis),
        );
    }
    if let Some(at) = spec.config.deny_checkpoint_write {
        cfg.machine.device.fault = Some(Arc::new(vgpu::FaultPlan::default().deny_write(at)));
    }
    cfg
}

fn run_job(
    store: &JobStore,
    metrics: &ServerMetrics,
    spool_dir: Option<&Path>,
    scheduler: &Scheduler,
    id: JobId,
) {
    let Some((spec, resume_from)) = store.with_job(id, |j| (j.spec.clone(), j.resume_from.clone()))
    else {
        return;
    };
    let ckpt_out = spool_dir.map(|d| spool::ckpt_file(d, id));
    let mut cfg = solver_config(&spec, ckpt_out);

    // Warm start: a repeat instance reuses the cached padded matrix
    // and seeds the GA pool from prior incumbents. Resumed jobs skip
    // seeding — their checkpoint already carries a better pool.
    let hash = spec.problem.content_hash();
    let fresh_start = resume_from.is_none();
    let (problem, seeds) = match scheduler.cache.lookup(&hash) {
        Some(hit) if spec.config.warm_start && fresh_start => (hit.problem, hit.seeds),
        Some(hit) => (hit.problem, Vec::new()),
        None => {
            scheduler.cache.admit(hash, &spec.problem);
            (Arc::clone(&spec.problem), Vec::new())
        }
    };
    let warm_started = !seeds.is_empty();
    cfg.apply_warm_seeds(seeds);
    store.update(id, |j| {
        j.problem_hash = Some(hash.to_hex());
        j.warm_started = warm_started;
    });

    // Lease exactly the geometry the config asks for; the session then
    // runs on what was actually granted. This is the single acquire
    // site, paired with the single release below (lint-enforced).
    let lease = scheduler.pool.acquire_lease(&LeaseRequest {
        tenant: &spec.config.tenant,
        priority: spec.config.priority,
        devices: cfg.machine.num_devices,
        blocks_per_device: cfg.machine.device.blocks_override.unwrap_or(1),
    });
    metrics.set_pool_leased(&scheduler.pool.leased_by_tenant());
    cfg.apply_lease(lease.geometry().devices, lease.geometry().blocks_per_device);

    drive_session(
        store,
        metrics,
        spool_dir,
        scheduler,
        id,
        cfg,
        &problem,
        hash,
        resume_from,
    );

    scheduler.pool.release_lease(lease);
    metrics.set_pool_leased(&scheduler.pool.leased_by_tenant());
}

/// Runs the session for one claimed job to whatever end it meets. The
/// caller holds the pool lease across this entire function.
#[allow(clippy::too_many_arguments)]
fn drive_session(
    store: &JobStore,
    metrics: &ServerMetrics,
    spool_dir: Option<&Path>,
    scheduler: &Scheduler,
    id: JobId,
    cfg: AbsConfig,
    problem: &Arc<Qubo>,
    hash: ContentHash,
    resume_from: Option<PathBuf>,
) {
    let keep = cfg.checkpoint.keep.max(1);
    let started = match resume_from {
        Some(path) => AbsSession::resume(cfg, problem, &path),
        None => AbsSession::start(cfg, problem),
    };
    let mut session = match started {
        Ok(s) => s,
        Err(e) => {
            finish_failed(store, metrics, spool_dir, id, keep, &e.to_string());
            return;
        }
    };

    let mut last_emit = Instant::now() - EVENT_STRIDE;
    let mut last_best: Option<i64> = None;
    loop {
        if store.with_job(id, |j| j.cancel_requested) == Some(true) {
            let result = session.stop().ok().map(job_result);
            store.update(id, |j| {
                j.phase = JobPhase::Cancelled;
                j.result = result;
            });
            metrics.jobs_cancelled.inc();
            cleanup_spool(spool_dir, id, keep);
            return;
        }
        if store.draining() {
            // Park the job in the spool for `--resume-jobs`. A refused
            // drain checkpoint fails the job instead of interrupting it:
            // a manifest entry without a checkpoint would resume wrong.
            if session.config().checkpoint.out.is_some() {
                if let Err(e) = session.checkpoint_now() {
                    finish_failed(store, metrics, spool_dir, id, keep, &e.to_string());
                    return;
                }
            }
            store.update(id, |j| j.phase = JobPhase::Interrupted);
            metrics.jobs_interrupted.inc();
            return;
        }
        match session.poll() {
            Err(e) => {
                finish_failed(store, metrics, spool_dir, id, keep, &e.to_string());
                return;
            }
            Ok(SessionStatus::StopConditionMet) => {
                emit_event(store, metrics, id, &session);
                match session.stop() {
                    Ok(sr) => {
                        scheduler
                            .cache
                            .record_best(hash, problem, sr.best_energy, &sr.best);
                        store.update(id, |j| {
                            j.phase = JobPhase::Done;
                            j.result = Some(job_result(sr));
                        });
                        metrics.jobs_done.inc();
                        cleanup_spool(spool_dir, id, keep);
                    }
                    Err(e) => {
                        finish_failed(store, metrics, spool_dir, id, keep, &e.to_string());
                    }
                }
                return;
            }
            Ok(SessionStatus::Running) => {
                let best = session.best().map(|(_, e)| e);
                if best != last_best || last_emit.elapsed() >= EVENT_STRIDE {
                    last_best = best;
                    last_emit = Instant::now();
                    emit_event(store, metrics, id, &session);
                }
            }
        }
    }
}

fn emit_event(store: &JobStore, metrics: &ServerMetrics, id: JobId, session: &AbsSession) {
    let event = ProgressEvent {
        seq: 0, // assigned under the store lock below
        elapsed_ms: u64::try_from(session.total_elapsed().as_millis()).unwrap_or(u64::MAX),
        best_energy: session.best().map(|(_, e)| e),
        flips: session.total_flips(),
    };
    metrics.publish_live(session.metrics_snapshot());
    store.update(id, move |j| {
        let mut event = event;
        event.seq = j.events.len() as u64;
        j.events.push(event);
    });
}

fn finish_failed(
    store: &JobStore,
    metrics: &ServerMetrics,
    spool_dir: Option<&Path>,
    id: JobId,
    keep: usize,
    reason: &str,
) {
    let reason = reason.to_string();
    store.update(id, move |j| {
        j.phase = JobPhase::Failed;
        j.error = Some(reason);
    });
    metrics.jobs_failed.inc();
    cleanup_spool(spool_dir, id, keep);
}

fn cleanup_spool(spool_dir: Option<&Path>, id: JobId, keep: usize) {
    if let Some(dir) = spool_dir {
        spool::remove_job_files(dir, id, keep);
    }
}

fn job_result(sr: SolveResult) -> JobResult {
    let solution: String = (0..sr.best.len())
        .map(|i| if sr.best.get(i) { '1' } else { '0' })
        .collect();
    JobResult {
        best_energy: sr.best_energy,
        solution,
        reached_target: sr.reached_target,
        elapsed_ms: u64::try_from(sr.elapsed.as_millis()).unwrap_or(u64::MAX),
        total_flips: sr.total_flips,
        search_units: sr.search_units,
        evaluated: sr.evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;

    fn dense_spec(extra: &str) -> JobSpec {
        parse_spec(&format!(
            r#"{{"problem": {{"format": "dense", "n": 2, "upper": [-1, 2, -1]}}{extra}}}"#
        ))
        .unwrap()
    }

    fn scheduler() -> Arc<Scheduler> {
        Scheduler::new(PoolConfig::default())
    }

    fn wait_terminal(store: &JobStore, id: JobId) {
        loop {
            let (_, phase, _) = store
                .wait_events(id, usize::MAX, Duration::from_millis(50))
                .unwrap();
            if phase.is_terminal() {
                break;
            }
        }
    }

    #[test]
    fn config_mapping_honours_overrides() {
        let spec = dense_spec(
            r#", "config": {"seed": 5, "timeout_ms": 40, "target": -2,
                 "devices": 2, "blocks": 4, "deadline_ms": 900,
                 "checkpoint_interval_ms": 30}"#,
        );
        let cfg = solver_config(&spec, Some(PathBuf::from("/tmp/x.ckpt")));
        assert_eq!(cfg.seed, 5);
        assert_eq!(cfg.stop.timeout, Some(Duration::from_millis(40)));
        assert_eq!(cfg.stop.target_energy, Some(-2));
        assert_eq!(cfg.machine.num_devices, 2);
        assert_eq!(cfg.machine.device.blocks_override, Some(4));
        assert_eq!(cfg.watchdog.hard_timeout, Some(Duration::from_millis(900)));
        assert_eq!(cfg.checkpoint.interval, Some(Duration::from_millis(30)));
        assert!(cfg.machine.device.fault.is_none());
        cfg.validate().unwrap();
    }

    #[test]
    fn no_spool_means_no_checkpointing() {
        let cfg = solver_config(&dense_spec(""), None);
        assert!(cfg.checkpoint.out.is_none());
        assert!(cfg.checkpoint.interval.is_none());
    }

    #[test]
    fn default_pool_grants_the_default_job_geometry_exactly() {
        // The bit-for-bit acceptance twin depends on this: the default
        // server pool's per-job budget must never clamp the default
        // (or any explicitly requested, in-capacity) job shape.
        let sched = scheduler();
        let cfg = solver_config(&dense_spec(""), None);
        let granted = sched.pool.clamp(
            cfg.machine.num_devices,
            cfg.machine.device.blocks_override.unwrap_or(1),
        );
        assert_eq!(granted.devices, cfg.machine.num_devices);
        assert_eq!(
            Some(granted.blocks_per_device),
            cfg.machine.device.blocks_override
        );
    }

    #[test]
    fn worker_runs_a_tiny_job_to_done() {
        let store = Arc::new(JobStore::new(4));
        let metrics = Arc::new(ServerMetrics::new());
        let spec = dense_spec(r#", "config": {"timeout_ms": 200, "target": -2}"#);
        let id = store.submit(spec, None, None).unwrap();
        let handle = spawn(
            Arc::clone(&store),
            Arc::clone(&metrics),
            None,
            scheduler(),
            0,
        );
        wait_terminal(&store, id);
        store.begin_drain();
        handle.join().unwrap();
        let (phase, result) = store.with_job(id, |j| (j.phase, j.result.clone())).unwrap();
        assert_eq!(phase, JobPhase::Done);
        let result = result.unwrap();
        // n = 2, Q = [[-1, 2], [_, -1]]: the optimum sets exactly one
        // bit (E = -1); the -2 target is unreachable so the timeout
        // ends the job, and the incumbent must still be exact.
        assert_eq!(result.best_energy, -1);
        assert!(!result.reached_target);
        assert!(result.solution == "10" || result.solution == "01");
        assert_eq!(metrics.jobs_done.get(), 1);
        assert_eq!(metrics.jobs_running.get(), 0.0, "lease count drained");
    }

    #[test]
    fn repeat_job_warm_starts_from_the_cache() {
        let store = Arc::new(JobStore::new(4));
        let metrics = Arc::new(ServerMetrics::new());
        let sched = scheduler();
        let body = r#", "config": {"timeout_ms": 150, "target": -1, "seed": 3}"#;
        let first = store.submit(dense_spec(body), None, None).unwrap();
        let handle = spawn(
            Arc::clone(&store),
            Arc::clone(&metrics),
            None,
            Arc::clone(&sched),
            0,
        );
        wait_terminal(&store, first);
        let cold = store
            .with_job(first, |j| (j.warm_started, j.problem_hash.clone()))
            .unwrap();
        assert!(!cold.0, "first sight of an instance is a cold start");
        let cold_hash = cold.1.expect("hash set when claimed");
        assert_eq!(sched.cache.stats().entries, 1);

        // Same matrix again: must hit and seed from the incumbent.
        let second = store.submit(dense_spec(body), None, None).unwrap();
        wait_terminal(&store, second);
        let warm = store
            .with_job(second, |j| {
                (j.warm_started, j.problem_hash.clone(), j.result.clone())
            })
            .unwrap();
        assert!(warm.0, "repeat POST of the same W must warm-start");
        assert_eq!(warm.1, Some(cold_hash));
        assert_eq!(warm.2.unwrap().best_energy, -1);

        // A different matrix (same n) must not hit.
        let other = parse_spec(
            r#"{"problem": {"format": "dense", "n": 2, "upper": [-1, 3, -1]},
                "config": {"timeout_ms": 150, "target": -1}}"#,
        )
        .unwrap();
        let third = store.submit(other, None, None).unwrap();
        wait_terminal(&store, third);
        assert_eq!(store.with_job(third, |j| j.warm_started), Some(false));

        store.begin_drain();
        handle.join().unwrap();
        let pool_stats = sched.pool.stats();
        assert_eq!(pool_stats.granted, 3);
        assert_eq!(pool_stats.released, 3);
        assert_eq!(pool_stats.reclaimed, 0);
        assert_eq!(pool_stats.free_blocks, pool_stats.capacity_blocks);
    }

    #[test]
    fn warm_start_opt_out_is_honoured() {
        let store = Arc::new(JobStore::new(4));
        let metrics = Arc::new(ServerMetrics::new());
        let sched = scheduler();
        let handle = spawn(
            Arc::clone(&store),
            Arc::clone(&metrics),
            None,
            Arc::clone(&sched),
            0,
        );
        let a = store
            .submit(
                dense_spec(r#", "config": {"timeout_ms": 100, "target": -1}"#),
                None,
                None,
            )
            .unwrap();
        wait_terminal(&store, a);
        let b = store
            .submit(
                dense_spec(r#", "config": {"timeout_ms": 100, "target": -1, "warm_start": false}"#),
                None,
                None,
            )
            .unwrap();
        wait_terminal(&store, b);
        assert_eq!(
            store.with_job(b, |j| j.warm_started),
            Some(false),
            "warm_start: false must cold-start even on a cache hit"
        );
        store.begin_drain();
        handle.join().unwrap();
    }
}
