//! The solver worker: one thread, one live [`abs::AbsSession`] at a
//! time.
//!
//! The paper's host drives a single bulk-search machine, and the
//! serving layer keeps that shape: jobs are claimed off the bounded
//! queue in FIFO order and solved one at a time, so a job's resource
//! envelope is the whole virtual machine rather than a slice of it.
//! The worker owns every phase transition out of `Running`:
//!
//! * a stop condition (or watchdog deadline with an incumbent) ends the
//!   job `done`;
//! * a poll error — including a refused checkpoint write, which
//!   [`abs::AbsSession::poll`] surfaces as `Err(Checkpoint)` — ends it
//!   `failed` with the reason in the status body;
//! * a `DELETE`-flagged cancel is honoured at the next poll round,
//!   keeping the partial result;
//! * a drain checkpoints the session to the spool and parks the job
//!   `interrupted` for `--resume-jobs`.
//!
//! Between poll rounds the worker appends progress events (monotone
//! best energy — it reads the session incumbent, which only improves)
//! and publishes the live aggregator snapshot for `GET /metrics`.

use crate::job::{JobId, JobPhase, JobResult, JobStore, ProgressEvent};
use crate::metrics::ServerMetrics;
use crate::spec::JobSpec;
use crate::spool;
use abs::{AbsConfig, AbsSession, SessionStatus, SolveResult, StopCondition};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Progress-event / live-metrics cadence while a job runs.
const EVENT_STRIDE: Duration = Duration::from_millis(100);
/// Default spool checkpoint stride when the job does not pick one.
const DEFAULT_CKPT_INTERVAL: Duration = Duration::from_millis(250);

/// Spawns the solver worker. It exits when the store drains.
pub fn spawn(
    store: Arc<JobStore>,
    metrics: Arc<ServerMetrics>,
    spool_dir: Option<PathBuf>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("abs-solver".into())
        .spawn(move || worker_loop(&store, &metrics, spool_dir.as_deref()))
        .unwrap_or_else(|e| panic!("spawning the solver worker failed: {e}"))
}

fn worker_loop(store: &JobStore, metrics: &ServerMetrics, spool_dir: Option<&Path>) {
    while let Some(id) = store.claim_next() {
        metrics.jobs_running.set(1.0);
        metrics.queue_depth.set(store.queue_len() as f64);
        run_job(store, metrics, spool_dir, id);
        metrics.jobs_running.set(0.0);
        metrics.queue_depth.set(store.queue_len() as f64);
    }
}

/// Maps a job spec onto a solver configuration. Public to the crate so
/// the acceptance suite's bit-for-bit twin uses literally this mapping.
#[must_use]
pub fn solver_config(spec: &JobSpec, ckpt_out: Option<PathBuf>) -> AbsConfig {
    let mut cfg = AbsConfig::small();
    cfg.seed = spec.config.seed;
    let mut stop = StopCondition::timeout(Duration::from_millis(spec.config.timeout_ms.max(1)));
    if let Some(t) = spec.config.target {
        stop = stop.with_target(t);
    }
    cfg.stop = stop;
    if let Some(d) = spec.config.devices {
        cfg.machine.num_devices = d.max(1);
    }
    if let Some(b) = spec.config.blocks {
        cfg.machine.device.blocks_override = Some(b.max(1));
    }
    if let Some(ms) = spec.config.deadline_ms {
        cfg.watchdog.hard_timeout = Some(Duration::from_millis(ms));
    }
    if let Some(out) = ckpt_out {
        cfg.checkpoint.out = Some(out);
        cfg.checkpoint.interval = Some(
            spec.config
                .checkpoint_interval_ms
                .map_or(DEFAULT_CKPT_INTERVAL, Duration::from_millis),
        );
    }
    if let Some(at) = spec.config.deny_checkpoint_write {
        cfg.machine.device.fault = Some(Arc::new(vgpu::FaultPlan::default().deny_write(at)));
    }
    cfg
}

fn run_job(store: &JobStore, metrics: &ServerMetrics, spool_dir: Option<&Path>, id: JobId) {
    let Some((spec, resume_from)) = store.with_job(id, |j| (j.spec.clone(), j.resume_from.clone()))
    else {
        return;
    };
    let ckpt_out = spool_dir.map(|d| spool::ckpt_file(d, id));
    let cfg = solver_config(&spec, ckpt_out);
    let keep = cfg.checkpoint.keep.max(1);

    let started = match resume_from {
        Some(path) => AbsSession::resume(cfg, &spec.problem, &path),
        None => AbsSession::start(cfg, &spec.problem),
    };
    let mut session = match started {
        Ok(s) => s,
        Err(e) => {
            finish_failed(store, metrics, spool_dir, id, keep, &e.to_string());
            return;
        }
    };

    let mut last_emit = Instant::now() - EVENT_STRIDE;
    let mut last_best: Option<i64> = None;
    loop {
        if store.with_job(id, |j| j.cancel_requested) == Some(true) {
            let result = session.stop().ok().map(job_result);
            store.update(id, |j| {
                j.phase = JobPhase::Cancelled;
                j.result = result;
            });
            metrics.jobs_cancelled.inc();
            cleanup_spool(spool_dir, id, keep);
            return;
        }
        if store.draining() {
            // Park the job in the spool for `--resume-jobs`. A refused
            // drain checkpoint fails the job instead of interrupting it:
            // a manifest entry without a checkpoint would resume wrong.
            if session.config().checkpoint.out.is_some() {
                if let Err(e) = session.checkpoint_now() {
                    finish_failed(store, metrics, spool_dir, id, keep, &e.to_string());
                    return;
                }
            }
            store.update(id, |j| j.phase = JobPhase::Interrupted);
            metrics.jobs_interrupted.inc();
            return;
        }
        match session.poll() {
            Err(e) => {
                finish_failed(store, metrics, spool_dir, id, keep, &e.to_string());
                return;
            }
            Ok(SessionStatus::StopConditionMet) => {
                emit_event(store, metrics, id, &session);
                match session.stop() {
                    Ok(sr) => {
                        store.update(id, |j| {
                            j.phase = JobPhase::Done;
                            j.result = Some(job_result(sr));
                        });
                        metrics.jobs_done.inc();
                        cleanup_spool(spool_dir, id, keep);
                    }
                    Err(e) => {
                        finish_failed(store, metrics, spool_dir, id, keep, &e.to_string());
                    }
                }
                return;
            }
            Ok(SessionStatus::Running) => {
                let best = session.best().map(|(_, e)| e);
                if best != last_best || last_emit.elapsed() >= EVENT_STRIDE {
                    last_best = best;
                    last_emit = Instant::now();
                    emit_event(store, metrics, id, &session);
                }
            }
        }
    }
}

fn emit_event(store: &JobStore, metrics: &ServerMetrics, id: JobId, session: &AbsSession) {
    let event = ProgressEvent {
        seq: 0, // assigned under the store lock below
        elapsed_ms: u64::try_from(session.total_elapsed().as_millis()).unwrap_or(u64::MAX),
        best_energy: session.best().map(|(_, e)| e),
        flips: session.total_flips(),
    };
    metrics.publish_live(session.metrics_snapshot());
    store.update(id, move |j| {
        let mut event = event;
        event.seq = j.events.len() as u64;
        j.events.push(event);
    });
}

fn finish_failed(
    store: &JobStore,
    metrics: &ServerMetrics,
    spool_dir: Option<&Path>,
    id: JobId,
    keep: usize,
    reason: &str,
) {
    let reason = reason.to_string();
    store.update(id, move |j| {
        j.phase = JobPhase::Failed;
        j.error = Some(reason);
    });
    metrics.jobs_failed.inc();
    cleanup_spool(spool_dir, id, keep);
}

fn cleanup_spool(spool_dir: Option<&Path>, id: JobId, keep: usize) {
    if let Some(dir) = spool_dir {
        spool::remove_job_files(dir, id, keep);
    }
}

fn job_result(sr: SolveResult) -> JobResult {
    let solution: String = (0..sr.best.len())
        .map(|i| if sr.best.get(i) { '1' } else { '0' })
        .collect();
    JobResult {
        best_energy: sr.best_energy,
        solution,
        reached_target: sr.reached_target,
        elapsed_ms: u64::try_from(sr.elapsed.as_millis()).unwrap_or(u64::MAX),
        total_flips: sr.total_flips,
        search_units: sr.search_units,
        evaluated: sr.evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;

    fn dense_spec(extra: &str) -> JobSpec {
        parse_spec(&format!(
            r#"{{"problem": {{"format": "dense", "n": 2, "upper": [-1, 2, -1]}}{extra}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn config_mapping_honours_overrides() {
        let spec = dense_spec(
            r#", "config": {"seed": 5, "timeout_ms": 40, "target": -2,
                 "devices": 2, "blocks": 4, "deadline_ms": 900,
                 "checkpoint_interval_ms": 30}"#,
        );
        let cfg = solver_config(&spec, Some(PathBuf::from("/tmp/x.ckpt")));
        assert_eq!(cfg.seed, 5);
        assert_eq!(cfg.stop.timeout, Some(Duration::from_millis(40)));
        assert_eq!(cfg.stop.target_energy, Some(-2));
        assert_eq!(cfg.machine.num_devices, 2);
        assert_eq!(cfg.machine.device.blocks_override, Some(4));
        assert_eq!(cfg.watchdog.hard_timeout, Some(Duration::from_millis(900)));
        assert_eq!(cfg.checkpoint.interval, Some(Duration::from_millis(30)));
        assert!(cfg.machine.device.fault.is_none());
        cfg.validate().unwrap();
    }

    #[test]
    fn no_spool_means_no_checkpointing() {
        let cfg = solver_config(&dense_spec(""), None);
        assert!(cfg.checkpoint.out.is_none());
        assert!(cfg.checkpoint.interval.is_none());
    }

    #[test]
    fn worker_runs_a_tiny_job_to_done() {
        let store = Arc::new(JobStore::new(4));
        let metrics = Arc::new(ServerMetrics::new());
        let spec = dense_spec(r#", "config": {"timeout_ms": 200, "target": -2}"#);
        let id = store.submit(spec, None, None).unwrap();
        let handle = spawn(Arc::clone(&store), Arc::clone(&metrics), None);
        // Wait for the job to end, then drain so the worker exits.
        loop {
            let (_, phase, _) = store
                .wait_events(id, usize::MAX, Duration::from_millis(50))
                .unwrap();
            if phase.is_terminal() {
                break;
            }
        }
        store.begin_drain();
        handle.join().unwrap();
        let (phase, result) = store.with_job(id, |j| (j.phase, j.result.clone())).unwrap();
        assert_eq!(phase, JobPhase::Done);
        let result = result.unwrap();
        // n = 2, Q = [[-1, 2], [_, -1]]: the optimum sets exactly one
        // bit (E = -1); the -2 target is unreachable so the timeout
        // ends the job, and the incumbent must still be exact.
        assert_eq!(result.best_energy, -1);
        assert!(!result.reached_target);
        assert!(result.solution == "10" || result.solution == "01");
        assert_eq!(metrics.jobs_done.get(), 1);
    }
}
