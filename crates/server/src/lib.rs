//! Solve-as-a-service: the ABS job server (DESIGN.md §12).
//!
//! `abs-server` (or `abs serve`) exposes the solver over HTTP/JSON:
//! jobs are submitted with `POST /jobs`, watched with `GET /jobs/{id}`
//! and an SSE progress stream, cancelled with `DELETE`, and observed
//! live through `GET /metrics`. Admission is a bounded queue (429 when
//! full); up to `--solver-workers` concurrent [`abs::AbsSession`]s
//! run, each leasing its device/block geometry from a shared
//! [`vgpu::DevicePool`] and warm-starting repeat instances from the
//! content-addressed [`abs::ProblemCache`] (DESIGN.md §13). On
//! SIGINT/SIGTERM the server *drains*: every in-flight job checkpoints
//! to the spool and a restarted server picks them all back up with
//! `--resume-jobs`, cumulative accounting intact.
//!
//! The whole stack is std-only — hand-rolled HTTP/1.1 over blocking
//! sockets with a small worker pool — because the workspace builds
//! offline with no async runtime available; see `http.rs` and
//! DESIGN.md §12 for the trade-off.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod http;
pub mod job;
pub mod metrics;
pub mod routes;
pub mod runner;
pub mod signals;
pub mod spec;
pub mod spool;

use job::{JobPhase, JobStore};
use metrics::ServerMetrics;
use routes::AppState;
use spool::ManifestEntry;
use std::io::Write as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often the accept loop checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Server settings (the `abs-server` command line maps 1:1 onto this).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address.
    pub addr: String,
    /// Bind port; `0` picks an ephemeral port (printed on startup).
    pub port: u16,
    /// Bounded admission: queued jobs beyond this refuse with 429.
    pub queue_depth: usize,
    /// HTTP worker threads (SSE streams occupy one each while open).
    pub http_workers: usize,
    /// Spool directory for drain checkpoints and job bodies.
    pub spool: Option<PathBuf>,
    /// Reload the spool manifest left by a drained predecessor.
    pub resume_jobs: bool,
    /// Concurrent solver sessions (each worker drives one at a time).
    pub solver_workers: usize,
    /// Logical devices in the shared pool.
    pub pool_devices: usize,
    /// Block capacity per pool device.
    pub pool_blocks: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1".into(),
            port: 0,
            queue_depth: 8,
            http_workers: 4,
            spool: None,
            resume_jobs: false,
            solver_workers: 2,
            pool_devices: 4,
            pool_blocks: 16,
        }
    }
}

impl ServerConfig {
    /// Pool geometry derived from the flags. The per-job budget is the
    /// whole capacity: the pool throttles *admission* of concurrent
    /// sessions, it never reshapes an in-capacity job (which keeps
    /// leased sessions bit-for-bit equal to direct ones).
    #[must_use]
    pub fn pool_config(&self) -> vgpu::PoolConfig {
        let devices = self.pool_devices.max(1);
        let blocks = self.pool_blocks.max(1);
        vgpu::PoolConfig {
            num_devices: devices,
            blocks_per_device: blocks,
            max_lease_blocks: devices * blocks,
            min_lease_blocks: 1,
        }
    }
}

/// Why the server could not run (startup or drain).
#[derive(Debug)]
pub enum ServerError {
    /// Binding the listen socket failed.
    Bind(std::io::Error),
    /// The spool directory could not be created or written.
    Spool(std::io::Error),
    /// `--resume-jobs` was passed without `--spool`.
    ResumeNeedsSpool,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Bind(e) => write!(f, "binding listen socket: {e}"),
            Self::Spool(e) => write!(f, "spool directory: {e}"),
            Self::ResumeNeedsSpool => write!(f, "--resume-jobs requires --spool"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Runs the server until SIGINT/SIGTERM, then drains: stops accepting,
/// checkpoints the in-flight job, writes the spool manifest, and
/// returns.
///
/// # Errors
/// [`ServerError`] on startup problems; a clean drain is `Ok`.
pub fn run(config: &ServerConfig) -> Result<(), ServerError> {
    signals::install();
    if config.resume_jobs && config.spool.is_none() {
        return Err(ServerError::ResumeNeedsSpool);
    }
    if let Some(dir) = &config.spool {
        std::fs::create_dir_all(dir).map_err(ServerError::Spool)?;
    }

    let store = Arc::new(JobStore::new(config.queue_depth));
    let metrics = Arc::new(ServerMetrics::new());
    if config.resume_jobs {
        if let Some(dir) = &config.spool {
            resume_jobs(&store, dir)?;
        }
    }

    let listener =
        TcpListener::bind((config.addr.as_str(), config.port)).map_err(ServerError::Bind)?;
    let local = listener.local_addr().map_err(ServerError::Bind)?;
    listener.set_nonblocking(true).map_err(ServerError::Bind)?;
    // The acceptance suite parses this exact line for the port.
    println!("abs-server listening on http://{local}");
    let _ = std::io::stdout().flush();

    let scheduler = runner::Scheduler::new(config.pool_config());
    let mut solvers = Vec::new();
    for i in 0..config.solver_workers.max(1) {
        solvers.push(runner::spawn(
            Arc::clone(&store),
            Arc::clone(&metrics),
            config.spool.clone(),
            Arc::clone(&scheduler),
            i,
        ));
    }

    let (tx, rx) = mpsc::channel::<std::net::TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut http_workers = Vec::new();
    for i in 0..config.http_workers.max(1) {
        let rx = Arc::clone(&rx);
        let state = AppState {
            store: Arc::clone(&store),
            metrics: Arc::clone(&metrics),
            spool: config.spool.clone(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("abs-http-{i}"))
            .spawn(move || loop {
                let next = rx
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .recv();
                match next {
                    Ok(stream) => routes::serve_connection(stream, &state),
                    Err(_) => return, // sender dropped: drain
                }
            })
            .map_err(ServerError::Bind)?;
        http_workers.push(handle);
    }

    while !signals::interrupted() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }

    // Drain: refuse new work, let every worker checkpoint its job,
    // release the HTTP pool (open SSE streams see `draining` and close
    // themselves).
    store.begin_drain();
    drop(tx);
    for solver in solvers {
        let _ = solver.join();
    }
    for handle in http_workers {
        let _ = handle.join();
    }

    let mut spooled = 0usize;
    if let Some(dir) = &config.spool {
        let entries: Vec<ManifestEntry> = store
            .non_terminal()
            .into_iter()
            .filter_map(|(id, phase)| {
                let state = match phase {
                    JobPhase::Queued => "queued",
                    JobPhase::Interrupted => "interrupted",
                    _ => return None,
                };
                Some(ManifestEntry {
                    id,
                    state: state.into(),
                })
            })
            .collect();
        spooled = entries.len();
        spool::write_manifest(dir, &entries).map_err(ServerError::Spool)?;
    }
    println!("abs-server drained; {spooled} job(s) spooled");
    Ok(())
}

/// Reloads the drain manifest: queued jobs re-queue fresh, interrupted
/// jobs resume from their checkpoint with identifiers preserved.
fn resume_jobs(store: &JobStore, dir: &std::path::Path) -> Result<(), ServerError> {
    let entries = spool::take_manifest(dir).map_err(ServerError::Spool)?;
    for entry in entries {
        let body = match std::fs::read_to_string(spool::job_file(dir, entry.id)) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("abs-server: skipping job {}: reading body: {e}", entry.id);
                continue;
            }
        };
        let spec = match spec::parse_spec(&body) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("abs-server: skipping job {}: {e}", entry.id);
                continue;
            }
        };
        let resume_from = if entry.state == "interrupted" {
            let ckpt = spool::ckpt_file(dir, entry.id);
            ckpt.exists().then_some(ckpt)
        } else {
            None
        };
        // Restores bypass the admission bound — these jobs were already
        // admitted by the drained predecessor.
        if let Err(e) = store.submit(spec, resume_from, Some(entry.id)) {
            eprintln!("abs-server: skipping job {}: {e:?}", entry.id);
        }
    }
    Ok(())
}
