//! Command-line parsing for the server, shared by the `abs-server`
//! binary and the CLI's `abs-cli serve` subcommand (which passes its
//! remaining arguments through verbatim).

use crate::ServerConfig;

/// Usage text (also printed by `abs-cli serve --help`).
pub const USAGE: &str = "\
usage: abs-server [options]

options:
  --addr A           bind address (default 127.0.0.1)
  --port P           bind port; 0 picks an ephemeral port (default 0)
  --queue-depth N    queued jobs admitted before 429 (default 8)
  --http-workers N   HTTP worker threads (default 4)
  --solver-workers N concurrent solver sessions (default 2)
  --pool-devices N   logical devices in the shared pool (default 4)
  --pool-blocks N    block capacity per pool device (default 16)
  --spool DIR        spool directory for drain checkpoints
  --resume-jobs      reload jobs a drained predecessor spooled
  --help             print this help
";

/// Parses server arguments. `Ok(None)` means "print usage and exit 0".
///
/// # Errors
/// A human-readable message for unknown flags, missing values, or
/// out-of-range numbers (the caller exits 2).
pub fn parse(args: &[String]) -> Result<Option<ServerConfig>, String> {
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--addr" => config.addr = value("--addr")?,
            "--port" => {
                config.port = value("--port")?
                    .parse()
                    .map_err(|_| "--port needs an integer in 0..=65535".to_string())?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs a positive integer".to_string())?;
                if config.queue_depth == 0 {
                    return Err("--queue-depth needs a positive integer".into());
                }
            }
            "--http-workers" => {
                config.http_workers = value("--http-workers")?
                    .parse()
                    .map_err(|_| "--http-workers needs a positive integer".to_string())?;
                if config.http_workers == 0 {
                    return Err("--http-workers needs a positive integer".into());
                }
            }
            "--solver-workers" => {
                config.solver_workers = value("--solver-workers")?
                    .parse()
                    .map_err(|_| "--solver-workers needs a positive integer".to_string())?;
                if config.solver_workers == 0 {
                    return Err("--solver-workers needs a positive integer".into());
                }
            }
            "--pool-devices" => {
                config.pool_devices = value("--pool-devices")?
                    .parse()
                    .map_err(|_| "--pool-devices needs a positive integer".to_string())?;
                if config.pool_devices == 0 {
                    return Err("--pool-devices needs a positive integer".into());
                }
            }
            "--pool-blocks" => {
                config.pool_blocks = value("--pool-blocks")?
                    .parse()
                    .map_err(|_| "--pool-blocks needs a positive integer".to_string())?;
                if config.pool_blocks == 0 {
                    return Err("--pool-blocks needs a positive integer".into());
                }
            }
            "--spool" => config.spool = Some(value("--spool")?.into()),
            "--resume-jobs" => config.resume_jobs = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if config.resume_jobs && config.spool.is_none() {
        return Err("--resume-jobs requires --spool".into());
    }
    Ok(Some(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides() {
        let c = parse(&[]).unwrap().expect("run");
        assert_eq!(c.addr, "127.0.0.1");
        assert_eq!(c.port, 0);
        assert_eq!(c.queue_depth, 8);
        assert_eq!(c.solver_workers, 2);
        assert_eq!(c.pool_devices, 4);
        assert_eq!(c.pool_blocks, 16);

        let c = parse(&strs(&[
            "--addr",
            "0.0.0.0",
            "--port",
            "8080",
            "--queue-depth",
            "2",
            "--http-workers",
            "1",
            "--solver-workers",
            "3",
            "--pool-devices",
            "2",
            "--pool-blocks",
            "8",
            "--spool",
            "/tmp/sp",
            "--resume-jobs",
        ]))
        .unwrap()
        .expect("run");
        assert_eq!(c.addr, "0.0.0.0");
        assert_eq!(c.port, 8080);
        assert_eq!(c.queue_depth, 2);
        assert_eq!(c.http_workers, 1);
        assert_eq!(c.solver_workers, 3);
        assert_eq!(c.pool_devices, 2);
        assert_eq!(c.pool_blocks, 8);
        assert!(c.resume_jobs);
        assert_eq!(c.pool_config().capacity_blocks(), 16);
        assert_eq!(c.pool_config().max_lease_blocks, 16);
    }

    #[test]
    fn usage_errors() {
        assert!(parse(&strs(&["--nope"])).is_err());
        assert!(parse(&strs(&["--port"])).is_err());
        assert!(parse(&strs(&["--port", "zebra"])).is_err());
        assert!(parse(&strs(&["--queue-depth", "0"])).is_err());
        assert!(parse(&strs(&["--solver-workers", "0"])).is_err());
        assert!(parse(&strs(&["--pool-devices", "none"])).is_err());
        assert!(parse(&strs(&["--pool-blocks", "0"])).is_err());
        assert!(parse(&strs(&["--resume-jobs"])).is_err());
        assert!(parse(&strs(&["--help"])).unwrap().is_none());
    }
}
