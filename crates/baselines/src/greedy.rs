//! Steepest-descent with random restarts.

use crate::BaselineResult;
use qubo::{BitVec, Energy, Qubo};
use qubo_search::DeltaTracker;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs `restarts` independent steepest descents from random starts;
/// each descent flips the global minimum-Δ bit while it improves the
/// energy and stops at a 1-flip local minimum.
///
/// # Panics
/// Panics if `restarts == 0`.
#[must_use]
pub fn solve(q: &Qubo, restarts: u64, seed: u64) -> BaselineResult {
    assert!(restarts > 0, "need at least one restart");
    let n = q.n();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best: Option<(BitVec, Energy)> = None;
    let mut steps = 0u64;
    for _ in 0..restarts {
        let start = BitVec::random(n, &mut rng);
        let mut t = DeltaTracker::at(q, &start);
        // Exits on n == 0 (no deltas) or at a 1-flip local minimum.
        while let Some((k, &d)) = t.deltas().iter().enumerate().min_by_key(|&(_, &d)| d) {
            if d >= 0 {
                break;
            }
            t.flip(k);
            steps += 1;
        }
        let e = t.energy();
        if best.as_ref().is_none_or(|&(_, be)| e < be) {
            best = Some((t.x().clone(), e));
        }
    }
    // abs-lint: allow(no-unwrap) -- restarts > 0 asserted at entry; every restart records a best
    let (bx, be) = best.expect("restarts > 0");
    BaselineResult {
        best: bx,
        best_energy: be,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn random_qubo(n: usize, seed: u64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        Qubo::random(n, &mut rng)
    }

    #[test]
    fn result_is_a_one_flip_local_minimum() {
        let q = random_qubo(24, 1);
        let r = solve(&q, 5, 2);
        assert_eq!(r.best_energy, q.energy(&r.best));
        for i in 0..24 {
            assert!(q.energy(&r.best.flipped(i)) >= r.best_energy, "bit {i}");
        }
    }

    #[test]
    fn more_restarts_never_hurt() {
        let q = random_qubo(30, 3);
        let few = solve(&q, 1, 4);
        let many = solve(&q, 20, 4);
        assert!(many.best_energy <= few.best_energy);
    }

    #[test]
    fn deterministic_under_seed() {
        let q = random_qubo(16, 5);
        assert_eq!(solve(&q, 3, 6).best_energy, solve(&q, 3, 6).best_energy);
    }
}
