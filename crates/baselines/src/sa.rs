//! Classical simulated annealing (Kirkpatrick et al.; Eq. (7) of the
//! paper) with accept/reject semantics and a geometric schedule.
//!
//! This is Algorithm 3 run in production form: the Δ vector makes each
//! *evaluation* O(1), but unlike ABS the move can be rejected (the
//! paper's point: near a local minimum almost everything is rejected,
//! so flips-per-second collapse while ABS keeps flipping).

use crate::BaselineResult;
use qubo::Qubo;
use qubo_search::{DeltaAcc, DeltaTracker};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Simulated-annealing parameters.
#[derive(Clone, Copy, Debug)]
pub struct SaConfig {
    /// Initial temperature in energy units (`k_B·t` of Eq. (7)).
    pub t_initial: f64,
    /// Final temperature.
    pub t_final: f64,
    /// Total proposed moves; the temperature decays geometrically from
    /// `t_initial` to `t_final` across them.
    pub steps: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SaConfig {
    /// A reasonable default schedule for an instance: start at the scale
    /// of typical |Δ| (≈ mean |row sum| of the weights), end near zero.
    #[must_use]
    pub fn for_instance(q: &Qubo, steps: u64, seed: u64) -> Self {
        let scale = (q.energy_bound() as f64 / q.n() as f64).max(1.0);
        Self {
            t_initial: scale,
            t_final: (scale * 1e-4).max(1e-3),
            steps,
            seed,
        }
    }
}

/// Runs simulated annealing from a uniformly random start.
///
/// Uses narrow (`i32`) Δ accumulators when the instance's Δ bound
/// permits, exactly like the virtual devices; the walk is identical
/// either way.
///
/// # Panics
/// Panics if `steps == 0` or temperatures are non-positive.
#[must_use]
pub fn solve(q: &Qubo, cfg: &SaConfig) -> BaselineResult {
    assert!(cfg.steps > 0, "need at least one step");
    assert!(
        cfg.t_initial > 0.0 && cfg.t_final > 0.0,
        "temperatures must be positive"
    );
    if DeltaTracker::<i32>::fits(q) {
        solve_width::<i32>(q, cfg)
    } else {
        solve_width::<i64>(q, cfg)
    }
}

fn solve_width<A: DeltaAcc>(q: &Qubo, cfg: &SaConfig) -> BaselineResult {
    let n = q.n();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let start = qubo::BitVec::random(n, &mut rng);
    let mut t = DeltaTracker::<A>::at_width(q, &start);
    let cooling = (cfg.t_final / cfg.t_initial).powf(1.0 / cfg.steps as f64);
    let mut temp = cfg.t_initial;
    let mut accepted = 0u64;
    for _ in 0..cfg.steps {
        let k = rng.gen_range(0..n);
        let d = t.deltas()[k].to_energy();
        let accept = d <= 0 || rng.gen::<f64>() < (-(d as f64) / temp).exp();
        if accept {
            t.flip(k);
            accepted += 1;
        }
        temp *= cooling;
    }
    let (bx, be) = t.best();
    BaselineResult {
        best: bx.clone(),
        best_energy: be,
        steps: accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use rand::rngs::StdRng;

    fn random_qubo(n: usize, seed: u64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        Qubo::random(n, &mut rng)
    }

    #[test]
    fn reaches_ground_state_of_small_instance() {
        let q = random_qubo(14, 1);
        let truth = exact::solve(&q);
        let cfg = SaConfig::for_instance(&q, 60_000, 2);
        let r = solve(&q, &cfg);
        assert_eq!(r.best_energy, q.energy(&r.best));
        assert_eq!(
            r.best_energy, truth.best_energy,
            "SA missed the 14-bit ground state"
        );
    }

    #[test]
    fn energy_is_exact_even_with_rejections() {
        let q = random_qubo(32, 3);
        let cfg = SaConfig {
            t_initial: 1e5,
            t_final: 1.0,
            steps: 5_000,
            seed: 4,
        };
        let r = solve(&q, &cfg);
        assert_eq!(r.best_energy, q.energy(&r.best));
        assert!(r.steps <= 5_000);
    }

    #[test]
    fn low_temperature_rejects_uphill() {
        let q = random_qubo(24, 5);
        let cold = SaConfig {
            t_initial: 1e-6,
            t_final: 1e-9,
            steps: 3_000,
            seed: 6,
        };
        let hot = SaConfig {
            t_initial: 1e9,
            t_final: 1e8,
            steps: 3_000,
            seed: 6,
        };
        let rc = solve(&q, &cold);
        let rh = solve(&q, &hot);
        // Hot accepts nearly everything; cold only downhill.
        assert!(rh.steps > rc.steps);
    }

    #[test]
    fn narrow_and_wide_widths_agree() {
        let q = random_qubo(20, 11);
        let cfg = SaConfig::for_instance(&q, 8_000, 12);
        let narrow = solve_width::<i32>(&q, &cfg);
        let wide = solve_width::<i64>(&q, &cfg);
        assert_eq!(narrow.best_energy, wide.best_energy);
        assert_eq!(narrow.best, wide.best);
        assert_eq!(narrow.steps, wide.steps);
    }

    #[test]
    fn deterministic_under_seed() {
        let q = random_qubo(20, 7);
        let cfg = SaConfig::for_instance(&q, 10_000, 8);
        let a = solve(&q, &cfg);
        let b = solve(&q, &cfg);
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.best, b.best);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let q = random_qubo(8, 9);
        let _ = solve(
            &q,
            &SaConfig {
                t_initial: 1.0,
                t_final: 0.1,
                steps: 0,
                seed: 0,
            },
        );
    }
}
