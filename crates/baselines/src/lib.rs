//! Baseline QUBO solvers.
//!
//! The paper compares ABS against classical metaheuristics and uses
//! converged reference values for the synthetic benchmarks; this crate
//! provides those comparators, all built on the same incremental
//! [`qubo_search::DeltaTracker`] so comparisons are apples-to-apples:
//!
//! * [`sa`] — classical simulated annealing (Eq. (7)) with a geometric
//!   schedule: accept/reject semantics, *not* the forced flip of ABS.
//! * [`tabu`] — tabu search with tenure and aspiration.
//! * [`greedy`] — steepest-descent with random restarts.
//! * [`random`] — uniform random sampling (the null model).
//! * [`exact`] — exhaustive Gray-code enumeration (exact ground states
//!   for small `n`, used as ground truth in tests).
//!
//! # Example
//!
//! ```
//! use qubo::Qubo;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(5);
//! let q = Qubo::random(12, &mut rng);
//! let truth = qubo_baselines::exact::solve(&q);
//! let sa = qubo_baselines::sa::solve(
//!     &q,
//!     &qubo_baselines::sa::SaConfig::for_instance(&q, 20_000, 1),
//! );
//! assert!(sa.best_energy >= truth.best_energy);
//! assert_eq!(truth.best_energy, q.energy(&truth.best));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod greedy;
pub mod random;
pub mod sa;
pub mod tabu;

use qubo::{BitVec, Energy};

/// Common result type for the baseline solvers.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Best solution found.
    pub best: BitVec,
    /// Its energy.
    pub best_energy: Energy,
    /// Total bit flips (or samples) performed.
    pub steps: u64,
}
