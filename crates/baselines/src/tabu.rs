//! Tabu search: forced steepest flips with a recency memory.
//!
//! Each iteration flips the bit with minimum Δ among the non-tabu bits,
//! then marks it tabu for `tenure` iterations. Aspiration: a tabu move
//! is allowed anyway when it would improve the best energy seen.

use crate::BaselineResult;
use qubo::Qubo;
use qubo_search::{DeltaAcc, DeltaTracker};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Tabu-search parameters.
#[derive(Clone, Copy, Debug)]
pub struct TabuConfig {
    /// Iterations a flipped bit stays tabu.
    pub tenure: u64,
    /// Total flips.
    pub steps: u64,
    /// RNG seed (random start vector).
    pub seed: u64,
}

/// Runs tabu search from a uniformly random start.
///
/// Uses narrow (`i32`) Δ accumulators when the instance's Δ bound
/// permits, exactly like the virtual devices; the walk is identical
/// either way.
///
/// # Panics
/// Panics if `steps == 0` or `tenure >= n` leaves no admissible move.
#[must_use]
pub fn solve(q: &Qubo, cfg: &TabuConfig) -> BaselineResult {
    assert!(cfg.steps > 0, "need at least one step");
    assert!(
        (cfg.tenure as usize) < q.n(),
        "tenure {} leaves no admissible bit for n = {}",
        cfg.tenure,
        q.n()
    );
    if DeltaTracker::<i32>::fits(q) {
        solve_width::<i32>(q, cfg)
    } else {
        solve_width::<i64>(q, cfg)
    }
}

fn solve_width<A: DeltaAcc>(q: &Qubo, cfg: &TabuConfig) -> BaselineResult {
    let n = q.n();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let start = qubo::BitVec::random(n, &mut rng);
    let mut t = DeltaTracker::<A>::at_width(q, &start);
    // tabu_until[i]: first iteration at which bit i may flip again.
    let mut tabu_until = vec![0u64; n];
    for it in 0..cfg.steps {
        let (_, best_e) = t.best();
        let e = t.energy();
        let mut chosen: Option<(usize, A)> = None;
        for (i, &d) in t.deltas().iter().enumerate() {
            let tabu = tabu_until[i] > it;
            let aspirates = e + d.to_energy() < best_e;
            if tabu && !aspirates {
                continue;
            }
            if chosen.is_none_or(|(_, cd)| d < cd) {
                chosen = Some((i, d));
            }
        }
        // abs-lint: allow(no-unwrap) -- documented contract: tenure < n leaves ≥ 1 non-tabu bit
        let (k, _) = chosen.expect("tenure < n guarantees a candidate");
        t.flip(k);
        tabu_until[k] = it + 1 + cfg.tenure;
    }
    let (bx, be) = t.best();
    BaselineResult {
        best: bx.clone(),
        best_energy: be,
        steps: cfg.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use rand::rngs::StdRng;

    fn random_qubo(n: usize, seed: u64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        Qubo::random(n, &mut rng)
    }

    #[test]
    fn reaches_ground_state_of_small_instance() {
        let q = random_qubo(14, 1);
        let truth = exact::solve(&q);
        let r = solve(
            &q,
            &TabuConfig {
                tenure: 5,
                steps: 20_000,
                seed: 2,
            },
        );
        assert_eq!(r.best_energy, truth.best_energy);
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    fn escapes_one_flip_local_minima() {
        // Forced flips + tabu must visit more distinct states than a
        // plain greedy descent stuck oscillating between two solutions.
        let q = random_qubo(20, 3);
        let r = solve(
            &q,
            &TabuConfig {
                tenure: 7,
                steps: 5_000,
                seed: 4,
            },
        );
        // Best is 1-flip optimal.
        for i in 0..20 {
            assert!(q.energy(&r.best.flipped(i)) >= r.best_energy, "bit {i}");
        }
    }

    #[test]
    fn narrow_and_wide_widths_agree() {
        let q = random_qubo(18, 9);
        let cfg = TabuConfig {
            tenure: 4,
            steps: 4_000,
            seed: 10,
        };
        let narrow = solve_width::<i32>(&q, &cfg);
        let wide = solve_width::<i64>(&q, &cfg);
        assert_eq!(narrow.best_energy, wide.best_energy);
        assert_eq!(narrow.best, wide.best);
    }

    #[test]
    fn tenure_zero_is_plain_steepest_forced_descent() {
        let q = random_qubo(16, 5);
        let r = solve(
            &q,
            &TabuConfig {
                tenure: 0,
                steps: 1_000,
                seed: 6,
            },
        );
        assert_eq!(r.best_energy, q.energy(&r.best));
    }

    #[test]
    #[should_panic(expected = "leaves no admissible bit")]
    fn oversized_tenure_rejected() {
        let q = random_qubo(8, 7);
        let _ = solve(
            &q,
            &TabuConfig {
                tenure: 8,
                steps: 10,
                seed: 0,
            },
        );
    }
}
