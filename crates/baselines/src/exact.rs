//! Exhaustive exact solver via Gray-code enumeration.
//!
//! Visits all `2ⁿ` solutions in Gray-code order, so consecutive
//! solutions differ by one bit and the incremental Δ update applies:
//! total cost O(n·2ⁿ) instead of O(n²·2ⁿ). Practical to ~26 bits; used
//! as ground truth in tests and small benchmarks.

use crate::BaselineResult;
use qubo::Qubo;
use qubo_search::DeltaTracker;

/// Maximum problem size accepted by [`solve`].
pub const MAX_EXACT_BITS: usize = 26;

/// Finds the exact ground state by Gray-code enumeration.
///
/// # Panics
/// Panics if `q.n() > MAX_EXACT_BITS`.
#[must_use]
pub fn solve(q: &Qubo) -> BaselineResult {
    let n = q.n();
    assert!(
        n <= MAX_EXACT_BITS,
        "exact enumeration limited to {MAX_EXACT_BITS} bits (got {n})"
    );
    let mut t = DeltaTracker::new(q);
    // Standard reflected Gray code: step k flips the position of the
    // lowest set bit of k. 2ⁿ − 1 flips visit every solution once.
    let total: u64 = 1u64 << n;
    let mut best_e = t.energy();
    let mut best = t.x().clone();
    for k in 1..total {
        let bit = k.trailing_zeros() as usize;
        t.flip(bit);
        if t.energy() < best_e {
            best_e = t.energy();
            best.copy_from(t.x());
        }
    }
    BaselineResult {
        best,
        best_energy: best_e,
        steps: total - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::BitVec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_brute_force_on_small_instances() {
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let q = Qubo::random(10, &mut rng);
            let r = solve(&q);
            assert_eq!(r.best_energy, q.energy(&r.best));
            let mut expect = i64::MAX;
            for bits in 0u32..1024 {
                let x = BitVec::from_bits(
                    &(0..10).map(|i| ((bits >> i) & 1) as u8).collect::<Vec<_>>(),
                );
                expect = expect.min(q.energy(&x));
            }
            assert_eq!(r.best_energy, expect, "seed {seed}");
        }
    }

    #[test]
    fn visits_every_solution() {
        let q = Qubo::from_rows(2, &[[0, 0], [0, 0]]).unwrap();
        let r = solve(&q);
        assert_eq!(r.steps, 3); // 2² − 1 flips
        assert_eq!(r.best_energy, 0);
    }

    #[test]
    fn finds_planted_optimum() {
        // Plant a unique strongly-negative clique on bits {1, 3, 5}.
        let mut q = Qubo::zero(8).unwrap();
        for &i in &[1usize, 3, 5] {
            q.set(i, i, -100);
        }
        q.set(1, 3, -50);
        q.set(3, 5, -50);
        q.set(1, 5, -50);
        // Penalize everything else.
        for i in [0usize, 2, 4, 6, 7] {
            q.set(i, i, 10);
        }
        let r = solve(&q);
        assert_eq!(r.best.to_string(), "01010100");
        assert_eq!(r.best_energy, 3 * -100 + 2 * 3 * -50);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn oversized_problem_rejected() {
        let q = Qubo::zero(MAX_EXACT_BITS + 1).unwrap();
        let _ = solve(&q);
    }
}
