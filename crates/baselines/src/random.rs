//! Uniform random sampling — the null model every heuristic must beat.

use crate::BaselineResult;
use qubo::{BitVec, Energy, Qubo};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Evaluates `samples` uniformly random solutions and keeps the best.
///
/// # Panics
/// Panics if `samples == 0`.
#[must_use]
pub fn solve(q: &Qubo, samples: u64, seed: u64) -> BaselineResult {
    assert!(samples > 0, "need at least one sample");
    let n = q.n();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best = BitVec::random(n, &mut rng);
    let mut best_e: Energy = q.energy(&best);
    for _ in 1..samples {
        let x = BitVec::random(n, &mut rng);
        let e = q.energy(&x);
        if e < best_e {
            best = x;
            best_e = e;
        }
    }
    BaselineResult {
        best,
        best_energy: best_e,
        steps: samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;
    use rand::rngs::StdRng;

    fn random_qubo(n: usize, seed: u64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        Qubo::random(n, &mut rng)
    }

    #[test]
    fn energy_is_exact() {
        let q = random_qubo(32, 1);
        let r = solve(&q, 100, 2);
        assert_eq!(r.best_energy, q.energy(&r.best));
        assert_eq!(r.steps, 100);
    }

    #[test]
    fn loses_to_greedy_descent() {
        let q = random_qubo(64, 3);
        let rnd = solve(&q, 200, 4);
        let grd = greedy::solve(&q, 3, 4);
        assert!(grd.best_energy < rnd.best_energy);
    }

    #[test]
    fn deterministic_under_seed() {
        let q = random_qubo(16, 5);
        assert_eq!(solve(&q, 50, 6).best_energy, solve(&q, 50, 6).best_energy);
    }
}
