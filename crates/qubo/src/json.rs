//! JSON problem codec: the job-payload format shared by the `abs-server`
//! `POST /jobs` endpoint and the CLI `--problem-json` input path.
//!
//! Two problem encodings are accepted, discriminated by `"format"`:
//!
//! **Dense upper triangle** — `n` and the row-major upper triangle of
//! `W` (diagonal included), `n·(n+1)/2` integer weights:
//!
//! ```json
//! {"format": "dense", "n": 3, "upper": [-5, 2, 0, -3, 1, -8]}
//! ```
//!
//! **G-set-style edge list** — 1-indexed vertices, each edge
//! `[u, v, w]` encoded exactly like [`crate::format::parse_edge_list`]:
//! `W_uv = W_vu = w` and `−w` on both diagonals, so `E(X) = −cut(X)`:
//!
//! ```json
//! {"format": "edge-list", "n": 5, "edges": [[1, 2, 3], [2, 4, -1]]}
//! ```
//!
//! Every weight must be an integer that fits `i16` (after accumulation
//! of duplicate edges). Floats — including anything JSON would round —
//! are rejected with a typed error rather than truncated; JSON itself
//! cannot encode NaN, so a literal `NaN` fails at the syntax layer.

use crate::matrix::{Qubo, QuboBuilder, QuboError};

/// A typed rejection of a JSON problem payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonProblemError {
    /// The text is not valid JSON.
    Syntax(String),
    /// The top-level value is not an object.
    NotObject,
    /// A required field is absent.
    MissingField(&'static str),
    /// A field has the wrong JSON type.
    BadType {
        /// Field name.
        field: &'static str,
        /// What was expected there.
        expected: &'static str,
    },
    /// The `"format"` discriminator names no known encoding.
    UnknownFormat(String),
    /// A weight is not an integer (a float, NaN-adjacent, or a number
    /// outside `i64`).
    NotInteger {
        /// Field holding the offending array.
        field: &'static str,
        /// Zero-based element index within it.
        index: usize,
    },
    /// A single weight is outside the 16-bit range.
    Overflow {
        /// Field holding the offending array.
        field: &'static str,
        /// Zero-based element index within it.
        index: usize,
        /// The out-of-range value.
        value: i64,
    },
    /// The `"upper"` array length disagrees with `n`.
    SizeMismatch {
        /// `n·(n+1)/2` for the declared `n`.
        expected: usize,
        /// Actual element count.
        got: usize,
    },
    /// An edge is malformed: wrong arity, a self-loop, or a vertex id
    /// that is 0 or greater than `n`.
    BadEdge {
        /// Zero-based edge index.
        index: usize,
        /// What is wrong with it.
        why: &'static str,
    },
    /// A structurally invalid problem (bad size, accumulated overflow).
    Problem(QuboError),
}

impl std::fmt::Display for JsonProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Syntax(m) => write!(f, "invalid JSON: {m}"),
            Self::NotObject => write!(f, "problem payload must be a JSON object"),
            Self::MissingField(field) => write!(f, "missing field {field:?}"),
            Self::BadType { field, expected } => {
                write!(f, "field {field:?} must be {expected}")
            }
            Self::UnknownFormat(got) => {
                write!(
                    f,
                    "unknown format {got:?} (expected \"dense\" or \"edge-list\")"
                )
            }
            Self::NotInteger { field, index } => {
                write!(f, "{field}[{index}] is not an integer")
            }
            Self::Overflow {
                field,
                index,
                value,
            } => write!(f, "{field}[{index}] = {value} outside the i16 weight range"),
            Self::SizeMismatch { expected, got } => write!(
                f,
                "upper triangle has {got} entries, expected {expected} for the declared n"
            ),
            Self::BadEdge { index, why } => write!(f, "edges[{index}]: {why}"),
            Self::Problem(e) => write!(f, "invalid problem: {e}"),
        }
    }
}

impl std::error::Error for JsonProblemError {}

impl From<QuboError> for JsonProblemError {
    fn from(e: QuboError) -> Self {
        Self::Problem(e)
    }
}

/// Reads `obj[field]` as a `usize`, rejecting floats and negatives.
fn usize_field(obj: &serde_json::Value, field: &'static str) -> Result<usize, JsonProblemError> {
    let v = obj
        .get(field)
        .ok_or(JsonProblemError::MissingField(field))?;
    let n = v.as_u64().ok_or(JsonProblemError::BadType {
        field,
        expected: "a non-negative integer",
    })?;
    usize::try_from(n).map_err(|_| JsonProblemError::BadType {
        field,
        expected: "a non-negative integer",
    })
}

/// Reads one array element as an `i16` weight, with typed rejections
/// for floats (`as_i64` is `None` for any JSON float) and overflow.
fn weight_at(
    v: &serde_json::Value,
    field: &'static str,
    index: usize,
) -> Result<i16, JsonProblemError> {
    let w = v
        .as_i64()
        .ok_or(JsonProblemError::NotInteger { field, index })?;
    i16::try_from(w).map_err(|_| JsonProblemError::Overflow {
        field,
        index,
        value: w,
    })
}

/// Parses a JSON problem payload into a dense [`Qubo`].
///
/// # Errors
/// [`JsonProblemError`] on malformed JSON, an unknown `"format"`,
/// non-integer or out-of-range weights, a mismatched upper-triangle
/// length, or malformed edges.
pub fn parse_problem(text: &str) -> Result<Qubo, JsonProblemError> {
    let value = serde_json::from_str(text).map_err(|e| JsonProblemError::Syntax(e.to_string()))?;
    parse_problem_value(&value)
}

/// Parses an already-decoded JSON value (the server reuses the job
/// payload's `"problem"` sub-object without re-serializing it).
///
/// # Errors
/// See [`parse_problem`].
pub fn parse_problem_value(value: &serde_json::Value) -> Result<Qubo, JsonProblemError> {
    if value.as_object().is_none() {
        return Err(JsonProblemError::NotObject);
    }
    let format = value
        .get("format")
        .ok_or(JsonProblemError::MissingField("format"))?
        .as_str()
        .ok_or(JsonProblemError::BadType {
            field: "format",
            expected: "a string",
        })?;
    match format {
        "dense" => parse_dense(value),
        "edge-list" => parse_edge_list(value),
        other => Err(JsonProblemError::UnknownFormat(other.to_string())),
    }
}

/// Decodes the `"dense"` encoding: `n` plus the row-major upper
/// triangle (diagonal included).
fn parse_dense(value: &serde_json::Value) -> Result<Qubo, JsonProblemError> {
    let n = usize_field(value, "n")?;
    let upper = value
        .get("upper")
        .ok_or(JsonProblemError::MissingField("upper"))?
        .as_array()
        .ok_or(JsonProblemError::BadType {
            field: "upper",
            expected: "an array of integers",
        })?;
    let expected = n
        .checked_mul(n + 1)
        .map(|x| x / 2)
        .ok_or(JsonProblemError::Problem(QuboError::BadSize(n)))?;
    if upper.len() != expected {
        return Err(JsonProblemError::SizeMismatch {
            expected,
            got: upper.len(),
        });
    }
    let mut b = QuboBuilder::new(n)?;
    let mut k = 0usize;
    for i in 0..n {
        for j in i..n {
            let w = weight_at(&upper[k], "upper", k)?;
            if w != 0 {
                b.add(i, j, w)?;
            }
            k += 1;
        }
    }
    Ok(b.build()?)
}

/// Decodes the `"edge-list"` encoding with the Max-Cut QUBO mapping of
/// [`crate::format::parse_edge_list`]: duplicate edges fold by
/// accumulation, and the accumulated cell must still fit `i16`.
fn parse_edge_list(value: &serde_json::Value) -> Result<Qubo, JsonProblemError> {
    let n = usize_field(value, "n")?;
    let edges = value
        .get("edges")
        .ok_or(JsonProblemError::MissingField("edges"))?
        .as_array()
        .ok_or(JsonProblemError::BadType {
            field: "edges",
            expected: "an array of [u, v, w] triples",
        })?;
    let mut b = QuboBuilder::new(n)?;
    for (index, e) in edges.iter().enumerate() {
        let triple = e.as_array().ok_or(JsonProblemError::BadEdge {
            index,
            why: "not an array",
        })?;
        if triple.len() != 3 {
            return Err(JsonProblemError::BadEdge {
                index,
                why: "expected exactly [u, v, w]",
            });
        }
        let vertex = |k: usize, why: &'static str| -> Result<usize, JsonProblemError> {
            let id = triple[k]
                .as_u64()
                .ok_or(JsonProblemError::BadEdge { index, why })?;
            let id = usize::try_from(id).map_err(|_| JsonProblemError::BadEdge { index, why })?;
            if id == 0 || id > n {
                return Err(JsonProblemError::BadEdge {
                    index,
                    why: "vertex id out of range (ids are 1-indexed)",
                });
            }
            Ok(id)
        };
        let u = vertex(0, "u is not a positive integer")?;
        let v = vertex(1, "v is not a positive integer")?;
        if u == v {
            return Err(JsonProblemError::BadEdge {
                index,
                why: "self-loop",
            });
        }
        let w = weight_at(&triple[2], "edges", index)?;
        // `−w` must also fit the weight range (`−(−32768)` does not).
        let neg = w.checked_neg().ok_or(JsonProblemError::Overflow {
            field: "edges",
            index,
            value: i64::from(w),
        })?;
        b.add(u - 1, v - 1, w)?;
        b.add(u - 1, u - 1, neg)?;
        b.add(v - 1, v - 1, neg)?;
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format;
    use crate::BitVec;

    #[test]
    fn dense_round_trips_the_fig1_example() {
        let q = parse_problem(
            r#"{"format": "dense", "n": 4,
                "upper": [-5, 2, 0, 3, -3, 1, 0, -8, 2, -6]}"#,
        )
        .unwrap();
        let x = BitVec::from_bits(&[1, 0, 1, 1]);
        // Diagonals x_0, x_2, x_3 plus the set couplers W_03 and W_23,
        // counted once per unordered pair (both triangles are stored).
        assert_eq!(q.energy(&x), -5 - 8 - 6 + 2 * (3 + 2));
        assert_eq!(q.get(0, 3), 3);
        assert_eq!(q.get(3, 0), 3);
    }

    #[test]
    fn dense_rejects_mismatched_n() {
        let err = parse_problem(r#"{"format": "dense", "n": 3, "upper": [1, 2, 3]}"#).unwrap_err();
        assert_eq!(
            err,
            JsonProblemError::SizeMismatch {
                expected: 6,
                got: 3
            }
        );
    }

    #[test]
    fn dense_rejects_floats_and_overflow() {
        let err = parse_problem(r#"{"format": "dense", "n": 1, "upper": [1.5]}"#).unwrap_err();
        assert_eq!(
            err,
            JsonProblemError::NotInteger {
                field: "upper",
                index: 0
            }
        );
        // Exponent-form floats are floats even when integral in value.
        let err = parse_problem(r#"{"format": "dense", "n": 1, "upper": [1e2]}"#).unwrap_err();
        assert!(matches!(err, JsonProblemError::NotInteger { .. }));
        let err = parse_problem(r#"{"format": "dense", "n": 1, "upper": [40000]}"#).unwrap_err();
        assert_eq!(
            err,
            JsonProblemError::Overflow {
                field: "upper",
                index: 0,
                value: 40000
            }
        );
    }

    #[test]
    fn nan_is_a_syntax_error() {
        // JSON has no NaN literal; it must die at the syntax layer, not
        // sneak through as a number.
        let err = parse_problem(r#"{"format": "dense", "n": 1, "upper": [NaN]}"#).unwrap_err();
        assert!(matches!(err, JsonProblemError::Syntax(_)));
    }

    #[test]
    fn missing_and_mistyped_fields_are_typed() {
        assert_eq!(
            parse_problem("[1, 2]").unwrap_err(),
            JsonProblemError::NotObject
        );
        assert_eq!(
            parse_problem(r#"{"n": 2}"#).unwrap_err(),
            JsonProblemError::MissingField("format")
        );
        assert_eq!(
            parse_problem(r#"{"format": "dense", "upper": []}"#).unwrap_err(),
            JsonProblemError::MissingField("n")
        );
        assert_eq!(
            parse_problem(r#"{"format": "csr", "n": 2}"#).unwrap_err(),
            JsonProblemError::UnknownFormat("csr".into())
        );
        assert!(matches!(
            parse_problem(r#"{"format": "dense", "n": -3, "upper": []}"#).unwrap_err(),
            JsonProblemError::BadType { field: "n", .. }
        ));
    }

    #[test]
    fn edge_list_matches_the_text_format_encoding() {
        // Same instance through both codecs must yield identical
        // energies everywhere (4 vertices, exhaustive check).
        let json = r#"{"format": "edge-list", "n": 4,
                       "edges": [[1, 2, 3], [2, 3, 1], [3, 4, 2], [1, 4, -1], [1, 2, 2]]}"#;
        let q = parse_problem(json).unwrap();
        let text = "4 5\n1 2 3\n2 3 1\n3 4 2\n1 4 -1\n1 2 2\n";
        let sparse = format::parse_edge_list(text).unwrap();
        for bits in 0..16u32 {
            let x = BitVec::from_bits(&[
                (bits & 1) as u8,
                ((bits >> 1) & 1) as u8,
                ((bits >> 2) & 1) as u8,
                ((bits >> 3) & 1) as u8,
            ]);
            assert_eq!(q.energy(&x), sparse.energy(&x), "bits {bits:#06b}");
        }
    }

    #[test]
    fn edge_list_rejects_bad_edges() {
        let e = |json: &str| parse_problem(json).unwrap_err();
        assert!(matches!(
            e(r#"{"format": "edge-list", "n": 3, "edges": [[1, 1, 2]]}"#),
            JsonProblemError::BadEdge {
                index: 0,
                why: "self-loop"
            }
        ));
        assert!(matches!(
            e(r#"{"format": "edge-list", "n": 3, "edges": [[0, 2, 1]]}"#),
            JsonProblemError::BadEdge { index: 0, .. }
        ));
        assert!(matches!(
            e(r#"{"format": "edge-list", "n": 3, "edges": [[1, 4, 1]]}"#),
            JsonProblemError::BadEdge { index: 0, .. }
        ));
        assert!(matches!(
            e(r#"{"format": "edge-list", "n": 3, "edges": [[1, 2]]}"#),
            JsonProblemError::BadEdge { index: 0, .. }
        ));
        assert!(matches!(
            e(r#"{"format": "edge-list", "n": 3, "edges": [[1, 2, 0.5]]}"#),
            JsonProblemError::NotInteger {
                field: "edges",
                index: 0
            }
        ));
    }

    #[test]
    fn accumulated_overflow_is_reported_per_cell() {
        let json = r#"{"format": "edge-list", "n": 2,
                       "edges": [[1, 2, 30000], [1, 2, 30000]]}"#;
        assert!(matches!(
            parse_problem(json).unwrap_err(),
            JsonProblemError::Problem(QuboError::WeightOverflow(_, _))
        ));
    }
}
