//! Energy algebra helpers shared across the workspace.

/// Energies and energy differences are 64-bit signed integers.
///
/// For `n ≤ 32768` and 16-bit weights, `|E(X)| ≤ n²·2¹⁵ = 2⁴⁵` and
/// `|Δ_k(X)| ≤ 2·n·2¹⁵ + 2¹⁵ < 2³², so `i64` never overflows.
pub type Energy = i64;

/// Sentinel meaning "energy not yet evaluated"; the host's solution pool
/// initializes entries to `+∞` in this sense (§3.1 Step 1).
pub const UNEVALUATED: Energy = Energy::MAX;

/// The sign function `φ(x)` of Eq. (3): `φ(0) = +1`, `φ(1) = −1`
/// (equivalently `φ(x) = 1 − 2x`).
#[must_use]
#[inline]
pub fn phi(x: bool) -> i32 {
    1 - 2 * i32::from(x)
}

/// `φ(x_i)·φ(x_k)`: `+1` when the bits agree, `−1` when they differ —
/// the combined sign of the Δ update rule (Eq. (16)).
#[must_use]
#[inline]
pub fn phi2(xi: bool, xk: bool) -> i32 {
    1 - 2 * i32::from(xi != xk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_values() {
        assert_eq!(phi(false), 1);
        assert_eq!(phi(true), -1);
    }

    #[test]
    fn phi_identities() {
        // φ(x)² = 1 and φ(x)·φ(!x) = −1 (noted below Eq. (16)).
        for x in [false, true] {
            assert_eq!(phi(x) * phi(x), 1);
            assert_eq!(phi(x) * phi(!x), -1);
        }
    }

    #[test]
    fn phi2_is_product_of_phis() {
        for xi in [false, true] {
            for xk in [false, true] {
                assert_eq!(phi2(xi, xk), phi(xi) * phi(xk));
            }
        }
    }
}
