//! Plain-text `.qubo` interchange format (qbsolv-compatible).
//!
//! ```text
//! c  optional comments
//! p  qubo 0 <maxNodes> <nNodes> <nCouplers>
//! <i> <i> <w>     one line per non-zero diagonal weight
//! <i> <j> <w>     one line per non-zero coupler, i < j
//! ```
//!
//! The energy convention matches [`crate::Qubo`]: a coupler line
//! `i j w` sets `W_ij = W_ji = w`, contributing `2·w` to `E(X)` when
//! both bits are set.
//!
//! Two readers exist per input format: [`parse`] densifies into a
//! [`Qubo`] (O(n²) memory), while [`parse_sparse`] and
//! [`parse_edge_list`] build the CSR [`SparseQubo`] directly in O(nnz)
//! memory — the intended path for the large low-density instances the
//! sparse flip tier targets.

use crate::matrix::{Qubo, QuboBuilder, QuboError};
use crate::sparse::SparseQubo;
use std::fmt::Write as _;

/// Errors produced while parsing a `.qubo` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No `p` program line before the first data line.
    MissingProgramLine,
    /// No `<n> <m>` header line in an edge-list document.
    MissingHeader,
    /// A malformed line, with its 1-based line number and content.
    BadLine(usize, String),
    /// A weight outside the 16-bit range, with its 1-based line number.
    BadWeight(usize),
    /// A structurally invalid problem (bad size, index, overflow).
    Problem(QuboError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingProgramLine => write!(f, "missing `p qubo …` program line"),
            Self::MissingHeader => write!(f, "missing `<n> <m>` edge-list header line"),
            Self::BadLine(ln, s) => write!(f, "line {ln}: cannot parse {s:?}"),
            Self::BadWeight(ln) => write!(f, "line {ln}: weight outside i16 range"),
            Self::Problem(e) => write!(f, "invalid problem: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<QuboError> for ParseError {
    fn from(e: QuboError) -> Self {
        Self::Problem(e)
    }
}

/// Parses a `.qubo` document.
///
/// # Errors
/// See [`ParseError`].
pub fn parse(text: &str) -> Result<Qubo, ParseError> {
    let mut builder: Option<QuboBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let ln = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut it = rest.split_whitespace();
            let kind = it
                .next()
                .ok_or_else(|| ParseError::BadLine(ln, raw.into()))?;
            if kind != "qubo" {
                return Err(ParseError::BadLine(ln, raw.into()));
            }
            // topology, maxNodes, nNodes, nCouplers — only nNodes matters.
            let _topology = it
                .next()
                .ok_or_else(|| ParseError::BadLine(ln, raw.into()))?;
            let _max: usize = next_num(&mut it, ln, raw)?;
            let n: usize = next_num(&mut it, ln, raw)?;
            let _couplers: usize = next_num(&mut it, ln, raw)?;
            builder = Some(QuboBuilder::new(n)?);
            continue;
        }
        let b = builder.as_mut().ok_or(ParseError::MissingProgramLine)?;
        let mut it = line.split_whitespace();
        let i: usize = next_num(&mut it, ln, raw)?;
        let j: usize = next_num(&mut it, ln, raw)?;
        let w: i64 = next_num(&mut it, ln, raw)?;
        let w16 = i16::try_from(w).map_err(|_| ParseError::BadWeight(ln))?;
        b.add(i, j, w16)?;
    }
    builder
        .ok_or(ParseError::MissingProgramLine)?
        .build()
        .map_err(ParseError::Problem)
}

/// Parses a `.qubo` document straight into CSR form without building the
/// dense matrix — O(nnz) memory instead of O(n²).
///
/// Accepts the same documents as [`parse`] with identical semantics:
/// duplicate triplets (in either orientation) fold by accumulation, and
/// a fold overflowing the 16-bit weight range is reported per cell.
///
/// # Errors
/// See [`ParseError`].
pub fn parse_sparse(text: &str) -> Result<SparseQubo, ParseError> {
    let mut n: Option<usize> = None;
    let mut triplets: Vec<(usize, usize, i16)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let ln = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut it = rest.split_whitespace();
            let kind = it
                .next()
                .ok_or_else(|| ParseError::BadLine(ln, raw.into()))?;
            if kind != "qubo" {
                return Err(ParseError::BadLine(ln, raw.into()));
            }
            let _topology = it
                .next()
                .ok_or_else(|| ParseError::BadLine(ln, raw.into()))?;
            let _max: usize = next_num(&mut it, ln, raw)?;
            let nodes: usize = next_num(&mut it, ln, raw)?;
            let couplers: usize = next_num(&mut it, ln, raw)?;
            triplets.reserve(nodes.saturating_add(couplers));
            n = Some(nodes);
            continue;
        }
        if n.is_none() {
            return Err(ParseError::MissingProgramLine);
        }
        let mut it = line.split_whitespace();
        let i: usize = next_num(&mut it, ln, raw)?;
        let j: usize = next_num(&mut it, ln, raw)?;
        let w: i64 = next_num(&mut it, ln, raw)?;
        let w16 = i16::try_from(w).map_err(|_| ParseError::BadWeight(ln))?;
        triplets.push((i, j, w16));
    }
    let n = n.ok_or(ParseError::MissingProgramLine)?;
    SparseQubo::from_triplets(n, &triplets).map_err(ParseError::Problem)
}

/// Parses a G-set–style edge list straight into CSR form, encoding the
/// Max-Cut instance as a QUBO: each edge `{u, v}` of weight `w`
/// contributes `W_uv = W_vu = w` and `−w` to both diagonals `W_uu`,
/// `W_vv`, so `E(X) = −cut(X)` and minimization maximizes the cut (the
/// same encoding as `qubo_problems::maxcut::to_qubo`, without the dense
/// detour).
///
/// ```text
/// c  optional comments (`c`, `#`, or `%`)
/// <n> <m>          header: vertex and edge counts
/// <u> <v> [<w>]    one line per edge, vertices 1-indexed; w defaults to 1
/// ```
///
/// Duplicate edges (in either orientation) fold by weight accumulation,
/// consistent with the triplet handling of [`parse`] / [`parse_sparse`];
/// an accumulated weight outside the 16-bit range is reported per cell.
///
/// # Errors
/// See [`ParseError`]. Self-loops and 0 or out-of-range vertex ids are
/// [`ParseError::BadLine`].
pub fn parse_edge_list(text: &str) -> Result<SparseQubo, ParseError> {
    let mut n: Option<usize> = None;
    let mut triplets: Vec<(usize, usize, i16)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let ln = idx + 1;
        let line = raw.trim();
        if line.is_empty()
            || line.starts_with('c')
            || line.starts_with('#')
            || line.starts_with('%')
        {
            continue;
        }
        let mut it = line.split_whitespace();
        let Some(nodes) = n else {
            let v: usize = next_num(&mut it, ln, raw)?;
            let edges: usize = next_num(&mut it, ln, raw)?;
            triplets.reserve(edges.saturating_mul(3));
            n = Some(v);
            continue;
        };
        let u: usize = next_num(&mut it, ln, raw)?;
        let v: usize = next_num(&mut it, ln, raw)?;
        let w: i64 = match it.next() {
            Some(t) => t.parse().map_err(|_| ParseError::BadLine(ln, raw.into()))?,
            None => 1,
        };
        let w16 = i16::try_from(w).map_err(|_| ParseError::BadWeight(ln))?;
        // `−w` must also fit the weight range, and edge-list ids are
        // 1-based with no self-loops.
        let neg = w16.checked_neg().ok_or(ParseError::BadWeight(ln))?;
        if u == 0 || v == 0 || u == v || u > nodes || v > nodes {
            return Err(ParseError::BadLine(ln, raw.into()));
        }
        let (a, b) = (u - 1, v - 1);
        triplets.push((a, b, w16));
        triplets.push((a, a, neg));
        triplets.push((b, b, neg));
    }
    let n = n.ok_or(ParseError::MissingHeader)?;
    SparseQubo::from_triplets(n, &triplets).map_err(ParseError::Problem)
}

fn next_num<T: std::str::FromStr>(
    it: &mut std::str::SplitWhitespace<'_>,
    ln: usize,
    raw: &str,
) -> Result<T, ParseError> {
    it.next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadLine(ln, raw.to_owned()))
}

/// Serializes a problem to the `.qubo` text format (sparse: zero weights
/// are omitted).
#[must_use]
pub fn to_string(q: &Qubo) -> String {
    let n = q.n();
    let couplers = q.coupler_count();
    let diagonals = (0..n).filter(|&i| q.diag(i) != 0).count();
    let mut out = String::new();
    let _ = writeln!(out, "c generated by the abs workspace");
    let _ = writeln!(out, "p qubo 0 {n} {n} {couplers}");
    let _ = writeln!(out, "c {diagonals} non-zero diagonals");
    for i in 0..n {
        if q.diag(i) != 0 {
            let _ = writeln!(out, "{i} {i} {}", q.diag(i));
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let w = q.get(i, j);
            if w != 0 {
                let _ = writeln!(out, "{i} {j} {w}");
            }
        }
    }
    out
}

/// Serializes a solution with its energy:
///
/// ```text
/// c abs solution
/// s <energy> <bitstring>
/// ```
#[must_use]
pub fn solution_to_string(x: &crate::BitVec, energy: i64) -> String {
    let mut bits = String::with_capacity(x.len());
    for i in 0..x.len() {
        bits.push(if x.get(i) { '1' } else { '0' });
    }
    format!("c abs solution\ns {energy} {bits}\n")
}

/// Parses a solution file produced by [`solution_to_string`].
///
/// # Errors
/// [`ParseError`] on malformed input.
pub fn parse_solution(text: &str) -> Result<(crate::BitVec, i64), ParseError> {
    for (idx, raw) in text.lines().enumerate() {
        let ln = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let Some(rest) = line.strip_prefix("s ") else {
            return Err(ParseError::BadLine(ln, raw.into()));
        };
        let mut it = rest.split_whitespace();
        let energy: i64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ParseError::BadLine(ln, raw.into()))?;
        let bits = it
            .next()
            .ok_or_else(|| ParseError::BadLine(ln, raw.into()))?;
        let x =
            crate::BitVec::from_bit_str(bits).ok_or_else(|| ParseError::BadLine(ln, raw.into()))?;
        return Ok((x, energy));
    }
    Err(ParseError::MissingProgramLine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::CouplingMatrix;
    use crate::BitVec;

    #[test]
    fn roundtrip() {
        let mut q = Qubo::zero(5).unwrap();
        q.set(0, 0, -5);
        q.set(0, 3, 7);
        q.set(2, 4, -1);
        q.set(4, 4, 9);
        let text = to_string(&q);
        let back = parse(&text).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn parse_with_comments_and_blank_lines() {
        let text = "c hello\n\np qubo 0 3 3 1\n0 0 -2\n\nc mid comment\n0 2 4\n";
        let q = parse(text).unwrap();
        assert_eq!(q.n(), 3);
        assert_eq!(q.diag(0), -2);
        assert_eq!(q.get(0, 2), 4);
        assert_eq!(q.get(2, 0), 4);
    }

    #[test]
    fn parse_energy_convention() {
        // coupler counted twice in the double sum
        let q = parse("p qubo 0 2 2 1\n0 1 3\n").unwrap();
        let x = BitVec::from_bit_str("11").unwrap();
        assert_eq!(q.energy(&x), 6);
    }

    #[test]
    fn errors_on_missing_program_line() {
        assert_eq!(
            parse("0 0 1\n").unwrap_err(),
            ParseError::MissingProgramLine
        );
        assert_eq!(
            parse("c only comments\n").unwrap_err(),
            ParseError::MissingProgramLine
        );
    }

    #[test]
    fn errors_on_garbage_line() {
        let err = parse("p qubo 0 2 2 0\n0 zero 1\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(2, _)));
    }

    #[test]
    fn errors_on_oversized_weight() {
        let err = parse("p qubo 0 2 2 1\n0 1 99999\n").unwrap_err();
        assert_eq!(err, ParseError::BadWeight(2));
    }

    #[test]
    fn errors_on_out_of_range_index() {
        let err = parse("p qubo 0 2 2 1\n0 5 1\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::Problem(QuboError::IndexOutOfRange(5))
        ));
    }

    #[test]
    fn solution_roundtrip() {
        let x = BitVec::from_bit_str("0110100").unwrap();
        let text = solution_to_string(&x, -42);
        let (back, e) = parse_solution(&text).unwrap();
        assert_eq!(back, x);
        assert_eq!(e, -42);
    }

    #[test]
    fn solution_parse_errors() {
        assert!(parse_solution("").is_err());
        assert!(parse_solution("c only comments\n").is_err());
        assert!(matches!(
            parse_solution("s notanumber 0101\n").unwrap_err(),
            ParseError::BadLine(1, _)
        ));
        assert!(matches!(
            parse_solution("s 5 01x1\n").unwrap_err(),
            ParseError::BadLine(1, _)
        ));
        assert!(matches!(
            parse_solution("x 5 0101\n").unwrap_err(),
            ParseError::BadLine(1, _)
        ));
    }

    #[test]
    fn duplicate_triplets_accumulate() {
        let q = parse("p qubo 0 2 2 1\n0 1 3\n1 0 4\n").unwrap();
        assert_eq!(q.get(0, 1), 7);
    }

    #[test]
    fn parse_sparse_matches_the_dense_parser() {
        let text = "c demo\np qubo 0 5 5 3\n0 0 -5\n0 3 7\n2 4 -1\n4 4 9\n";
        let dense = parse(text).unwrap();
        let sparse = parse_sparse(text).unwrap();
        assert_eq!(sparse.n(), dense.n());
        for i in 0..5 {
            assert_eq!(sparse.diag(i), dense.diag(i));
        }
        for bits in ["00000", "10010", "11111", "01101"] {
            let x = BitVec::from_bit_str(bits).unwrap();
            assert_eq!(sparse.energy(&x), dense.energy(&x), "bits={bits}");
        }
    }

    #[test]
    fn parse_sparse_folds_duplicates_like_the_dense_parser() {
        let text = "p qubo 0 3 3 1\n0 1 3\n1 0 4\n2 2 5\n2 2 -1\n";
        let sparse = parse_sparse(text).unwrap();
        assert_eq!(sparse.nnz(), 2); // (0,1) and (1,0), folded to 7
        assert_eq!(sparse.diag(2), 4);
        let x = BitVec::from_bit_str("110").unwrap();
        assert_eq!(sparse.energy(&x), 14); // 2·7 from the folded coupler
    }

    #[test]
    fn parse_sparse_shares_the_dense_error_contract() {
        assert_eq!(
            parse_sparse("0 0 1\n").unwrap_err(),
            ParseError::MissingProgramLine
        );
        assert_eq!(
            parse_sparse("p qubo 0 2 2 1\n0 1 99999\n").unwrap_err(),
            ParseError::BadWeight(2)
        );
        assert!(matches!(
            parse_sparse("p qubo 0 2 2 1\n0 5 1\n").unwrap_err(),
            ParseError::Problem(QuboError::IndexOutOfRange(5))
        ));
        // Folding overflow is caught per cell, exactly like QuboBuilder.
        let text = "p qubo 0 2 2 1\n0 1 30000\n1 0 30000\n";
        assert!(matches!(
            parse_sparse(text).unwrap_err(),
            ParseError::Problem(QuboError::WeightOverflow(_, _))
        ));
        assert!(matches!(parse(text).unwrap_err(), ParseError::Problem(_)));
    }

    #[test]
    fn edge_list_encodes_negated_cut() {
        // Triangle with one weighted edge: cut({0} | {1,2}) = 2 + 3 = 5.
        let text = "c triangle\n3 3\n1 2 2\n1 3 3\n2 3 1\n";
        let s = parse_edge_list(text).unwrap();
        assert_eq!(s.n(), 3);
        assert_eq!(s.couplers(), 3);
        assert_eq!(s.diag(0), -5); // −weighted_degree(0)
        assert_eq!(s.diag(1), -3);
        assert_eq!(s.diag(2), -4);
        let x = BitVec::from_bit_str("100").unwrap();
        assert_eq!(s.energy(&x), -5);
        // Moving every vertex to one side cuts nothing.
        let all = BitVec::from_bit_str("111").unwrap();
        assert_eq!(s.energy(&all), 0);
    }

    #[test]
    fn edge_list_folds_duplicate_edges() {
        // The same edge three times, once reversed: weights accumulate
        // in both the coupler and the diagonal degree terms.
        let text = "4 3\n1 2 2\n2 1 3\n1 2 -1\n";
        let s = parse_edge_list(text).unwrap();
        assert_eq!(s.couplers(), 1);
        assert_eq!(s.diag(0), -4);
        assert_eq!(s.diag(1), -4);
        let folded = parse_edge_list("4 1\n1 2 4\n").unwrap();
        let x = BitVec::from_bit_str("1000").unwrap();
        assert_eq!(s.energy(&x), folded.energy(&x));
        // A pair folding to zero drops the coupler entirely.
        let zero = parse_edge_list("2 2\n1 2 5\n2 1 -5\n").unwrap();
        assert_eq!(zero.nnz(), 0);
    }

    #[test]
    fn edge_list_defaults_weight_to_one_and_skips_comments() {
        let text = "# generator line\n% matrix-market style\nc gset style\n2 1\n1 2\n";
        let s = parse_edge_list(text).unwrap();
        assert_eq!(s.couplers(), 1);
        assert_eq!(s.diag(0), -1);
        let cut = BitVec::from_bit_str("10").unwrap();
        assert_eq!(s.energy(&cut), -1);
    }

    #[test]
    fn edge_list_rejects_bad_input() {
        assert_eq!(
            parse_edge_list("c nothing\n").unwrap_err(),
            ParseError::MissingHeader
        );
        // Self-loop, 0-indexed vertex, out-of-range vertex, bad weight.
        assert!(matches!(
            parse_edge_list("3 1\n2 2\n").unwrap_err(),
            ParseError::BadLine(2, _)
        ));
        assert!(matches!(
            parse_edge_list("3 1\n0 1\n").unwrap_err(),
            ParseError::BadLine(2, _)
        ));
        assert!(matches!(
            parse_edge_list("3 1\n1 4\n").unwrap_err(),
            ParseError::BadLine(2, _)
        ));
        assert_eq!(
            parse_edge_list("3 1\n1 2 99999\n").unwrap_err(),
            ParseError::BadWeight(2)
        );
        // −w must fit i16 too (i16::MIN has no negation).
        assert_eq!(
            parse_edge_list("3 1\n1 2 -32768\n").unwrap_err(),
            ParseError::BadWeight(2)
        );
    }
}
