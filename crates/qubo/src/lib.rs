//! QUBO / Ising model substrate for the Adaptive Bulk Search (ABS) framework.
//!
//! This crate provides the problem and solution representations shared by
//! every other crate in the workspace:
//!
//! * [`BitVec`] — a packed bit vector representing a candidate solution
//!   `X = x_0 x_1 … x_{n-1}`.
//! * [`Qubo`] — a dense symmetric weight matrix `W` of 16-bit weights with
//!   the energy function `E(X) = Xᵀ W X` (Eq. (1) of the paper) and the
//!   per-bit energy difference `Δ_k(X) = E(flip_k(X)) − E(X)` (Eq. (4)).
//! * [`Ising`] — the equivalent ±1-spin formulation and exact conversions
//!   in both directions.
//! * [`mod@format`] — a plain-text `.qubo` file format (qbsolv-compatible
//!   sparse triplets) for interchange.
//!
//! # Conventions
//!
//! The energy is the *double* sum over all ordered pairs, so an
//! off-diagonal weight `W_ij` (with `W_ij = W_ji`) contributes `2·W_ij`
//! when both bits are set. Energies and deltas are `i64`: for the maximum
//! supported size (`n = 32768`, weights in `[-32768, 32767]`) the energy
//! magnitude is bounded by `n² · 2¹⁵ = 2⁴⁵`, far inside `i64` range.
//!
//! # Example
//!
//! ```
//! use qubo::{Qubo, BitVec};
//!
//! // The 4-bit example of Fig. 1 in the paper.
//! let w = Qubo::from_rows(4, &[
//!     [-5,  2,  0,  3],
//!     [ 2, -3,  1,  0],
//!     [ 0,  1, -8,  2],
//!     [ 3,  0,  2, -6],
//! ]).unwrap();
//! let x = BitVec::from_bits(&[1, 0, 1, 1]);
//! assert_eq!(w.energy(&x), -5 - 8 - 6 + 2 * (0 + 3 + 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod energy;
pub mod format;
pub mod ising;
pub mod json;
pub mod matrix;
pub mod sparse;
pub mod stats;
pub mod storage;

pub use bitvec::BitVec;
pub use energy::{phi, Energy};
pub use ising::Ising;
pub use json::JsonProblemError;
pub use matrix::{ContentHash, Qubo, QuboBuilder, QuboError, ROW_ALIGN_BYTES, ROW_LANE};
pub use sparse::SparseQubo;
pub use stats::InstanceStats;
pub use storage::{CouplingMatrix, MatrixStorage, SPARSE_DENSITY_PER_MILLE};

/// Maximum problem size supported by the reference ABS implementation
/// (the paper's GPU register budget allows up to 32 k bits).
pub const MAX_BITS: usize = 32 * 1024;
