//! Matrix storage forms and the density-based dispatch between them.
//!
//! The paper's GPU kernel streams dense rows unconditionally — the right
//! call when 1024 threads amortize the O(n) traversal. This CPU
//! reproduction instead carries *two* first-class storage arms:
//!
//! * **Dense** — the padded row-major [`Qubo`] behind the SIMD flip tier
//!   (O(n) per flip, lane-parallel).
//! * **Sparse** — the CSR [`SparseQubo`] behind the O(degree) flip tier.
//!
//! [`MatrixStorage`] is the runtime tag naming the arm a search actually
//! ran on. Like `FlipKernel` in `qubo_search`, the chosen arm is recorded
//! in device global memory and exposed as the `abs_matrix_storage` info
//! gauge; `ABS_FORCE_DENSE` / `ABS_FORCE_SPARSE` pin the dispatch for CI
//! and debugging. The default decision compares the instance's coupler
//! density against [`SPARSE_DENSITY_PER_MILLE`], the crossover measured
//! by the `sparse_vs_dense` benchmark (BENCH_sparse.json).
//!
//! [`CouplingMatrix`] is the read-only interface the two forms share —
//! everything the dispatcher (and storage-generic test/bench code) needs
//! without committing to a layout.

use crate::bitvec::BitVec;
use crate::energy::Energy;
use crate::matrix::Qubo;
use crate::sparse::SparseQubo;
use std::sync::OnceLock;

/// Read-only view of a symmetric QUBO coupling matrix, shared by the
/// dense ([`Qubo`]) and CSR ([`SparseQubo`]) storage forms.
///
/// This is the layout-independent surface: size, coupler census (for the
/// density dispatch), the diagonal (`Δ_k(0)`), and the reference energy.
/// The *hot* per-flip row access stays on the concrete types — the dense
/// SIMD arms and the CSR O(degree) arm have deliberately different row
/// shapes, and forcing them through one virtual scan would cost the
/// dense path its codegen.
pub trait CouplingMatrix {
    /// Number of bits (variables) `n`.
    fn n(&self) -> usize;

    /// Number of non-zero off-diagonal couplers, counting each `{i, j}`
    /// pair once. May cost a full scan on dense storage (O(n²)); called
    /// once per dispatch, never per flip.
    fn couplers(&self) -> usize;

    /// Diagonal weight `W_kk`.
    fn diag(&self, k: usize) -> i16;

    /// Reference energy `E(X) = Xᵀ W X` (Eq. (1)).
    fn energy(&self, x: &BitVec) -> Energy;

    /// Coupler density in per-mille of the full upper triangle
    /// (`couplers / (n·(n−1)/2) × 1000`), in integer arithmetic so the
    /// device-side dispatch stays float-free. `1000` for `n ≤ 1`.
    fn density_per_mille(&self) -> u64 {
        let n = self.n() as u64;
        let pairs = n * (n - 1) / 2;
        if pairs == 0 {
            return 1000;
        }
        (self.couplers() as u64).saturating_mul(1000) / pairs
    }
}

impl CouplingMatrix for Qubo {
    fn n(&self) -> usize {
        Qubo::n(self)
    }

    fn couplers(&self) -> usize {
        self.coupler_count()
    }

    fn diag(&self, k: usize) -> i16 {
        Qubo::diag(self, k)
    }

    fn energy(&self, x: &BitVec) -> Energy {
        Qubo::energy(self, x)
    }
}

impl CouplingMatrix for SparseQubo {
    fn n(&self) -> usize {
        SparseQubo::n(self)
    }

    fn couplers(&self) -> usize {
        // CSR stores both triangles; each coupler appears twice.
        self.nnz() / 2
    }

    fn diag(&self, k: usize) -> i16 {
        SparseQubo::diag(self, k)
    }

    fn energy(&self, x: &BitVec) -> Energy {
        SparseQubo::energy(self, x)
    }
}

/// Densities at or below this many per-mille of the full upper triangle
/// dispatch to the CSR arm.
///
/// The crossover measured in BENCH_sparse.json (n = 4096, window n/8)
/// puts the O(degree) tier ahead of the dense SIMD tier well past 5 %
/// density; 20 ‰ (2 %) leaves a safety margin for instances whose degree
/// distribution is skewed (a few dense rows pay O(max-degree), not
/// O(avg-degree), on every hit).
pub const SPARSE_DENSITY_PER_MILLE: u64 = 20;

/// The matrix storage arm a search runs on. Recorded per device in
/// global memory (like the flip kernel) and reported through the
/// `abs_matrix_storage` info gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MatrixStorage {
    /// Dense padded rows — the SIMD flip tier's O(n) row stream.
    Dense = 1,
    /// Compressed sparse rows — the O(degree) flip tier.
    Sparse = 2,
}

impl MatrixStorage {
    /// Stable lowercase name for reports and metric labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::Sparse => "sparse",
        }
    }

    /// Wire encoding for the global-memory slot (`0` is reserved for
    /// "unset": no dispatch recorded yet).
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes [`MatrixStorage::as_u8`]; `None` for `0` ("unset") or any
    /// unknown value.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(Self::Dense),
            2 => Some(Self::Sparse),
            _ => None,
        }
    }

    /// The arm pinned by the environment, if any: a non-empty
    /// `ABS_FORCE_DENSE` pins dense, a non-empty `ABS_FORCE_SPARSE` pins
    /// sparse; dense wins when both are set. Cached for the process
    /// lifetime (same contract as `ABS_FORCE_SCALAR`).
    #[must_use]
    pub fn forced() -> Option<Self> {
        static FORCED: OnceLock<Option<MatrixStorage>> = OnceLock::new();
        *FORCED.get_or_init(|| {
            let set = |k: &str| std::env::var_os(k).is_some_and(|v| !v.is_empty());
            if set("ABS_FORCE_DENSE") {
                Some(MatrixStorage::Dense)
            } else if set("ABS_FORCE_SPARSE") {
                Some(MatrixStorage::Sparse)
            } else {
                None
            }
        })
    }

    /// Picks the storage arm for one instance: the forced arm if pinned,
    /// else CSR when the measured coupler density is at or below
    /// [`SPARSE_DENSITY_PER_MILLE`].
    #[must_use]
    pub fn select<M: CouplingMatrix + ?Sized>(m: &M) -> Self {
        if let Some(f) = Self::forced() {
            return f;
        }
        if m.density_per_mille() <= SPARSE_DENSITY_PER_MILLE {
            Self::Sparse
        } else {
            Self::Dense
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_and_wire_encoding_roundtrip() {
        assert_eq!(MatrixStorage::Dense.name(), "dense");
        assert_eq!(MatrixStorage::Sparse.name(), "sparse");
        for s in [MatrixStorage::Dense, MatrixStorage::Sparse] {
            assert_eq!(MatrixStorage::from_u8(s.as_u8()), Some(s));
        }
        assert_eq!(MatrixStorage::from_u8(0), None); // reserved "unset"
        assert_eq!(MatrixStorage::from_u8(9), None);
    }

    #[test]
    fn density_is_integer_per_mille_over_the_upper_triangle() {
        // 4 bits, couplers (0,1) and (2,3): 2 of 6 pairs = 333 ‰.
        let s = SparseQubo::from_triplets(4, &[(0, 1, 5), (2, 3, -1)]).unwrap();
        assert_eq!(s.couplers(), 2);
        assert_eq!(s.density_per_mille(), 333);
        // The dense view of the same instance agrees.
        let mut q = Qubo::zero(4).unwrap();
        q.set(0, 1, 5);
        q.set(2, 3, -1);
        assert_eq!(q.couplers(), 2);
        assert_eq!(q.density_per_mille(), 333);
        // Degenerate 1-bit instance counts as fully dense.
        let one = Qubo::zero(1).unwrap();
        assert_eq!(one.density_per_mille(), 1000);
    }

    #[test]
    fn dispatch_follows_the_density_threshold() {
        // A full random matrix is dense; a near-empty one is sparse.
        // (`select` honours the env pins, so only assert the threshold
        // branch when no pin is active — the forced-arm CI runs set one.)
        if MatrixStorage::forced().is_some() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(1);
        let q = Qubo::random(64, &mut rng);
        assert!(q.density_per_mille() > SPARSE_DENSITY_PER_MILLE);
        assert_eq!(MatrixStorage::select(&q), MatrixStorage::Dense);

        let mut s = Qubo::zero(64).unwrap();
        s.set(0, 1, 3);
        assert!(CouplingMatrix::density_per_mille(&s) <= SPARSE_DENSITY_PER_MILLE);
        assert_eq!(MatrixStorage::select(&s), MatrixStorage::Sparse);
    }

    #[test]
    fn dense_and_sparse_views_agree_through_the_trait() {
        let s = SparseQubo::from_triplets(5, &[(0, 2, 7), (1, 1, -4), (3, 4, 2)]).unwrap();
        let mut q = Qubo::zero(5).unwrap();
        q.set(0, 2, 7);
        q.set(1, 1, -4);
        q.set(3, 4, 2);
        assert_eq!(CouplingMatrix::n(&s), CouplingMatrix::n(&q));
        assert_eq!(s.couplers(), q.couplers());
        for k in 0..5 {
            assert_eq!(CouplingMatrix::diag(&s, k), CouplingMatrix::diag(&q, k));
        }
        let x = BitVec::from_bit_str("10101").unwrap();
        assert_eq!(
            CouplingMatrix::energy(&s, &x),
            CouplingMatrix::energy(&q, &x)
        );
    }
}
