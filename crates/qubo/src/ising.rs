//! The Ising-model formulation and exact conversions to/from QUBO.
//!
//! The Ising Hamiltonian used in the paper is
//! `H(S) = −Σ_{i<j} J_ij s_i s_j − Σ_i h_i s_i` over spins `s_i = ±1`.
//! QUBO bits map to spins through `s_i = φ(x_i) = 1 − 2·x_i`, so a
//! [`crate::BitVec`] doubles as a spin configuration (bit 0 ↦ spin +1,
//! bit 1 ↦ spin −1).

use crate::bitvec::BitVec;
use crate::energy::{phi, Energy};
use crate::matrix::{Qubo, QuboBuilder, QuboError};

/// A fully-connected Ising model with integer couplings.
///
/// Couplings are stored as `i64` because exact QUBO→Ising conversion of
/// 16-bit-weight problems introduces a factor of 4 (see
/// [`Ising::from_qubo`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ising {
    n: usize,
    /// External field `h_i`.
    h: Vec<i64>,
    /// Dense symmetric couplings `J_ij` with zero diagonal.
    j: Vec<i64>,
    /// Constant added to the Hamiltonian (tracks the QUBO offset).
    offset: i64,
}

impl Ising {
    /// Creates an `n`-spin model with zero fields, couplings, and offset.
    #[must_use]
    pub fn zero(n: usize) -> Self {
        Self {
            n,
            h: vec![0; n],
            j: vec![0; n * n],
            offset: 0,
        }
    }

    /// Number of spins.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// External field `h_i`.
    #[must_use]
    pub fn h(&self, i: usize) -> i64 {
        self.h[i]
    }

    /// Coupling `J_ij` (symmetric, zero on the diagonal).
    #[must_use]
    pub fn j(&self, i: usize, j: usize) -> i64 {
        self.j[i * self.n + j]
    }

    /// Constant offset of the Hamiltonian.
    #[must_use]
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// Sets `h_i`.
    pub fn set_h(&mut self, i: usize, v: i64) {
        self.h[i] = v;
    }

    /// Sets `J_ij = J_ji` (ignores `i == j`, the diagonal stays zero).
    pub fn set_j(&mut self, i: usize, jdx: usize, v: i64) {
        if i != jdx {
            self.j[i * self.n + jdx] = v;
            self.j[jdx * self.n + i] = v;
        }
    }

    /// Hamiltonian `H(S) = offset − Σ_{i<j} J_ij s_i s_j − Σ_i h_i s_i`
    /// where the spin configuration is encoded as bits (`s_i = φ(x_i)`).
    ///
    /// # Panics
    /// Panics if `spins.len() != n`.
    #[must_use]
    pub fn hamiltonian(&self, spins: &BitVec) -> Energy {
        assert_eq!(spins.len(), self.n, "spin configuration length mismatch");
        let mut e = self.offset;
        for i in 0..self.n {
            let si = i64::from(phi(spins.get(i)));
            e -= self.h[i] * si;
            for jdx in (i + 1)..self.n {
                let sj = i64::from(phi(spins.get(jdx)));
                e -= self.j[i * self.n + jdx] * si * sj;
            }
        }
        e
    }

    /// Exact conversion from a QUBO instance.
    ///
    /// The returned model satisfies `H(S) = 4·E(X)` for `s_i = φ(x_i)`;
    /// the factor 4 keeps every coupling integral (`x = (1−s)/2`
    /// introduces quarters otherwise). Couplings become
    /// `J_ij = −2·W_ij`, fields `h_i = 2·Σ_j W_ij`, and the offset is
    /// `Σ_{i,j} W_ij + Σ_i W_ii`.
    #[must_use]
    pub fn from_qubo(q: &Qubo) -> Self {
        let n = q.n();
        let mut ising = Self::zero(n);
        let mut total = 0i64;
        let mut trace = 0i64;
        for i in 0..n {
            let mut row_sum = 0i64;
            for jdx in 0..n {
                let w = i64::from(q.get(i, jdx));
                row_sum += w;
                total += w;
                if i != jdx {
                    ising.j[i * n + jdx] = -2 * w;
                }
            }
            trace += i64::from(q.diag(i));
            ising.h[i] = 2 * row_sum;
        }
        ising.offset = total + trace;
        ising
    }

    /// Exact conversion to a QUBO instance.
    ///
    /// The returned problem satisfies
    /// `H(S) = E(X) + returned_offset` for `s_i = φ(x_i)`:
    /// `W_ij = −2·J_ij` (i ≠ j, counted once in each triangle, i.e. the
    /// QUBO double-sum contributes `−4·J_ij` per pair, matching the
    /// expansion of `s_i s_j`), and
    /// `W_ii = 2·h_i + 2·Σ_{j≠i} J_ij`.
    ///
    /// # Errors
    /// [`QuboError::WeightOverflow`] if a weight exceeds the 16-bit range.
    pub fn to_qubo(&self) -> Result<(Qubo, i64), QuboError> {
        let n = self.n;
        let mut b = QuboBuilder::new(n)?;
        let mut pair_sum = 0i64;
        let mut h_sum = 0i64;
        for i in 0..n {
            let mut jrow = 0i64;
            for jdx in 0..n {
                if i == jdx {
                    continue;
                }
                let jij = self.j[i * n + jdx];
                jrow += jij;
                if i < jdx {
                    pair_sum += jij;
                    let w = -2 * jij;
                    let w16 = i16::try_from(w).map_err(|_| QuboError::WeightOverflow(i, jdx))?;
                    b.add(i, jdx, w16)?;
                }
            }
            h_sum += self.h[i];
            let diag = 2 * self.h[i] + 2 * jrow;
            let d16 = i16::try_from(diag).map_err(|_| QuboError::WeightOverflow(i, i))?;
            b.add(i, i, d16)?;
        }
        let offset = self.offset - pair_sum - h_sum;
        Ok((b.build()?, offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn all_configs(n: usize) -> impl Iterator<Item = BitVec> {
        (0u32..(1 << n)).map(move |bits| {
            BitVec::from_bits(&(0..n).map(|i| ((bits >> i) & 1) as u8).collect::<Vec<_>>())
        })
    }

    #[test]
    fn hamiltonian_of_small_model() {
        // Two ferromagnetically coupled spins: aligned states are lower.
        let mut m = Ising::zero(2);
        m.set_j(0, 1, 1);
        let up_up = BitVec::from_bit_str("00").unwrap(); // s = (+1, +1)
        let up_down = BitVec::from_bit_str("01").unwrap(); // s = (+1, −1)
        assert_eq!(m.hamiltonian(&up_up), -1);
        assert_eq!(m.hamiltonian(&up_down), 1);
    }

    #[test]
    fn field_prefers_aligned_spin() {
        let mut m = Ising::zero(1);
        m.set_h(0, 3);
        let up = BitVec::from_bit_str("0").unwrap(); // s = +1
        let down = BitVec::from_bit_str("1").unwrap(); // s = −1
        assert_eq!(m.hamiltonian(&up), -3);
        assert_eq!(m.hamiltonian(&down), 3);
    }

    #[test]
    fn diagonal_stays_zero() {
        let mut m = Ising::zero(3);
        m.set_j(1, 1, 42);
        assert_eq!(m.j(1, 1), 0);
    }

    #[test]
    fn qubo_to_ising_is_4x_exact() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let mut q = Qubo::zero(6).unwrap();
            for i in 0..6 {
                for j in i..6 {
                    q.set(i, j, rng.gen_range(-50..=50));
                }
            }
            let ising = Ising::from_qubo(&q);
            for x in all_configs(6) {
                assert_eq!(ising.hamiltonian(&x), 4 * q.energy(&x), "x={x}");
            }
        }
    }

    #[test]
    fn ising_to_qubo_is_exact_with_offset() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..5 {
            let mut m = Ising::zero(5);
            for i in 0..5 {
                m.set_h(i, rng.gen_range(-20..=20));
                for j in (i + 1)..5 {
                    m.set_j(i, j, rng.gen_range(-20..=20));
                }
            }
            let (q, offset) = m.to_qubo().unwrap();
            for x in all_configs(5) {
                assert_eq!(m.hamiltonian(&x), q.energy(&x) + offset, "x={x}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_ordering_of_states() {
        // qubo -> ising -> qubo yields energies scaled by 4 plus an offset,
        // so the argmin is preserved.
        let mut rng = StdRng::seed_from_u64(17);
        let mut q = Qubo::zero(5).unwrap();
        for i in 0..5 {
            for j in i..5 {
                q.set(i, j, rng.gen_range(-30..=30));
            }
        }
        let (q2, offset) = Ising::from_qubo(&q).to_qubo().unwrap();
        for x in all_configs(5) {
            assert_eq!(q2.energy(&x) + offset, 4 * q.energy(&x));
        }
    }

    #[test]
    fn to_qubo_reports_overflow() {
        let mut m = Ising::zero(2);
        m.set_j(0, 1, i64::from(i16::MAX)); // -2*J overflows i16
        assert!(matches!(
            m.to_qubo().unwrap_err(),
            QuboError::WeightOverflow(0, 1)
        ));
    }
}
