//! Sparse (CSR) QUBO representation.
//!
//! The paper's GPU kernel is deliberately dense — every flip streams a
//! full matrix row, which is exactly what keeps 1024 threads busy and
//! the memory system saturated. On a CPU, however, sparse instances
//! (G-set graphs have ~0.5 % density) reward an O(degree) update. This
//! module provides the compressed-row form used by
//! `qubo_search::sparse::SparseDeltaTracker`; the dense/sparse trade-off
//! is measured in the `sparse_vs_dense` benchmark.

use crate::matrix::{Qubo, QuboError};
use crate::{BitVec, Energy, MAX_BITS};

/// A QUBO in compressed-sparse-row form: for each row `k`, the non-zero
/// off-diagonal entries `(j, W_kj)` plus the diagonal `W_kk`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseQubo {
    n: usize,
    /// CSR row starts into `cols`/`vals`, length `n + 1`.
    row_start: Vec<u32>,
    /// Column indices of non-zero off-diagonal entries.
    cols: Vec<u32>,
    /// Their weights.
    vals: Vec<i16>,
    /// Diagonal weights.
    diag: Vec<i16>,
}

impl SparseQubo {
    /// Builds the sparse form of a dense instance. O(n²).
    #[must_use]
    pub fn from_dense(q: &Qubo) -> Self {
        let n = q.n();
        let mut row_start = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut diag = Vec::with_capacity(n);
        row_start.push(0u32);
        for i in 0..n {
            let row = q.row(i);
            for (j, &w) in row.iter().enumerate() {
                if j != i && w != 0 {
                    cols.push(j as u32);
                    vals.push(w);
                }
            }
            diag.push(q.diag(i));
            row_start.push(cols.len() as u32);
        }
        Self {
            n,
            row_start,
            cols,
            vals,
            diag,
        }
    }

    /// Builds directly from sparse triplets (`i < j` pairs may appear in
    /// any order; duplicates sum; both triangle orders accepted).
    ///
    /// # Errors
    /// Same domain as [`Qubo`]: size in `1..=MAX_BITS`, indices in
    /// range, accumulated weights within `i16`.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, i16)]) -> Result<Self, QuboError> {
        if n == 0 || n > MAX_BITS {
            return Err(QuboError::BadSize(n));
        }
        // Accumulate per-row maps to keep memory O(nnz), not O(n²).
        let mut diag_acc = vec![0i32; n];
        let mut rows: Vec<std::collections::BTreeMap<u32, i32>> =
            vec![std::collections::BTreeMap::new(); n];
        for &(i, j, w) in triplets {
            if i >= n {
                return Err(QuboError::IndexOutOfRange(i));
            }
            if j >= n {
                return Err(QuboError::IndexOutOfRange(j));
            }
            if i == j {
                // invariant: i < n checked above; diag_acc has length n.
                diag_acc[i] += i32::from(w);
            } else {
                // invariant: i and j both range-checked against n above.
                *rows[i].entry(j as u32).or_insert(0) += i32::from(w);
                *rows[j].entry(i as u32).or_insert(0) += i32::from(w);
            }
        }
        let mut row_start = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut diag = Vec::with_capacity(n);
        row_start.push(0u32);
        for i in 0..n {
            // invariant: i < n = rows.len() = diag_acc.len().
            for (&j, &w) in &rows[i] {
                if w != 0 {
                    let w16 =
                        i16::try_from(w).map_err(|_| QuboError::WeightOverflow(i, j as usize))?;
                    cols.push(j);
                    vals.push(w16);
                }
            }
            // invariant: i < n = diag_acc.len() by the loop bound.
            let d16 = i16::try_from(diag_acc[i]).map_err(|_| QuboError::WeightOverflow(i, i))?;
            diag.push(d16);
            row_start.push(cols.len() as u32);
        }
        Ok(Self {
            n,
            row_start,
            cols,
            vals,
            diag,
        })
    }

    /// Number of bits.
    #[must_use]
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored non-zero off-diagonal entries (both triangles).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Diagonal weight `W_kk`.
    #[must_use]
    #[inline]
    pub fn diag(&self, k: usize) -> i16 {
        // invariant: callers pass k < n; diag has length n.
        self.diag[k]
    }

    /// The non-zero off-diagonal entries of row `k` as `(column, weight)`
    /// pairs — the O(degree) scan of the sparse flip update.
    #[inline]
    pub fn row(&self, k: usize) -> impl Iterator<Item = (usize, i16)> + '_ {
        // invariant: k < n and row_start has n + 1 entries.
        let lo = self.row_start[k] as usize;
        let hi = self.row_start[k + 1] as usize;
        // invariant: lo ≤ hi ≤ cols.len() by CSR construction.
        self.cols[lo..hi]
            .iter()
            // invariant: vals is parallel to cols (same length).
            .zip(&self.vals[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Row `k` as parallel column/weight slices — the zero-abstraction
    /// form of [`SparseQubo::row`] for hot loops that want to control
    /// their own iteration (unrolling, index arithmetic).
    #[must_use]
    #[inline]
    pub fn row_parts(&self, k: usize) -> (&[u32], &[i16]) {
        // invariant: k < n and row_start has n + 1 entries.
        let lo = self.row_start[k] as usize;
        let hi = self.row_start[k + 1] as usize;
        // invariant: lo ≤ hi ≤ cols.len() = vals.len() by construction.
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Degree (non-zero off-diagonals) of row `k`.
    #[must_use]
    pub fn degree(&self, k: usize) -> usize {
        // invariant: k < n and row_start has n + 1 entries.
        (self.row_start[k + 1] - self.row_start[k]) as usize
    }

    /// Reference energy `E(X)` (O(nnz + n)).
    ///
    /// # Panics
    /// Panics on a length mismatch.
    #[must_use]
    pub fn energy(&self, x: &BitVec) -> Energy {
        assert_eq!(x.len(), self.n, "solution length mismatch");
        let mut e = 0i64;
        for i in 0..self.n {
            if !x.get(i) {
                continue;
            }
            // invariant: i < n = diag.len() by the loop bound.
            e += i64::from(self.diag[i]);
            for (j, w) in self.row(i) {
                if x.get(j) {
                    e += i64::from(w);
                }
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sparse_random(n: usize, nnz_pairs: usize, seed: u64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Qubo::zero(n).unwrap();
        for _ in 0..nnz_pairs {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            q.set(i, j, rng.gen_range(-50..=50));
        }
        q
    }

    #[test]
    fn from_dense_matches_energies() {
        let q = sparse_random(40, 80, 1);
        let s = SparseQubo::from_dense(&q);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let x = BitVec::random(40, &mut rng);
            assert_eq!(s.energy(&x), q.energy(&x));
        }
        assert_eq!(s.n(), 40);
    }

    #[test]
    fn rows_are_symmetric_views() {
        let q = sparse_random(20, 30, 3);
        let s = SparseQubo::from_dense(&q);
        for i in 0..20 {
            for (j, w) in s.row(i) {
                assert_eq!(q.get(i, j), w);
                assert!(s.row(j).any(|(jj, ww)| jj == i && ww == w), "({i},{j})");
            }
            assert_eq!(s.degree(i), s.row(i).count());
        }
    }

    #[test]
    fn from_triplets_accumulates_both_orders() {
        let s = SparseQubo::from_triplets(4, &[(0, 2, 3), (2, 0, 4), (1, 1, -5)]).unwrap();
        assert_eq!(s.nnz(), 2); // (0,2) and (2,0) views of one coupler
        assert_eq!(s.diag(1), -5);
        assert!(s.row(0).any(|(j, w)| j == 2 && w == 7));
        assert!(s.row(2).any(|(j, w)| j == 0 && w == 7));
    }

    #[test]
    fn from_triplets_validates() {
        assert!(matches!(
            SparseQubo::from_triplets(0, &[]),
            Err(QuboError::BadSize(0))
        ));
        assert!(matches!(
            SparseQubo::from_triplets(2, &[(0, 5, 1)]),
            Err(QuboError::IndexOutOfRange(5))
        ));
        assert!(matches!(
            SparseQubo::from_triplets(2, &[(0, 1, 30_000), (0, 1, 30_000)]),
            Err(QuboError::WeightOverflow(0, 1))
        ));
    }

    #[test]
    fn zero_weights_are_dropped() {
        let s = SparseQubo::from_triplets(3, &[(0, 1, 5), (0, 1, -5)]).unwrap();
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.degree(0), 0);
    }

    #[test]
    fn triplet_and_dense_paths_agree() {
        let triplets = [(0usize, 1usize, 4i16), (1, 2, -3), (0, 0, 7), (2, 3, 1)];
        let s1 = SparseQubo::from_triplets(4, &triplets).unwrap();
        let mut b = crate::QuboBuilder::new(4).unwrap();
        for &(i, j, w) in &triplets {
            b.add(i, j, w).unwrap();
        }
        let s2 = SparseQubo::from_dense(&b.build().unwrap());
        assert_eq!(s1, s2);
    }
}
