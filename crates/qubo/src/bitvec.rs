//! Packed bit vectors representing candidate solutions.

use rand::Rng;
use std::fmt;

/// A fixed-length bit vector `X = x_0 x_1 … x_{n-1}` packed into 64-bit
/// words, the genetic representation used throughout the framework.
///
/// Bit `i` lives in word `i / 64` at position `i % 64`. Unused high bits
/// of the last word are always zero, which lets [`Eq`]/[`Ord`]/hashing
/// operate on whole words.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitVec {
    len: usize,
    words: Box<[u64]>,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits (`X = 00…0`), the canonical
    /// starting point of the O(1)-efficiency search (Algorithm 4 requires
    /// `X = 0` so that `E(X) = 0` and `Δ_i = W_ii`).
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0u64; len.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// Creates a vector from explicit bit values (anything non-zero is 1).
    #[must_use]
    pub fn from_bits(bits: &[u8]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b != 0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a vector of `len` bits from a `0`/`1` string, e.g. `"0100"`.
    ///
    /// Returns `None` if the string contains other characters.
    #[must_use]
    pub fn from_bit_str(s: &str) -> Option<Self> {
        let mut v = Self::zeros(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => {}
                '1' => v.set(i, true),
                _ => return None,
            }
        }
        Some(v)
    }

    /// Creates a uniformly random vector of `len` bits.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut v = Self::zeros(len);
        for w in v.words.iter_mut() {
            *w = rng.gen();
        }
        v.mask_tail();
        v
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero bits.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i` in place: the `flip_k` neighbour function (Eq. (2)).
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Returns a copy with bit `i` flipped (`flip_k(X)` as a pure function).
    #[must_use]
    pub fn flipped(&self, i: usize) -> Self {
        let mut c = self.clone();
        c.flip(i);
        c
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to `other` (the number of flips a straight search
    /// needs to transform `self` into `other`).
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[must_use]
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterates over indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &w)| BitIter { word: w }.map(move |b| wi * 64 + b))
    }

    /// Iterates over indices where `self` and `other` differ, in
    /// increasing order (the candidate flips of a straight search).
    pub fn iter_diff<'a>(&'a self, other: &'a Self) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .enumerate()
            .flat_map(|(wi, (&a, &b))| BitIter { word: a ^ b }.map(move |bit| wi * 64 + bit))
    }

    /// The underlying 64-bit words (low bit of word 0 is `x_0`).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Writes the word-level difference `self XOR other` into `scratch`
    /// and returns the number of words written (`⌈len/64⌉`).
    ///
    /// Device hot paths pre-size `scratch` once (typically on the
    /// stack) and then walk the set bits of each word with
    /// `trailing_zeros`, so a straight search costs one XOR pass plus
    /// one step per differing bit — no per-bit scan, no allocation.
    /// The popcount of the written words equals
    /// [`BitVec::hamming`]`(self, other)`.
    ///
    /// # Panics
    /// Panics if lengths differ or `scratch` holds fewer words than
    /// `self`.
    pub fn diff_words_into(&self, other: &Self, scratch: &mut [u64]) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        let nw = self.words.len();
        assert!(
            scratch.len() >= nw,
            "scratch too small: {} < {nw}",
            scratch.len()
        );
        for (s, (&a, &b)) in scratch
            .iter_mut()
            .zip(self.words.iter().zip(other.words.iter()))
        {
            *s = a ^ b;
        }
        nw
    }

    /// Fills `self` from another vector of the same length without
    /// reallocating (a "workhorse" copy).
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words.copy_from_slice(&other.words);
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            None
        } else {
            let b = self.word.trailing_zeros() as usize;
            self.word &= self.word - 1;
            Some(b)
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec({})", self)
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 256 {
            for i in 0..self.len {
                write!(f, "{}", u8::from(self.get(i)))?;
            }
            Ok(())
        } else {
            write!(f, "<{} bits, {} ones>", self.len, self.count_ones())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_all_zero() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.get(0));
        assert!(!v.get(129));
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BitVec::zeros(100);
        v.set(3, true);
        v.set(64, true);
        v.set(99, true);
        assert!(v.get(3) && v.get(64) && v.get(99));
        assert_eq!(v.count_ones(), 3);
        v.flip(64);
        assert!(!v.get(64));
        v.flip(64);
        assert!(v.get(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(10);
        let _ = v.get(10);
    }

    #[test]
    fn from_bit_str_and_display() {
        let v = BitVec::from_bit_str("01001").unwrap();
        assert_eq!(v.to_string(), "01001");
        assert!(BitVec::from_bit_str("01x").is_none());
    }

    #[test]
    fn from_bits_matches_from_bit_str() {
        let a = BitVec::from_bits(&[0, 1, 0, 0, 1]);
        let b = BitVec::from_bit_str("01001").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_respects_tail_mask() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [1usize, 5, 63, 64, 65, 127, 200] {
            let v = BitVec::random(len, &mut rng);
            // Equality with a manually re-set copy proves tail bits are 0.
            let mut copy = BitVec::zeros(len);
            for i in 0..len {
                copy.set(i, v.get(i));
            }
            assert_eq!(v, copy, "len={len}");
        }
    }

    #[test]
    fn hamming_distance() {
        let a = BitVec::from_bit_str("0101").unwrap();
        let b = BitVec::from_bit_str("1100").unwrap();
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn iter_ones_order() {
        let v = BitVec::from_bits(&[1, 0, 0, 1, 1]);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 3, 4]);
    }

    #[test]
    fn iter_diff_crosses_word_boundary() {
        let mut a = BitVec::zeros(130);
        let mut b = BitVec::zeros(130);
        a.set(2, true);
        b.set(70, true);
        a.set(129, true);
        b.set(129, true); // same -> not in diff
        assert_eq!(a.iter_diff(&b).collect::<Vec<_>>(), vec![2, 70]);
        assert_eq!(a.hamming(&b), 2);
    }

    #[test]
    fn diff_words_into_matches_iter_diff() {
        let mut rng = StdRng::seed_from_u64(9);
        for len in [1usize, 63, 64, 65, 130, 200] {
            let a = BitVec::random(len, &mut rng);
            let b = BitVec::random(len, &mut rng);
            let mut scratch = [0u64; 4];
            let nw = a.diff_words_into(&b, &mut scratch);
            assert_eq!(nw, len.div_ceil(64));
            let pop: usize = scratch[..nw].iter().map(|w| w.count_ones() as usize).sum();
            assert_eq!(pop, a.hamming(&b), "len={len}");
            let bits: Vec<usize> = (0..nw)
                .flat_map(|wi| {
                    let w = scratch[wi];
                    (0..64)
                        .filter(move |b| (w >> b) & 1 == 1)
                        .map(move |b| wi * 64 + b)
                })
                .collect();
            assert_eq!(bits, a.iter_diff(&b).collect::<Vec<_>>());
        }
    }

    #[test]
    fn flipped_is_pure() {
        let a = BitVec::from_bit_str("000").unwrap();
        let b = a.flipped(1);
        assert_eq!(a.to_string(), "000");
        assert_eq!(b.to_string(), "010");
    }

    #[test]
    fn ordering_is_word_lexicographic_and_consistent() {
        let a = BitVec::from_bit_str("10").unwrap(); // x0=1
        let b = BitVec::from_bit_str("01").unwrap(); // x1=1
        assert!(a < b); // word value 1 < word value 2
        assert_ne!(a, b);
    }

    #[test]
    fn copy_from_reuses_buffer() {
        let mut a = BitVec::zeros(65);
        let mut b = BitVec::zeros(65);
        b.set(64, true);
        a.copy_from(&b);
        assert_eq!(a, b);
    }
}
