//! Dense symmetric QUBO weight matrices.

use crate::bitvec::BitVec;
use crate::energy::phi;
use crate::MAX_BITS;
use rand::Rng;
use std::fmt;

/// Errors produced when constructing a [`Qubo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuboError {
    /// The problem has zero bits or exceeds [`MAX_BITS`].
    BadSize(usize),
    /// The provided dense matrix is not `n × n`.
    BadShape {
        /// Number of provided entries.
        got: usize,
        /// Number of expected entries (`n²`).
        expected: usize,
    },
    /// The provided dense matrix is not symmetric at `(i, j)`.
    NotSymmetric(usize, usize),
    /// A triplet refers to a bit index `>= n`.
    IndexOutOfRange(usize),
    /// Accumulated weight at `(i, j)` overflows the 16-bit weight range.
    WeightOverflow(usize, usize),
}

impl fmt::Display for QuboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadSize(n) => write!(f, "problem size {n} not in 1..={MAX_BITS}"),
            Self::BadShape { got, expected } => {
                write!(f, "dense matrix has {got} entries, expected {expected}")
            }
            Self::NotSymmetric(i, j) => write!(f, "matrix not symmetric at ({i}, {j})"),
            Self::IndexOutOfRange(i) => write!(f, "bit index {i} out of range"),
            Self::WeightOverflow(i, j) => {
                write!(f, "accumulated weight at ({i}, {j}) overflows i16")
            }
        }
    }
}

impl std::error::Error for QuboError {}

/// Row stride granularity in `i16` elements: 32 × 2 B = one 64-byte
/// cache line, and a multiple of every SIMD lane count we dispatch to,
/// so lane-wise kernels never straddle a row boundary.
pub const ROW_LANE: usize = 32;

/// Byte alignment of row 0 (and, since the stride is a [`ROW_LANE`]
/// multiple, of every row).
pub const ROW_ALIGN_BYTES: usize = ROW_LANE * 2;

/// Allocates a zeroed padded backing buffer for an `n`-bit problem:
/// `(stride, element offset of row 0, buffer)`. The buffer is
/// over-allocated by `ROW_LANE − 1` elements so the offset can align
/// row 0 to [`ROW_ALIGN_BYTES`] without unsafe allocation APIs.
fn padded_alloc(n: usize) -> (usize, usize, Box<[i16]>) {
    let stride = n.div_ceil(ROW_LANE) * ROW_LANE;
    let w = vec![0i16; n * stride + ROW_LANE - 1].into_boxed_slice();
    // `Box<[i16]>` is at least 2-byte aligned, so the byte remainder is
    // even and the element offset lands in 0..ROW_LANE.
    let addr = w.as_ptr() as usize;
    let off = ((ROW_ALIGN_BYTES - addr % ROW_ALIGN_BYTES) % ROW_ALIGN_BYTES) / 2;
    (stride, off, w)
}

/// An instance of a QUBO problem: an `n × n` symmetric matrix of 16-bit
/// weights `W = (W_ij)`, stored dense row-major.
///
/// The objective is to find an `n`-bit vector `X` minimizing
/// `E(X) = Xᵀ W X = Σ_{i,j} W_ij x_i x_j` (Eq. (1)).
///
/// The dense layout mirrors the GPU global-memory layout in the paper:
/// the hot operation of the incremental search is reading one full row
/// `W_k` contiguously (symmetry makes the column `W_{·k}` equal to the
/// row `W_{k·}`). Deviating from the paper's plain `n × n` square, rows
/// are stored at a stride rounded up to [`ROW_LANE`] elements with row 0
/// aligned to [`ROW_ALIGN_BYTES`]; the padding tail of every row is
/// zero. [`Qubo::row`] still returns exactly the `n` logical weights,
/// while [`Qubo::row_padded`] exposes the full stride for lane-wise
/// kernels (see DESIGN.md: zero pad weights contribute nothing to any
/// Δ, so Lemmas 1–3 accounting is unchanged).
pub struct Qubo {
    n: usize,
    /// Elements between consecutive row starts (`ROW_LANE` multiple).
    stride: usize,
    /// Element offset of row 0 inside `w` (aligns row 0 to 64 bytes).
    off: usize,
    w: Box<[i16]>,
}

impl Clone for Qubo {
    fn clone(&self) -> Self {
        // A fresh allocation lands at a different address, so the
        // aligning offset must be recomputed and rows re-copied; a
        // derived byte-for-byte clone would silently misalign.
        let (stride, off, mut w) = padded_alloc(self.n);
        for k in 0..self.n {
            let base = off + k * stride;
            w[base..base + self.n].copy_from_slice(self.row(k));
        }
        Self {
            n: self.n,
            stride,
            off,
            w,
        }
    }
}

impl PartialEq for Qubo {
    fn eq(&self, other: &Self) -> bool {
        // Logical equality: the aligning offset (and thus the slack
        // region) differs between allocations of equal problems.
        self.n == other.n && (0..self.n).all(|k| self.row(k) == other.row(k))
    }
}

impl Eq for Qubo {}

impl Qubo {
    /// Creates a QUBO with all-zero weights.
    ///
    /// # Errors
    /// Returns [`QuboError::BadSize`] if `n == 0` or `n > MAX_BITS`.
    pub fn zero(n: usize) -> Result<Self, QuboError> {
        if n == 0 || n > MAX_BITS {
            return Err(QuboError::BadSize(n));
        }
        let (stride, off, w) = padded_alloc(n);
        Ok(Self { n, stride, off, w })
    }

    /// Creates a QUBO from a dense row-major matrix, validating symmetry.
    ///
    /// # Errors
    /// [`QuboError::BadShape`] if `w.len() != n²`,
    /// [`QuboError::NotSymmetric`] if `w[i][j] != w[j][i]`.
    pub fn from_dense(n: usize, w: Vec<i16>) -> Result<Self, QuboError> {
        if n == 0 || n > MAX_BITS {
            return Err(QuboError::BadSize(n));
        }
        if w.len() != n * n {
            return Err(QuboError::BadShape {
                got: w.len(),
                expected: n * n,
            });
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if w[i * n + j] != w[j * n + i] {
                    return Err(QuboError::NotSymmetric(i, j));
                }
            }
        }
        let mut q = Self::zero(n)?;
        for k in 0..n {
            let base = q.off + k * q.stride;
            q.w[base..base + n].copy_from_slice(&w[k * n..(k + 1) * n]);
        }
        Ok(q)
    }

    /// Creates a QUBO from fixed-size rows — convenient in tests and docs.
    ///
    /// # Errors
    /// Same as [`Qubo::from_dense`].
    pub fn from_rows<const N: usize>(n: usize, rows: &[[i16; N]]) -> Result<Self, QuboError> {
        let mut w = Vec::with_capacity(n * n);
        for row in rows {
            w.extend_from_slice(row);
        }
        Self::from_dense(n, w)
    }

    /// Creates a synthetic random problem: every weight drawn uniformly
    /// from the full 16-bit range `[-32768, 32767]` with `W_ij = W_ji`
    /// (§4.1.3 of the paper).
    ///
    /// # Panics
    /// Panics if `n` is out of range (synthetic generators are test/bench
    /// entry points where a panic is the right failure mode).
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        // abs-lint: allow(no-unwrap) -- documented Panics contract: synthetic generator entry point
        let mut q = Self::zero(n).expect("size in range");
        for i in 0..n {
            for j in i..n {
                let v: i16 = rng.gen();
                q.set(i, j, v);
            }
        }
        q
    }

    /// Number of bits (variables) `n`.
    #[must_use]
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element index of `W_ij` inside the padded backing buffer.
    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        self.off + i * self.stride + j
    }

    /// Weight `W_ij`.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i16 {
        self.w[self.idx(i, j)]
    }

    /// Sets `W_ij` and `W_ji` simultaneously, keeping the matrix symmetric.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: i16) {
        let a = self.idx(i, j);
        let b = self.idx(j, i);
        self.w[a] = v;
        self.w[b] = v;
    }

    /// Row `W_k` as a contiguous slice of exactly `n` weights — the hot
    /// read of the Δ update.
    #[must_use]
    #[inline]
    pub fn row(&self, k: usize) -> &[i16] {
        let base = self.idx(k, 0);
        &self.w[base..base + self.n]
    }

    /// Row `W_k` including its zero padding tail: length
    /// [`Qubo::stride`], starting on a [`ROW_ALIGN_BYTES`] boundary.
    /// Lane-wise kernels read this so fixed-width chunks never straddle
    /// a row; the pad weights are zero and contribute nothing to any Δ.
    #[must_use]
    #[inline]
    pub fn row_padded(&self, k: usize) -> &[i16] {
        let base = self.idx(k, 0);
        &self.w[base..base + self.stride]
    }

    /// Elements between consecutive row starts: `n` rounded up to a
    /// [`ROW_LANE`] multiple.
    #[must_use]
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Diagonal weight `W_kk` (equal to `Δ_k(0)`).
    #[must_use]
    #[inline]
    pub fn diag(&self, k: usize) -> i16 {
        self.w[self.idx(k, k)]
    }

    /// Number of non-zero off-diagonal couplers `(i < j)`.
    #[must_use]
    pub fn coupler_count(&self) -> usize {
        let mut c = 0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.get(i, j) != 0 {
                    c += 1;
                }
            }
        }
        c
    }

    /// Reference energy function `E(X) = Σ_{i,j} W_ij x_i x_j` (Eq. (1)).
    ///
    /// O(|ones|²) — used for initialization, verification, and as the
    /// "naive" cost model; the incremental search never calls it.
    ///
    /// # Panics
    /// Panics if `x.len() != n`.
    #[must_use]
    pub fn energy(&self, x: &BitVec) -> i64 {
        assert_eq!(x.len(), self.n, "solution length mismatch");
        let ones: Vec<usize> = x.iter_ones().collect();
        let mut e = 0i64;
        for &i in &ones {
            let row = self.row(i);
            for &j in &ones {
                e += i64::from(row[j]);
            }
        }
        e
    }

    /// Reference `Δ_k(X) = E(flip_k(X)) − E(X)` computed directly from
    /// Eq. (4): `Δ_k = φ(x_k)·(2·Σ_{i≠k} W_ki x_i + W_kk)`. O(n).
    ///
    /// # Panics
    /// Panics if `x.len() != n` or `k >= n`.
    #[must_use]
    pub fn delta(&self, x: &BitVec, k: usize) -> i64 {
        assert_eq!(x.len(), self.n, "solution length mismatch");
        assert!(k < self.n, "bit index out of range");
        let row = self.row(k);
        let mut s = 0i64;
        for i in x.iter_ones() {
            if i != k {
                s += i64::from(row[i]);
            }
        }
        i64::from(phi(x.get(k))) * (2 * s + i64::from(self.diag(k)))
    }

    /// A conservative bound on `|E(X)|` over all `X`, useful for sizing
    /// penalty weights: `Σ_{i,j} |W_ij|`.
    #[must_use]
    pub fn energy_bound(&self) -> i64 {
        self.w.iter().map(|&v| i64::from(v).abs()).sum()
    }

    /// A bound on `|Δ_k(X)|` over all `X` and `k`:
    /// `max_k (2·Σ_{i≠k} |W_ki| + |W_kk|) ≤ 2·n·max|W|`.
    ///
    /// From Eq. (4), `Δ_k = φ(x_k)·(2·Σ_{i≠k} W_ki x_i + W_kk)`, so the
    /// per-row bound holds for every reachable state. Incremental
    /// trackers use this to decide whether narrow (32-bit) Δ
    /// accumulators are safe for this instance.
    #[must_use]
    pub fn delta_bound(&self) -> i64 {
        (0..self.n)
            .map(|k| {
                let row_l1: i64 = self.row(k).iter().map(|&v| i64::from(v).abs()).sum();
                2 * row_l1 - i64::from(self.diag(k)).abs()
            })
            .max()
            .unwrap_or(0)
    }

    /// The largest absolute weight `max |W_ij|`.
    #[must_use]
    pub fn max_abs_weight(&self) -> i64 {
        self.w
            .iter()
            .map(|&v| i64::from(v).abs())
            .max()
            .unwrap_or(0)
    }

    /// 256-bit content digest over the *canonical* form of the
    /// instance: `n` followed by the upper triangle `W_ij (i ≤ j)` in
    /// row-major order. Padding, stride and storage tier never enter
    /// the digest, so two logically equal instances always hash equal
    /// regardless of how they were built, and any single-weight
    /// mutation changes the digest.
    ///
    /// The construction is BLAKE-inspired but *not* cryptographic
    /// (this crate takes no dependencies): four independently seeded
    /// 64-bit lanes absorb the stream through a splitmix64-style
    /// permutation and are finalised with the absorbed length. It is a
    /// cache/dedup key, not an integrity guarantee.
    #[must_use]
    pub fn content_hash(&self) -> ContentHash {
        let mut lanes = ContentLanes::new();
        lanes.absorb(self.n as u64);
        for i in 0..self.n {
            for j in i..self.n {
                // Widen through u16 so -1 and 65535 stay distinct
                // from each other only via the two's-complement map,
                // deterministically on every platform.
                lanes.absorb(u64::from(self.get(i, j) as u16));
            }
        }
        lanes.finish()
    }
}

impl fmt::Debug for Qubo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Qubo(n={}, couplers={})", self.n, self.coupler_count())
    }
}

/// 256-bit instance digest returned by [`Qubo::content_hash`].
///
/// Used as the key of the solve server's warm-start cache and for
/// request dedup: equal digests ⇒ same canonical upper triangle (up to
/// the collision resistance of a 256-bit non-cryptographic mix).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentHash([u64; 4]);

impl ContentHash {
    /// The four 64-bit lanes of the digest.
    #[must_use]
    pub fn as_words(&self) -> [u64; 4] {
        self.0
    }

    /// Lowercase 64-character hex rendering (lane 0 first).
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for lane in self.0 {
            for shift in (0..16).rev() {
                let nibble = (lane >> (shift * 4)) & 0xf;
                s.push(char::from_digit(nibble as u32, 16).unwrap_or('0'));
            }
        }
        s
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({})", self.to_hex())
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Four chained 64-bit absorption lanes (the BLAKE-inspired sponge
/// behind [`Qubo::content_hash`]).
struct ContentLanes {
    state: [u64; 4],
    absorbed: u64,
}

/// splitmix64 finalisation permutation (Steele et al.); full-avalanche
/// on 64 bits, which is what makes single-weight flips visible in
/// every lane.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ContentLanes {
    /// Distinct lane seeds (digits of φ, π, e, √2) and per-lane odd
    /// multipliers decorrelate the four lanes over the same stream.
    const SEEDS: [u64; 4] = [
        0x9e37_79b9_7f4a_7c15,
        0x2430_54a5_4de6_37c7,
        0xadb7_2dbf_5a27_91cd,
        0x6a09_e667_f3bc_c909,
    ];
    const MULS: [u64; 4] = [
        0xff51_afd7_ed55_8ccd,
        0xc4ce_b9fe_1a85_ec53,
        0x9e6c_63d0_876a_8f29,
        0xd6e8_feb8_6659_fd93,
    ];

    fn new() -> Self {
        Self {
            state: Self::SEEDS,
            absorbed: 0,
        }
    }

    fn absorb(&mut self, word: u64) {
        self.absorbed = self.absorbed.wrapping_add(1);
        for lane in 0..4 {
            let keyed = word
                .wrapping_mul(Self::MULS[lane])
                .wrapping_add(self.absorbed);
            self.state[lane] = mix64(self.state[lane] ^ keyed);
        }
    }

    fn finish(mut self) -> ContentHash {
        let len = self.absorbed;
        for lane in 0..4 {
            self.state[lane] = mix64(self.state[lane] ^ len.wrapping_mul(Self::MULS[lane]));
        }
        ContentHash(self.state)
    }
}

/// Incremental builder accumulating sparse triplets into a [`Qubo`].
///
/// Duplicate `(i, j)` entries are summed; accumulation happens in `i32`
/// and overflow of the final 16-bit weight is reported, never wrapped.
pub struct QuboBuilder {
    n: usize,
    acc: Vec<i32>,
}

impl QuboBuilder {
    /// Creates a builder for an `n`-bit problem.
    ///
    /// # Errors
    /// [`QuboError::BadSize`] if `n` is out of range.
    pub fn new(n: usize) -> Result<Self, QuboError> {
        if n == 0 || n > MAX_BITS {
            return Err(QuboError::BadSize(n));
        }
        Ok(Self {
            n,
            acc: vec![0i32; n * n],
        })
    }

    /// Number of bits.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds `v` to `W_ij` (and `W_ji`).
    ///
    /// # Errors
    /// [`QuboError::IndexOutOfRange`] for a bad index.
    pub fn add(&mut self, i: usize, j: usize, v: i16) -> Result<(), QuboError> {
        if i >= self.n {
            return Err(QuboError::IndexOutOfRange(i));
        }
        if j >= self.n {
            return Err(QuboError::IndexOutOfRange(j));
        }
        self.acc[i * self.n + j] += i32::from(v);
        if i != j {
            self.acc[j * self.n + i] += i32::from(v);
        }
        Ok(())
    }

    /// Finalizes the builder into a [`Qubo`].
    ///
    /// # Errors
    /// [`QuboError::WeightOverflow`] if any accumulated weight does not
    /// fit in `i16`.
    pub fn build(self) -> Result<Qubo, QuboError> {
        let n = self.n;
        let mut w = Vec::with_capacity(n * n);
        for (idx, &v) in self.acc.iter().enumerate() {
            match i16::try_from(v) {
                Ok(v16) => w.push(v16),
                Err(_) => return Err(QuboError::WeightOverflow(idx / n, idx % n)),
            }
        }
        Qubo::from_dense(n, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The exact weight matrix of Fig. 1 in the paper (n = 4).
    pub(crate) fn paper_fig1() -> Qubo {
        Qubo::from_rows(
            4,
            &[[-5, 2, 0, 3], [2, -3, 1, 0], [0, 1, -8, 2], [3, 0, 2, -6]],
        )
        .unwrap()
    }

    #[test]
    fn fig1_energies() {
        let q = paper_fig1();
        // E(0000) = 0; single-bit energies are the diagonal.
        assert_eq!(q.energy(&BitVec::from_bit_str("0000").unwrap()), 0);
        assert_eq!(q.energy(&BitVec::from_bit_str("1000").unwrap()), -5);
        assert_eq!(q.energy(&BitVec::from_bit_str("0100").unwrap()), -3);
        assert_eq!(q.energy(&BitVec::from_bit_str("0010").unwrap()), -8);
        assert_eq!(q.energy(&BitVec::from_bit_str("0001").unwrap()), -6);
        // Pairs count the coupler twice.
        assert_eq!(
            q.energy(&BitVec::from_bit_str("1100").unwrap()),
            -5 - 3 + 2 * 2
        );
        // All ones.
        let all = BitVec::from_bit_str("1111").unwrap();
        // Couplers (0,1)=2, (0,3)=3, (1,2)=1, (2,3)=2; (0,2) and (1,3) are 0.
        assert_eq!(q.energy(&all), -5 - 3 - 8 - 6 + 2 * (2 + 3 + 1 + 2));
    }

    #[test]
    fn delta_matches_energy_difference() {
        let q = paper_fig1();
        for bits in 0u32..16 {
            let x = BitVec::from_bits(&[
                (bits & 1) as u8,
                ((bits >> 1) & 1) as u8,
                ((bits >> 2) & 1) as u8,
                ((bits >> 3) & 1) as u8,
            ]);
            for k in 0..4 {
                let expect = q.energy(&x.flipped(k)) - q.energy(&x);
                assert_eq!(q.delta(&x, k), expect, "bits={bits:04b} k={k}");
            }
        }
    }

    #[test]
    fn from_dense_rejects_asymmetry() {
        let err = Qubo::from_dense(2, vec![0, 1, 2, 0]).unwrap_err();
        assert_eq!(err, QuboError::NotSymmetric(0, 1));
    }

    #[test]
    fn from_dense_rejects_bad_shape() {
        let err = Qubo::from_dense(2, vec![0, 1, 1]).unwrap_err();
        assert!(matches!(
            err,
            QuboError::BadShape {
                got: 3,
                expected: 4
            }
        ));
    }

    #[test]
    fn zero_size_rejected() {
        assert_eq!(Qubo::zero(0).unwrap_err(), QuboError::BadSize(0));
        assert_eq!(
            Qubo::zero(MAX_BITS + 1).unwrap_err(),
            QuboError::BadSize(MAX_BITS + 1)
        );
        assert!(Qubo::zero(MAX_BITS).is_ok());
    }

    #[test]
    fn builder_accumulates_and_symmetrizes() {
        let mut b = QuboBuilder::new(3).unwrap();
        b.add(0, 1, 5).unwrap();
        b.add(1, 0, 2).unwrap();
        b.add(2, 2, -7).unwrap();
        let q = b.build().unwrap();
        assert_eq!(q.get(0, 1), 7);
        assert_eq!(q.get(1, 0), 7);
        assert_eq!(q.diag(2), -7);
    }

    #[test]
    fn builder_detects_overflow() {
        let mut b = QuboBuilder::new(2).unwrap();
        b.add(0, 0, i16::MAX).unwrap();
        b.add(0, 0, 1).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            QuboError::WeightOverflow(0, 0)
        ));
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = QuboBuilder::new(2).unwrap();
        assert_eq!(b.add(2, 0, 1).unwrap_err(), QuboError::IndexOutOfRange(2));
        assert_eq!(b.add(0, 5, 1).unwrap_err(), QuboError::IndexOutOfRange(5));
    }

    #[test]
    fn random_is_symmetric_and_seed_deterministic() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = Qubo::random(50, &mut r1);
        let b = Qubo::random(50, &mut r2);
        assert_eq!(a, b);
        for i in 0..50 {
            for j in 0..50 {
                assert_eq!(a.get(i, j), a.get(j, i));
            }
        }
    }

    #[test]
    fn energy_bound_bounds_all_energies() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = Qubo::random(8, &mut rng);
        let bound = q.energy_bound();
        for bits in 0u32..256 {
            let x = BitVec::from_bits(&(0..8).map(|i| ((bits >> i) & 1) as u8).collect::<Vec<_>>());
            assert!(q.energy(&x).abs() <= bound);
        }
    }

    #[test]
    fn row_is_contiguous_view() {
        let q = paper_fig1();
        assert_eq!(q.row(2), &[0, 1, -8, 2]);
    }

    #[test]
    fn rows_are_aligned_and_zero_padded() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1, 4, 31, 32, 33, 100] {
            let q = Qubo::random(n, &mut rng);
            assert_eq!(q.stride() % ROW_LANE, 0);
            assert!(q.stride() >= n && q.stride() < n + ROW_LANE);
            for k in 0..n {
                let padded = q.row_padded(k);
                assert_eq!(padded.as_ptr() as usize % ROW_ALIGN_BYTES, 0, "n={n} k={k}");
                assert_eq!(padded.len(), q.stride());
                assert_eq!(&padded[..n], q.row(k));
                assert!(padded[n..].iter().all(|&v| v == 0), "pad not zero");
            }
        }
    }

    #[test]
    fn clone_and_eq_are_logical() {
        let mut rng = StdRng::seed_from_u64(12);
        let q = Qubo::random(33, &mut rng);
        let c = q.clone();
        assert_eq!(q, c);
        // The clone is re-aligned, so its rows satisfy the same
        // alignment contract regardless of the new allocation address.
        for k in 0..33 {
            assert_eq!(c.row_padded(k).as_ptr() as usize % ROW_ALIGN_BYTES, 0);
        }
        let mut d = q.clone();
        d.set(0, 1, i16::MAX);
        assert_ne!(q, d);
    }

    #[test]
    fn delta_bound_bounds_all_deltas() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = Qubo::random(8, &mut rng);
        let bound = q.delta_bound();
        for bits in 0u32..256 {
            let x = BitVec::from_bits(&(0..8).map(|i| ((bits >> i) & 1) as u8).collect::<Vec<_>>());
            for k in 0..8 {
                assert!(q.delta(&x, k).abs() <= bound, "bits={bits:08b} k={k}");
            }
        }
        assert!(bound <= 2 * 8 * q.max_abs_weight());
    }

    #[test]
    fn delta_bound_is_tight_on_fig1() {
        // Row 3 of Fig. 1: |−6| + 2·(3 + 0 + 2) = 16; rows 0–2 give
        // 15, 9, 14 — the max is 16.
        let q = paper_fig1();
        assert_eq!(q.delta_bound(), 16);
        assert_eq!(q.max_abs_weight(), 8);
    }

    #[test]
    fn content_hash_is_canonical_over_logical_equality() {
        // Two construction paths for the same instance (dense vs
        // builder) must digest identically: the hash reads the
        // canonical upper triangle, never the physical layout.
        let q = paper_fig1();
        let mut b = QuboBuilder::new(4).unwrap();
        for i in 0..4 {
            for j in i..4 {
                b.add(i, j, q.get(i, j)).unwrap();
            }
        }
        let twin = b.build().unwrap();
        assert_eq!(q, twin);
        assert_eq!(q.content_hash(), twin.content_hash());
        assert_eq!(q.content_hash().to_hex().len(), 64);
    }

    #[test]
    fn content_hash_separates_mutations_and_sizes() {
        let mut rng = StdRng::seed_from_u64(9);
        let q = Qubo::random(16, &mut rng);
        let base = q.content_hash();
        // Same n, one weight nudged: must miss (the staleness
        // regression the warm-start cache depends on).
        let mut mutated = q.clone();
        mutated.set(3, 7, mutated.get(3, 7).wrapping_add(1));
        assert_ne!(base, mutated.content_hash());
        // Diagonal-only mutation too.
        let mut diag = q.clone();
        diag.set(5, 5, diag.get(5, 5).wrapping_add(1));
        assert_ne!(base, diag.content_hash());
        // Different n, all-zero weights: n itself is absorbed.
        assert_ne!(
            Qubo::zero(4).unwrap().content_hash(),
            Qubo::zero(5).unwrap().content_hash()
        );
        // -1 must not collide with a large positive weight.
        let mut neg = Qubo::zero(2).unwrap();
        neg.set(0, 1, -1);
        let mut pos = Qubo::zero(2).unwrap();
        pos.set(0, 1, i16::MAX);
        assert_ne!(neg.content_hash(), pos.content_hash());
    }

    #[test]
    fn content_hash_is_stable_across_calls_and_hex_round_trips() {
        let mut rng = StdRng::seed_from_u64(11);
        let q = Qubo::random(32, &mut rng);
        let h = q.content_hash();
        assert_eq!(h, q.content_hash());
        assert_eq!(h, q.clone().content_hash());
        let hex = h.to_hex();
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(format!("{h}"), hex);
        assert_eq!(format!("{h:?}"), format!("ContentHash({hex})"));
    }
}
