//! Instance statistics: density, weight distribution, structure.

use crate::matrix::Qubo;

/// Summary statistics of a QUBO instance, as printed by `abs-cli info`
/// and used by the benchmark reports to characterize workloads.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceStats {
    /// Problem size in bits.
    pub bits: usize,
    /// Non-zero off-diagonal couplers (i < j).
    pub couplers: usize,
    /// Coupler density: couplers / (n·(n−1)/2).
    pub density: f64,
    /// Non-zero diagonal entries.
    pub diagonals: usize,
    /// Minimum weight anywhere in the matrix.
    pub min_weight: i16,
    /// Maximum weight anywhere in the matrix.
    pub max_weight: i16,
    /// Mean of the non-zero weights (couplers and diagonal, couplers
    /// counted once).
    pub mean_nonzero: f64,
    /// Upper bound on |E(X)| (`Σ|W_ij|` over the full square).
    pub energy_bound: i64,
    /// Maximum absolute Δ over all single flips from anywhere:
    /// `max_k (2·Σ_{i≠k} |W_ki| + |W_kk|)` — useful for sizing SA
    /// temperatures.
    pub max_abs_delta: i64,
}

impl InstanceStats {
    /// Computes statistics for an instance. O(n²).
    #[must_use]
    pub fn of(q: &Qubo) -> Self {
        let n = q.n();
        let mut couplers = 0usize;
        let mut diagonals = 0usize;
        let mut min_w = i16::MAX;
        let mut max_w = i16::MIN;
        let mut sum_nonzero = 0i64;
        let mut count_nonzero = 0u64;
        let mut max_abs_delta = 0i64;
        for i in 0..n {
            let row = q.row(i);
            let mut row_abs = 0i64;
            for (j, &w) in row.iter().enumerate() {
                min_w = min_w.min(w);
                max_w = max_w.max(w);
                if j != i {
                    row_abs += i64::from(w).abs();
                }
                if w != 0 {
                    if j == i {
                        diagonals += 1;
                        sum_nonzero += i64::from(w);
                        count_nonzero += 1;
                    } else if j > i {
                        couplers += 1;
                        sum_nonzero += i64::from(w);
                        count_nonzero += 1;
                    }
                }
            }
            max_abs_delta = max_abs_delta.max(2 * row_abs + i64::from(q.diag(i)).abs());
        }
        let pairs = n * n.saturating_sub(1) / 2;
        Self {
            bits: n,
            couplers,
            density: if pairs == 0 {
                0.0
            } else {
                couplers as f64 / pairs as f64
            },
            diagonals,
            min_weight: min_w,
            max_weight: max_w,
            mean_nonzero: if count_nonzero == 0 {
                0.0
            } else {
                sum_nonzero as f64 / count_nonzero as f64
            },
            energy_bound: q.energy_bound(),
            max_abs_delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_of_a_small_instance() {
        let q = Qubo::from_rows(3, &[[-5, 2, 0], [2, 0, -1], [0, -1, 7]]).unwrap();
        let s = InstanceStats::of(&q);
        assert_eq!(s.bits, 3);
        assert_eq!(s.couplers, 2); // (0,1) and (1,2)
        assert_eq!(s.diagonals, 2); // -5 and 7
        assert!((s.density - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min_weight, -5);
        assert_eq!(s.max_weight, 7);
        // mean over {-5, 2, -1, 7} = 0.75
        assert!((s.mean_nonzero - 0.75).abs() < 1e-12);
        assert_eq!(s.energy_bound, 5 + 2 + 2 + 1 + 1 + 7);
        // max over rows of 2·Σ|off| + |diag|:
        // row0: 2·2+5=9, row1: 2·3+0=6, row2: 2·1+7=9
        assert_eq!(s.max_abs_delta, 9);
    }

    #[test]
    fn zero_matrix() {
        let q = Qubo::zero(4).unwrap();
        let s = InstanceStats::of(&q);
        assert_eq!(s.couplers, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.mean_nonzero, 0.0);
        assert_eq!(s.max_abs_delta, 0);
    }

    #[test]
    fn dense_random_has_high_density() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = Qubo::random(40, &mut rng);
        let s = InstanceStats::of(&q);
        assert!(s.density > 0.95);
        assert_eq!(s.bits, 40);
        // max |Δ| bounds the reference delta at every state we can try.
        let x = crate::BitVec::random(40, &mut rng);
        for k in 0..40 {
            assert!(q.delta(&x, k).abs() <= s.max_abs_delta);
        }
    }

    #[test]
    fn single_bit_instance() {
        let mut q = Qubo::zero(1).unwrap();
        q.set(0, 0, -3);
        let s = InstanceStats::of(&q);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.diagonals, 1);
        assert_eq!(s.max_abs_delta, 3);
    }
}
