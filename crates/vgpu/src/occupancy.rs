//! The CUDA occupancy calculator for the ABS kernel.
//!
//! Each thread of the kernel owns `p` bits of the solution and their `p`
//! Δ-values in registers ("bits per thread"), so a block needs
//! `⌈n / p⌉` threads. Resident blocks per SM are limited by the thread,
//! warp, block and register budgets of the [`crate::DeviceSpec`]; the
//! paper always chooses configurations with 100 % occupancy (all 32
//! warp slots of every SM filled), which is exactly the row set of
//! Table 2.

use crate::spec::DeviceSpec;
use std::fmt;

/// Register cost per thread as a function of bits-per-thread: `p` 32-bit
/// registers hold the Δ-values and `p` more hold the solution bits and
/// working state. At `p = 32` this meets the Turing budget of 64
/// registers/thread at full occupancy — the paper's stated reason the
/// system tops out at 32 k bits.
#[must_use]
pub fn registers_per_thread(bits_per_thread: u32) -> u32 {
    2 * bits_per_thread
}

/// A resolved kernel launch configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Bits (and Δ registers) per thread, `p`.
    pub bits_per_thread: u32,
    /// Threads per block, `⌈n / p⌉` rounded up to a whole warp.
    pub threads_per_block: u32,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Active blocks on the whole GPU (`blocks_per_sm × SMs`) — the
    /// number of concurrent search units.
    pub blocks_per_gpu: u32,
    /// Registers used per thread.
    pub registers_per_thread: u32,
    /// Occupancy as resident-warps / max-warps, in [0, 1].
    pub occupancy: f64,
}

/// Reasons a `(n, p)` combination cannot be launched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OccupancyError {
    /// `p` must be at least 1.
    ZeroBitsPerThread,
    /// `n` must be at least 1.
    ZeroBits,
    /// `⌈n / p⌉` exceeds the maximum threads per block (`p` too small).
    TooManyThreads {
        /// Required threads per block.
        required: u32,
        /// Hardware limit.
        limit: u32,
    },
    /// One block's register demand exceeds the SM register file
    /// (`p` too large for this `n`).
    NotEnoughRegisters {
        /// Registers required by one block.
        required: u64,
        /// Registers available per SM.
        available: u32,
    },
}

impl fmt::Display for OccupancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroBitsPerThread => write!(f, "bits per thread must be ≥ 1"),
            Self::ZeroBits => write!(f, "problem must have ≥ 1 bit"),
            Self::TooManyThreads { required, limit } => {
                write!(f, "needs {required} threads/block, limit is {limit}")
            }
            Self::NotEnoughRegisters {
                required,
                available,
            } => write!(
                f,
                "one block needs {required} registers, SM has {available}"
            ),
        }
    }
}

impl std::error::Error for OccupancyError {}

/// Computes the launch configuration for an `n`-bit problem at `p` bits
/// per thread on `spec`.
///
/// # Errors
/// See [`OccupancyError`].
pub fn occupancy(spec: &DeviceSpec, n: usize, p: u32) -> Result<Occupancy, OccupancyError> {
    if p == 0 {
        return Err(OccupancyError::ZeroBitsPerThread);
    }
    if n == 0 {
        return Err(OccupancyError::ZeroBits);
    }
    let raw_threads = (n as u64).div_ceil(u64::from(p));
    // Round up to a whole warp.
    let ws = u64::from(spec.warp_size);
    let threads = raw_threads.div_ceil(ws) * ws;
    if threads > u64::from(spec.max_threads_per_block) {
        return Err(OccupancyError::TooManyThreads {
            required: threads.min(u64::from(u32::MAX)) as u32,
            limit: spec.max_threads_per_block,
        });
    }
    let threads = threads as u32;
    let warps = threads / spec.warp_size;
    let rpt = registers_per_thread(p);
    let regs_per_block = u64::from(rpt) * u64::from(threads);
    if regs_per_block > u64::from(spec.registers_per_sm) {
        return Err(OccupancyError::NotEnoughRegisters {
            required: regs_per_block,
            available: spec.registers_per_sm,
        });
    }
    let by_threads = spec.max_threads_per_sm / threads;
    let by_warps = spec.max_warps_per_sm / warps;
    let by_regs = (u64::from(spec.registers_per_sm) / regs_per_block) as u32;
    let blocks_per_sm = spec
        .max_blocks_per_sm
        .min(by_threads)
        .min(by_warps)
        .min(by_regs);
    let occupancy = f64::from(blocks_per_sm * warps) / f64::from(spec.max_warps_per_sm);
    Ok(Occupancy {
        bits_per_thread: p,
        threads_per_block: threads,
        warps_per_block: warps,
        blocks_per_sm,
        blocks_per_gpu: blocks_per_sm * spec.sms,
        registers_per_thread: rpt,
        occupancy,
    })
}

/// Enumerates the power-of-two `p` values achieving 100 % occupancy for
/// an `n`-bit problem — the paper's "automatically selected" launch
/// configurations, i.e. the row set of Table 2.
#[must_use]
pub fn full_occupancy_configs(spec: &DeviceSpec, n: usize) -> Vec<Occupancy> {
    let mut out = Vec::new();
    let mut p = 1u32;
    while u64::from(p) <= n as u64 {
        if let Ok(o) = occupancy(spec, n, p) {
            if (o.occupancy - 1.0).abs() < 1e-12 {
                out.push(o);
            }
        }
        p *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn turing() -> DeviceSpec {
        DeviceSpec::rtx_2080_ti()
    }

    /// The configuration columns of Table 2, row by row:
    /// (n, p, threads/block, active blocks/GPU).
    ///
    /// Note: for n = 2 k the paper's printed threads/block values
    /// (128/64/32 at p = 8/16/32) are inconsistent with both `n / p` and
    /// the printed active-block counts (272/544/1088 require 256/128/64
    /// threads at 100 % occupancy); we reproduce the self-consistent
    /// values.
    const TABLE2: &[(usize, u32, u32, u32)] = &[
        (1024, 1, 1024, 68),
        (1024, 2, 512, 136),
        (1024, 4, 256, 272),
        (1024, 8, 128, 544),
        (1024, 16, 64, 1088),
        (2048, 2, 1024, 68),
        (2048, 4, 512, 136),
        (2048, 8, 256, 272),
        (2048, 16, 128, 544),
        (2048, 32, 64, 1088),
        (4096, 4, 1024, 68),
        (4096, 8, 512, 136),
        (4096, 16, 256, 272),
        (4096, 32, 128, 544),
        (8192, 8, 1024, 68),
        (8192, 16, 512, 136),
        (8192, 32, 256, 272),
        (16384, 16, 1024, 68),
        (16384, 32, 512, 136),
        (32768, 32, 1024, 68),
    ];

    #[test]
    fn reproduces_table2_configurations() {
        let spec = turing();
        for &(n, p, threads, blocks) in TABLE2 {
            let o = occupancy(&spec, n, p).unwrap();
            assert_eq!(o.threads_per_block, threads, "n={n} p={p}");
            assert_eq!(o.blocks_per_gpu, blocks, "n={n} p={p}");
            assert!((o.occupancy - 1.0).abs() < 1e-12, "n={n} p={p}");
        }
    }

    #[test]
    fn table2_row_sets_match_exactly() {
        // full_occupancy_configs must produce exactly the paper's rows —
        // no extra, no missing — for every problem size of Table 2.
        let spec = turing();
        for n in [1024usize, 2048, 4096, 8192, 16384, 32768] {
            let got: Vec<u32> = full_occupancy_configs(&spec, n)
                .iter()
                .map(|o| o.bits_per_thread)
                .collect();
            let expect: Vec<u32> = TABLE2.iter().filter(|r| r.0 == n).map(|r| r.1).collect();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn p_too_small_is_rejected() {
        let err = occupancy(&turing(), 2048, 1).unwrap_err();
        assert_eq!(
            err,
            OccupancyError::TooManyThreads {
                required: 2048,
                limit: 1024
            }
        );
    }

    #[test]
    fn register_budget_rejects_oversized_blocks() {
        // n = 64 k at p = 64 would need 128 regs × 1024 threads = 128 K.
        let err = occupancy(&turing(), 65536, 64).unwrap_err();
        assert!(matches!(err, OccupancyError::NotEnoughRegisters { .. }));
    }

    #[test]
    fn half_occupancy_detected_for_p32_at_1k() {
        // n = 1 k, p = 32: 32-thread blocks, block-limit 16/SM ⇒ only 512
        // resident threads ⇒ 50 % occupancy — which is why Table 2's 1 k
        // column stops at p = 16.
        let o = occupancy(&turing(), 1024, 32).unwrap();
        assert!((o.occupancy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn registers_per_thread_meets_turing_budget_at_p32() {
        assert_eq!(registers_per_thread(32), 64);
    }

    #[test]
    fn non_power_of_two_sizes_round_to_warps() {
        let o = occupancy(&turing(), 1000, 1).unwrap();
        assert_eq!(o.threads_per_block, 1024); // 1000 → 32-multiple ≥ 1000
        let o = occupancy(&turing(), 100, 1).unwrap();
        assert_eq!(o.threads_per_block, 128);
    }

    #[test]
    fn zero_inputs_rejected() {
        assert_eq!(
            occupancy(&turing(), 0, 1).unwrap_err(),
            OccupancyError::ZeroBits
        );
        assert_eq!(
            occupancy(&turing(), 10, 0).unwrap_err(),
            OccupancyError::ZeroBitsPerThread
        );
    }

    #[test]
    fn max_supported_problem_is_32k() {
        // The largest n with any valid configuration on Turing is 32 k:
        // p = 32 needs 64 regs/thread × 1024 threads = the whole file.
        let spec = turing();
        assert!(!full_occupancy_configs(&spec, 32768).is_empty());
        assert!(full_occupancy_configs(&spec, 65536).is_empty());
    }
}
