//! One "CUDA block": an independent bulk-search unit (§3.2).

use crate::buffers::{GlobalMem, SolutionRecord};
use crate::fault::InjectedPanic;
use abs_telemetry::Event;
use qubo::{Qubo, SparseQubo};
use qubo_search::{
    local_search, straight_search, DeltaAcc, DeltaTracker, FlipKernel, GreedyPolicy,
    MetropolisPolicy, RandomPolicy, SearchTracker, SelectionPolicy, SparseDeltaTracker,
    WindowMinPolicy,
};

/// How window lengths (the temperature analogue of the selection policy,
/// Fig. 2) are assigned across blocks. As with parallel tempering, the
/// paper sets "a different temperature for each search".
#[derive(Clone, Debug)]
pub enum WindowSchedule {
    /// Every block uses the same window length.
    Fixed(usize),
    /// Block `b` gets `2^(b mod k)` where `k` makes the largest window
    /// `≤ n` — a geometric ladder over the whole temperature range.
    PowersOfTwo,
    /// Explicit window lengths, cycled over by block index.
    Cycle(Vec<usize>),
}

impl WindowSchedule {
    /// The window length for global block index `block` on an `n`-bit
    /// problem.
    ///
    /// # Panics
    /// Panics if a `Cycle` schedule is empty.
    #[must_use]
    pub fn window_for(&self, block: usize, n: usize) -> usize {
        match self {
            Self::Fixed(l) => (*l).clamp(1, n.max(1)),
            Self::PowersOfTwo => {
                let k = (usize::BITS - n.max(1).leading_zeros()) as usize; // ⌊log2 n⌋+1
                (1usize << (block % k)).min(n.max(1))
            }
            Self::Cycle(ls) => {
                assert!(!ls.is_empty(), "empty window cycle");
                // invariant: index < ls.len() by the modulo.
                ls[block % ls.len()].clamp(1, n.max(1))
            }
        }
    }
}

/// The local-search algorithm a block runs (§5 future work: "each CUDA
/// block would perform different algorithms"). All kinds drive the same
/// forced-flip loop; they differ in how the next bit is selected.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicyKind {
    /// The paper's deterministic sliding-window minimum (Fig. 2), using
    /// the block's configured window length and offset. The production
    /// default: consumes no random numbers.
    Window,
    /// Global minimum-Δ flip (the ℓ = n extreme).
    Greedy,
    /// Uniform random bit flip (the ℓ = 1 extreme, randomized).
    Random,
    /// Metropolis acceptance in the forced-flip framework (Eq. (7)).
    Metropolis {
        /// Temperature `k_B·t` in energy units.
        // abs-lint: allow(device-no-float) -- Metropolis variant config; the Window kernel is float-free
        temperature: f64,
        /// Per-selection geometric cooling factor (1.0 = constant).
        // abs-lint: allow(device-no-float) -- Metropolis variant config; the Window kernel is float-free
        cooling: f64,
    },
}

/// Runtime policy state: one variant per [`PolicyKind`], enum-dispatched
/// so a heterogeneous device needs no boxing in the hot loop.
#[derive(Clone, Debug)]
enum RuntimePolicy {
    Window(WindowMinPolicy),
    Greedy(GreedyPolicy),
    Random(RandomPolicy),
    Metropolis(MetropolisPolicy),
}

impl RuntimePolicy {
    fn build(kind: &PolicyKind, window: usize, offset: usize, seed: u64) -> Self {
        match kind {
            PolicyKind::Window => Self::Window(WindowMinPolicy::with_offset(window, offset)),
            PolicyKind::Greedy => Self::Greedy(GreedyPolicy),
            PolicyKind::Random => Self::Random(RandomPolicy::new(seed)),
            PolicyKind::Metropolis {
                temperature,
                cooling,
            } => Self::Metropolis(MetropolisPolicy::new(*temperature, *cooling, seed)),
        }
    }
}

/// Enum dispatch of the policy trait, generic over the Δ accumulator
/// width so one block type drives both i32 and i64 trackers. The window
/// and greedy variants expose their windows, letting [`local_search`]
/// run the fused flip+select kernel.
impl<A: DeltaAcc> SelectionPolicy<A> for RuntimePolicy {
    fn select(&mut self, deltas: &[A], x: &qubo::BitVec) -> usize {
        match self {
            Self::Window(p) => p.select(deltas, x),
            Self::Greedy(p) => SelectionPolicy::<A>::select(p, deltas, x),
            Self::Random(p) => SelectionPolicy::<A>::select(p, deltas, x),
            Self::Metropolis(p) => SelectionPolicy::<A>::select(p, deltas, x),
        }
    }

    fn next_window(&mut self, n: usize) -> Option<(usize, usize)> {
        match self {
            Self::Window(p) => SelectionPolicy::<A>::next_window(p, n),
            Self::Greedy(p) => SelectionPolicy::<A>::next_window(p, n),
            Self::Random(p) => SelectionPolicy::<A>::next_window(p, n),
            Self::Metropolis(p) => SelectionPolicy::<A>::next_window(p, n),
        }
    }

    fn reset(&mut self) {
        match self {
            Self::Window(p) => SelectionPolicy::<A>::reset(p),
            Self::Greedy(p) => SelectionPolicy::<A>::reset(p),
            Self::Random(p) => SelectionPolicy::<A>::reset(p),
            Self::Metropolis(p) => SelectionPolicy::<A>::reset(p),
        }
    }
}

/// Adaptive algorithm switching — the paper's future-work proposal
/// ("each CUDA block would perform different algorithms and possibly
/// they are changed automatically", §5), implemented as automatic
/// window-length re-tuning.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Bulk iterations without improving this block's all-time best
    /// before the block switches its window length.
    pub patience: u32,
}

/// Per-block configuration.
#[derive(Clone, Debug)]
pub struct BlockConfig {
    /// Flips of the fixed-length local search per bulk iteration
    /// (§3.2 Step 4b).
    pub local_steps: usize,
    /// Window length of this block's selection policy.
    pub window: usize,
    /// Initial window offset (desynchronizes blocks sharing a window).
    pub offset: usize,
    /// Optional automatic window re-tuning.
    pub adaptive: Option<AdaptiveConfig>,
    /// The selection algorithm this block runs.
    pub policy: PolicyKind,
    /// Flip kernel this block's tracker runs. Devices detect once per
    /// launch ([`FlipKernel::detect`]) and hand every block the same
    /// choice; wide (`i64`) trackers ignore it and run scalar.
    pub kernel: FlipKernel,
}

/// One bulk-search unit: the state of a CUDA block of the paper's kernel.
///
/// A block owns a [`DeltaTracker`] (current solution + Δ vector, which
/// the real kernel keeps in its register file) and a deterministic
/// [`WindowMinPolicy`]. Its life is a loop of bulk iterations:
///
/// 1. read a target `T` from the target buffer,
/// 2. reset the best record,
/// 3. straight-search from the current solution `C` to `T`,
/// 4. local-search `local_steps` forced flips from `T`,
/// 5. store the best-found solution in the solution buffer.
///
/// If the host has not provided a target (the buffer is empty), the
/// block skips the straight search and keeps local-searching from where
/// it stands — it never blocks and never synchronizes with other blocks.
///
/// The tracker type `T` carries both storage arms: devices build dense
/// [`BlockRunner::with_width`] blocks (with `A = i32` whenever the
/// problem's Δ bound fits, halving the flip kernel's memory traffic) or
/// CSR [`BlockRunner::sparse`] blocks when the density dispatch picks
/// the O(degree) tier. Everything past construction is generic over
/// [`SearchTracker`].
pub struct BlockRunner<T: SearchTracker> {
    tracker: T,
    policy: RuntimePolicy,
    config: BlockConfig,
    /// Best energy this block has ever reported (adaptive switching
    /// watches this, not the per-iteration best that Step 3 resets).
    all_time_best: qubo::Energy,
    /// Iterations since `all_time_best` improved.
    stale: u32,
    /// Number of automatic window switches performed.
    switches: u32,
}

impl<'q> BlockRunner<DeltaTracker<'q, qubo::Energy>> {
    /// Creates a default-width (`i64`) dense block at the canonical zero
    /// start.
    #[must_use]
    pub fn new(qubo: &'q Qubo, config: BlockConfig) -> Self {
        Self::with_width(qubo, config)
    }
}

impl<'q, A: DeltaAcc> BlockRunner<DeltaTracker<'q, A>> {
    /// Creates a dense block with Δ accumulator width `A` at the
    /// canonical zero start.
    ///
    /// # Panics
    /// Panics if the problem's Δ bound does not fit width `A`.
    #[must_use]
    pub fn with_width(qubo: &'q Qubo, config: BlockConfig) -> Self {
        let tracker = DeltaTracker::with_kernel(qubo, config.kernel);
        Self::from_tracker(tracker, config)
    }
}

impl<'q> BlockRunner<SparseDeltaTracker<'q>> {
    /// Creates a CSR block at the canonical zero start (the O(degree)
    /// flip tier; `config.kernel` is ignored — the sparse arm is scalar).
    #[must_use]
    pub fn sparse(qubo: &'q SparseQubo, config: BlockConfig) -> Self {
        Self::from_tracker(SparseDeltaTracker::new(qubo), config)
    }
}

impl<T: SearchTracker> BlockRunner<T> {
    /// Wraps an already-initialized tracker; the shared tail of every
    /// public constructor.
    fn from_tracker(tracker: T, config: BlockConfig) -> Self {
        let seed = config.offset as u64 ^ 0x5851_f42d_4c95_7f2d;
        let policy = RuntimePolicy::build(
            &config.policy,
            config.window,
            config.offset % tracker.n(),
            seed,
        );
        Self {
            tracker,
            policy,
            config,
            all_time_best: qubo::Energy::MAX,
            stale: 0,
            switches: 0,
        }
    }

    /// The block's tracker (tests and diagnostics).
    #[must_use]
    pub fn tracker(&self) -> &T {
        &self.tracker
    }

    /// Current window length of the selection policy (`None` for
    /// non-window policies).
    #[must_use]
    pub fn window(&self) -> Option<usize> {
        match &self.policy {
            RuntimePolicy::Window(p) => Some(p.window()),
            _ => None,
        }
    }

    /// Number of automatic window switches performed so far.
    #[must_use]
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// Runs one bulk iteration against the device's global memory.
    /// Returns the number of flips performed.
    pub fn bulk_iteration(&mut self, mem: &GlobalMem) -> u64 {
        self.bulk_iteration_injected(mem, None)
    }

    /// [`BlockRunner::bulk_iteration`] with an optional injected
    /// mid-iteration panic (fault rehearsal): the panic fires after the
    /// straight search and before the local search, so the straight-walk
    /// flips have happened in the tracker but were never reported to
    /// `mem` — exactly the partial-work loss a real kernel assert causes.
    pub fn bulk_iteration_injected(
        &mut self,
        mem: &GlobalMem,
        mid_panic: Option<InjectedPanic>,
    ) -> u64 {
        let target = mem.pop_target();
        self.tracker.reset_best();
        let e0 = self.tracker.evaluated();
        let mut flips = 0u64;
        if let Some(t) = target {
            // The walk length equals the Hamming distance to the target
            // (§3.1), so the event stream doubles as a distance trace.
            let walk = straight_search(&mut self.tracker, &t);
            mem.record_event(Event::straight_walk(walk));
            flips += walk;
        }
        if let Some(injected) = mid_panic {
            std::panic::panic_any(injected);
        }
        // Fused driver: window/greedy policies collapse each
        // select-then-flip pair into one Δ-vector traversal.
        flips += local_search(&mut self.tracker, &mut self.policy, self.config.local_steps);
        let (bx, be) = self.tracker.best();
        // A block's own record is always well-formed; validation exists
        // for the corrupted-transfer case.
        let _ = mem.push_result(SolutionRecord {
            x: bx.clone(),
            energy: be,
        });
        mem.add_flips(flips);
        // Per-iteration evaluation delta: flips·(n+1) on the dense arm,
        // degree-honest under CSR (see GlobalMem::total_evaluated).
        mem.add_evaluated(self.tracker.evaluated() - e0);
        mem.add_iteration();
        self.adapt(be, mem);
        flips
    }

    /// Future-work adaptive switching: when the block stops improving
    /// its own all-time best for `patience` iterations, double the
    /// window length (wrapping from n back to 1) — i.e. walk the
    /// temperature ladder automatically instead of keeping the
    /// statically assigned rung. Applies to window policies only; other
    /// policy kinds have no ladder to walk and are left unchanged.
    fn adapt(&mut self, iteration_best: qubo::Energy, mem: &GlobalMem) {
        if iteration_best < self.all_time_best {
            self.all_time_best = iteration_best;
            self.stale = 0;
            return;
        }
        let Some(cfg) = self.config.adaptive else {
            return;
        };
        let RuntimePolicy::Window(w) = &self.policy else {
            return;
        };
        self.stale += 1;
        if self.stale >= cfg.patience.max(1) {
            let n = self.tracker.n();
            let next = if w.window() >= n {
                1
            } else {
                (w.window() * 2).min(n)
            };
            self.policy = RuntimePolicy::Window(WindowMinPolicy::with_offset(next, w.offset()));
            mem.record_event(Event::window_switch(next as u64));
            self.switches += 1;
            self.stale = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::BitVec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_qubo(n: usize, seed: u64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        Qubo::random(n, &mut rng)
    }

    fn cfg(window: usize, steps: usize) -> BlockConfig {
        BlockConfig {
            local_steps: steps,
            window,
            offset: 0,
            adaptive: None,
            policy: PolicyKind::Window,
            kernel: FlipKernel::detect(),
        }
    }

    #[test]
    fn iteration_with_target_reports_exact_energy() {
        let q = random_qubo(48, 1);
        let mem = GlobalMem::new();
        let mut rng = StdRng::seed_from_u64(2);
        mem.push_target(BitVec::random(48, &mut rng));
        let mut b = BlockRunner::new(&q, cfg(8, 100));
        let flips = b.bulk_iteration(&mem);
        assert!(flips >= 100, "straight + local flips");
        let rec = &mem.drain_results()[0];
        assert_eq!(rec.energy, q.energy(&rec.x), "stored energy must be exact");
        assert_eq!(mem.total_flips(), flips);
        assert_eq!(mem.total_iterations(), 1);
    }

    #[test]
    fn iteration_without_target_still_searches() {
        let q = random_qubo(32, 3);
        let mem = GlobalMem::new();
        let mut b = BlockRunner::new(&q, cfg(4, 50));
        let flips = b.bulk_iteration(&mem);
        assert_eq!(flips, 50);
        assert_eq!(mem.counter(), 1);
    }

    #[test]
    fn iterations_chain_from_last_solution() {
        // Fig. 4: iteration i starts where iteration i−1 ended; the
        // tracker's state stays exact across iterations.
        let q = random_qubo(40, 4);
        let mem = GlobalMem::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = BlockRunner::new(&q, cfg(8, 60));
        for _ in 0..4 {
            mem.push_target(BitVec::random(40, &mut rng));
            b.bulk_iteration(&mem);
            b.tracker().verify();
        }
        assert_eq!(mem.total_iterations(), 4);
        assert_eq!(mem.counter(), 4);
    }

    #[test]
    fn best_reset_keeps_results_diverse() {
        // With the best record reset each iteration, consecutive stored
        // results are the per-iteration bests, not one global best
        // repeated (§3.2 Step 3's rationale).
        let q = random_qubo(24, 6);
        let mem = GlobalMem::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = BlockRunner::new(&q, cfg(3, 40));
        for _ in 0..6 {
            mem.push_target(BitVec::random(24, &mut rng));
            b.bulk_iteration(&mem);
        }
        let res = mem.drain_results();
        let distinct: std::collections::HashSet<_> = res.iter().map(|r| r.x.clone()).collect();
        assert!(distinct.len() > 1, "results collapsed to one solution");
    }

    #[test]
    fn every_policy_kind_runs_and_reports_exact_energies() {
        let q = random_qubo(40, 11);
        let mut rng = StdRng::seed_from_u64(12);
        for kind in [
            PolicyKind::Window,
            PolicyKind::Greedy,
            PolicyKind::Random,
            PolicyKind::Metropolis {
                temperature: 1e6,
                cooling: 0.999,
            },
        ] {
            let mem = GlobalMem::new();
            let mut c = cfg(8, 80);
            c.policy = kind.clone();
            let mut b = BlockRunner::new(&q, c);
            mem.push_target(BitVec::random(40, &mut rng));
            b.bulk_iteration(&mem);
            b.tracker().verify();
            let rec = &mem.drain_results()[0];
            assert_eq!(rec.energy, q.energy(&rec.x), "{kind:?}");
        }
    }

    #[test]
    fn non_window_policies_report_no_window() {
        let q = random_qubo(16, 13);
        let mut c = cfg(4, 10);
        c.policy = PolicyKind::Greedy;
        let b = BlockRunner::new(&q, c);
        assert_eq!(b.window(), None);
    }

    #[test]
    fn adaptive_is_a_noop_for_non_window_policies() {
        let q = Qubo::zero(8).unwrap();
        let mem = GlobalMem::new();
        let mut c = cfg(4, 4);
        c.policy = PolicyKind::Greedy;
        c.adaptive = Some(AdaptiveConfig { patience: 1 });
        let mut b = BlockRunner::new(&q, c);
        for _ in 0..6 {
            b.bulk_iteration(&mem);
        }
        assert_eq!(b.switches(), 0);
    }

    #[test]
    fn random_policy_blocks_are_seeded_by_offset() {
        // Two blocks with different offsets take different random walks.
        let q = random_qubo(32, 14);
        let mem = GlobalMem::new();
        let mk = |offset: usize| {
            let mut c = cfg(4, 50);
            c.policy = PolicyKind::Random;
            c.offset = offset;
            BlockRunner::new(&q, c)
        };
        let mut b1 = mk(0);
        let mut b2 = mk(1);
        b1.bulk_iteration(&mem);
        b2.bulk_iteration(&mem);
        assert_ne!(b1.tracker().x(), b2.tracker().x());
    }

    #[test]
    fn window_schedule_fixed_and_cycle() {
        let s = WindowSchedule::Fixed(7);
        assert_eq!(s.window_for(0, 100), 7);
        assert_eq!(s.window_for(9, 100), 7);
        assert_eq!(s.window_for(0, 4), 4); // clamped to n
        let c = WindowSchedule::Cycle(vec![1, 8, 64]);
        assert_eq!(c.window_for(0, 100), 1);
        assert_eq!(c.window_for(1, 100), 8);
        assert_eq!(c.window_for(2, 100), 64);
        assert_eq!(c.window_for(3, 100), 1);
    }

    #[test]
    fn adaptive_block_switches_window_when_stale() {
        // A frozen problem (all-zero weights): no improvement is ever
        // possible, so the block must climb the window ladder.
        let q = Qubo::zero(16).unwrap();
        let mem = GlobalMem::new();
        let mut c = cfg(2, 10);
        c.adaptive = Some(AdaptiveConfig { patience: 2 });
        let mut b = BlockRunner::new(&q, c);
        assert_eq!(b.window(), Some(2));
        b.bulk_iteration(&mem); // "improves" (first best: MAX → 0)
        b.bulk_iteration(&mem); // stale 1
        assert_eq!(b.window(), Some(2));
        b.bulk_iteration(&mem); // stale 2 → switch
        assert_eq!(
            b.window(),
            Some(4),
            "one switch after patience=2 stale rounds"
        );
        assert_eq!(b.switches(), 1);
        b.bulk_iteration(&mem);
        b.bulk_iteration(&mem); // second switch
        assert_eq!(b.window(), Some(8), "ladder keeps climbing");
        assert_eq!(b.switches(), 2);
    }

    #[test]
    fn adaptive_window_wraps_from_n_to_one() {
        let q = Qubo::zero(8).unwrap();
        let mem = GlobalMem::new();
        let mut c = cfg(8, 4); // already at window = n
        c.adaptive = Some(AdaptiveConfig { patience: 1 });
        let mut b = BlockRunner::new(&q, c);
        b.bulk_iteration(&mem); // improvement MAX → 0
        b.bulk_iteration(&mem); // stale → switch
        assert_eq!(b.window(), Some(1));
    }

    #[test]
    fn non_adaptive_block_keeps_its_window() {
        let q = Qubo::zero(8).unwrap();
        let mem = GlobalMem::new();
        let mut b = BlockRunner::new(&q, cfg(4, 4));
        for _ in 0..10 {
            b.bulk_iteration(&mem);
        }
        assert_eq!(b.window(), Some(4));
        assert_eq!(b.switches(), 0);
    }

    #[test]
    fn improvements_reset_staleness() {
        // A problem ABS keeps improving on for a while: ensure no switch
        // happens while improvements keep arriving.
        let q = random_qubo(32, 9);
        let mem = GlobalMem::new();
        let mut rng = StdRng::seed_from_u64(10);
        let mut c = cfg(8, 200);
        c.adaptive = Some(AdaptiveConfig {
            patience: 1_000_000,
        });
        let mut b = BlockRunner::new(&q, c);
        for _ in 0..5 {
            mem.push_target(BitVec::random(32, &mut rng));
            b.bulk_iteration(&mem);
        }
        assert_eq!(b.switches(), 0);
    }

    #[test]
    fn device_accounting_matches_tracker_evaluated() {
        // Satellite invariant: GlobalMem's Theorem 1 accounting (block
        // evaluation deltas + units·(n+1)) must agree exactly with the
        // tracker's own `evaluated()` once the block registers itself
        // as a unit.
        let q = random_qubo(24, 15);
        let mem = GlobalMem::new();
        let mut rng = StdRng::seed_from_u64(16);
        let mut b = BlockRunner::new(&q, cfg(6, 75));
        mem.add_units(1);
        for _ in 0..3 {
            mem.push_target(BitVec::random(24, &mut rng));
            b.bulk_iteration(&mem);
            assert_eq!(mem.total_evaluated(24), b.tracker().evaluated());
        }
        assert_eq!(mem.total_flips(), b.tracker().flips());
    }

    #[test]
    fn narrow_block_matches_wide_block_exactly() {
        // Same config, same targets: the i32 block must follow the i64
        // block bit-for-bit (no behavioral change from narrowing).
        let q = random_qubo(32, 17);
        let mut rng = StdRng::seed_from_u64(18);
        let targets: Vec<BitVec> = (0..4).map(|_| BitVec::random(32, &mut rng)).collect();
        let mem_w = GlobalMem::new();
        let mem_n = GlobalMem::new();
        let mut bw = BlockRunner::new(&q, cfg(8, 90));
        let mut bn = BlockRunner::<DeltaTracker<'_, i32>>::with_width(&q, cfg(8, 90));
        for t in &targets {
            mem_w.push_target(t.clone());
            mem_n.push_target(t.clone());
            bw.bulk_iteration(&mem_w);
            bn.bulk_iteration(&mem_n);
        }
        assert_eq!(bw.tracker().x(), bn.tracker().x());
        assert_eq!(bw.tracker().energy(), bn.tracker().energy());
        assert_eq!(mem_w.drain_results(), mem_n.drain_results());
        bn.tracker().verify();
    }

    #[test]
    fn sparse_block_matches_dense_block_exactly() {
        // Same config, same targets: the CSR block must follow the dense
        // block bit-for-bit — trajectories, per-iteration bests, and
        // records (the tentpole's equivalence contract at block level).
        let q = random_qubo(48, 19);
        let s = SparseQubo::from_dense(&q);
        let mut rng = StdRng::seed_from_u64(20);
        let mem_d = GlobalMem::new();
        let mem_s = GlobalMem::new();
        let mut bd = BlockRunner::new(&q, cfg(8, 120));
        let mut bs = BlockRunner::sparse(&s, cfg(8, 120));
        for _ in 0..4 {
            let t = BitVec::random(48, &mut rng);
            mem_d.push_target(t.clone());
            mem_s.push_target(t);
            bd.bulk_iteration(&mem_d);
            bs.bulk_iteration(&mem_s);
        }
        assert_eq!(bd.tracker().x(), bs.tracker().x());
        assert_eq!(bd.tracker().energy(), bs.tracker().energy());
        assert_eq!(mem_d.drain_results(), mem_s.drain_results());
        // Dense evaluation deltas follow the n+1 formula; at full
        // density the CSR deltas coincide with them.
        assert_eq!(mem_d.total_flips(), mem_s.total_flips());
        assert_eq!(mem_d.total_evaluated(48), mem_s.total_evaluated(48));
        bs.tracker().verify();
    }

    #[test]
    fn sparse_block_reports_degree_honest_evaluations() {
        // A genuinely sparse instance: the CSR block's evaluation delta
        // must be far below the dense flips·(n+1) projection.
        let n = 64;
        let s = SparseQubo::from_triplets(n, &[(0, 1, -3), (2, 3, 5), (10, 11, -7)]).unwrap();
        let mem = GlobalMem::new();
        let mut b = BlockRunner::sparse(&s, cfg(8, 100));
        mem.add_units(1);
        b.bulk_iteration(&mem);
        assert_eq!(mem.total_evaluated(n), b.tracker().evaluated());
        let dense_projection = (b.tracker().flips() + 1) * (n as u64 + 1);
        assert!(
            mem.total_evaluated(n) < dense_projection / 4,
            "sparse accounting should be far below {dense_projection}"
        );
    }

    #[test]
    fn window_schedule_powers_of_two_spans_range() {
        let s = WindowSchedule::PowersOfTwo;
        let n = 64;
        let ws: Vec<usize> = (0..7).map(|b| s.window_for(b, n)).collect();
        assert_eq!(ws, vec![1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(s.window_for(7, n), 1); // wraps
    }
}
