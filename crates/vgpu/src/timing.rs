//! Analytic GPU timing model calibrated against Table 2.
//!
//! The CPU workers of this crate execute the same *algorithms* as the
//! paper's CUDA kernel, but cannot reproduce its absolute throughput.
//! To reproduce the *shape* of the paper's throughput results (Table 2
//! and Fig. 8) we model one block's flip latency with a roofline:
//!
//! ```text
//! t_flip = c_red·log2(T) + c_seq·p² + c_lin·p + c_fix + B·2n / BW(n)
//! ```
//!
//! * `c_red·log2(T)` — the block-wide argmin reduction over `T` threads
//!   (the paper notes "computing the minimum value between threads takes
//!   less time" as `p` grows and `T` shrinks);
//! * `c_seq·p²` — super-linear per-thread sequential work (register
//!   pressure and lost latency-hiding as each thread owns more bits);
//! * `B·2n / BW` — every flip streams row `W_k` (2n bytes of 16-bit
//!   weights) from memory, shared by all `B` resident blocks;
//!   `BW` is the L2 bandwidth when the whole matrix (2n² bytes) fits in
//!   the 5.5 MB L2 cache, and DRAM bandwidth otherwise.
//!
//! Fitting the five constants to the twenty rows of Table 2 yields
//! physically sensible values: DRAM bandwidth 578 GB/s (the 2080 Ti's
//! spec sheet says 616 GB/s), L2 bandwidth 2.6 TB/s, and a reduction
//! cost of ~124 ns per log₂ step. The model reproduces every row within
//! ±45 % (most within ±20 %), the optimum `p` for five of the six
//! problem sizes (for n = 1 k it rates p = 8 and p = 16 within 0.5 % of
//! each other, as the paper's own 1.12 vs 1.24 T/s near-tie suggests),
//! and the characteristic rise-then-fall of the search rate in `p`.
//!
//! The headline observation the model encodes: at its best
//! configuration the kernel is *memory-bandwidth-bound* —
//! 1.24 T solutions/s at n = 1 k is 1.24 T / 1024 × 2048 B ÷ 4 GPUs
//! ≈ 620 GB/s per GPU, i.e. exactly saturated GDDR6.

use crate::occupancy::{occupancy, Occupancy};
use crate::spec::DeviceSpec;

/// Calibrated cost constants (seconds and bytes/second).
#[derive(Clone, Copy, Debug)]
pub struct TimingModel {
    /// Cost per log₂ step of the block-wide argmin reduction (s).
    pub c_reduction: f64,
    /// Quadratic per-thread sequential cost (s per p²).
    pub c_seq: f64,
    /// Linear per-thread sequential cost (s per p).
    pub c_lin: f64,
    /// Fixed per-flip overhead (s).
    pub c_fix: f64,
    /// DRAM bandwidth (B/s).
    pub bw_dram: f64,
    /// L2 bandwidth (B/s), used when the weight matrix fits in L2.
    pub bw_l2: f64,
    /// L2 capacity (bytes).
    pub l2_bytes: f64,
}

impl Default for TimingModel {
    /// Constants fitted to Table 2 by least squares on log rate.
    fn default() -> Self {
        Self {
            c_reduction: 123.9e-9,
            c_seq: 7.87e-9,
            c_lin: 0.0,
            c_fix: 0.0,
            bw_dram: 577.8e9,
            bw_l2: 2_619.9e9,
            l2_bytes: 5.5e6,
        }
    }
}

impl TimingModel {
    /// Modeled flip latency of one block, in seconds, for a resolved
    /// launch configuration on an `n`-bit problem.
    #[must_use]
    pub fn flip_latency(&self, n: usize, occ: &Occupancy) -> f64 {
        let p = f64::from(occ.bits_per_thread);
        let t = f64::from(occ.threads_per_block);
        let b = f64::from(occ.blocks_per_gpu);
        let bytes_per_flip = 2.0 * n as f64;
        let matrix_bytes = 2.0 * (n as f64) * (n as f64);
        let bw = if matrix_bytes <= self.l2_bytes {
            self.bw_l2
        } else {
            self.bw_dram
        };
        self.c_reduction * t.log2()
            + self.c_seq * p * p
            + self.c_lin * p
            + self.c_fix
            + b * bytes_per_flip / bw
    }

    /// Modeled search rate in solutions per second for `gpus` devices
    /// (each flip evaluates `n` neighbour solutions, the counting used
    /// by Table 2 / the FPGA system of the paper's ref. 22).
    #[must_use]
    pub fn search_rate(&self, n: usize, occ: &Occupancy, gpus: usize) -> f64 {
        let b = f64::from(occ.blocks_per_gpu);
        gpus as f64 * (b / self.flip_latency(n, occ)) * n as f64
    }

    /// Convenience: modeled search rate from `(n, p)` on a device spec.
    ///
    /// # Panics
    /// Panics if the configuration is infeasible.
    #[must_use]
    pub fn search_rate_for(&self, spec: &DeviceSpec, n: usize, p: u32, gpus: usize) -> f64 {
        // abs-lint: allow(no-unwrap) -- documented Panics contract: modeling convenience API
        let occ = occupancy(spec, n, p).expect("feasible configuration");
        self.search_rate(n, &occ, gpus)
    }
}

/// The paper's measured Table 2: `(n, bits_per_thread, search rate in
/// units of 10¹² solutions/s on 4 GPUs)`. Embedded for benchmark
/// reports to print paper-vs-model/measured comparisons.
pub const PAPER_TABLE2: &[(usize, u32, f64)] = &[
    (1024, 1, 0.221),
    (1024, 2, 0.480),
    (1024, 4, 0.924),
    (1024, 8, 1.12),
    (1024, 16, 1.24),
    (2048, 2, 0.304),
    (2048, 4, 0.564),
    (2048, 8, 0.821),
    (2048, 16, 1.01),
    (2048, 32, 0.807),
    (4096, 4, 0.407),
    (4096, 8, 0.590),
    (4096, 16, 0.732),
    (4096, 32, 0.495),
    (8192, 8, 0.421),
    (8192, 16, 0.537),
    (8192, 32, 0.427),
    (16384, 16, 0.578),
    (16384, 32, 0.513),
    (32768, 32, 0.439),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn turing() -> DeviceSpec {
        DeviceSpec::rtx_2080_ti()
    }

    #[test]
    fn model_matches_every_table2_row_within_45_percent() {
        let m = TimingModel::default();
        for &(n, p, obs_t) in PAPER_TABLE2 {
            let rate = m.search_rate_for(&turing(), n, p, 4) / 1e12;
            let rel = (rate - obs_t) / obs_t;
            assert!(
                rel.abs() < 0.45,
                "n={n} p={p}: model {rate:.3} T/s vs paper {obs_t} T/s ({:+.0}%)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn model_reproduces_optimum_p_shape() {
        // For every n, the paper's rate rises with p and then falls (or
        // peaks at the largest p for n = 32 k). The model must place its
        // optimum at the paper's optimum, or at a p whose paper rate is
        // within 10 % of the paper's optimum (the n = 1 k near-tie).
        let m = TimingModel::default();
        for n in [1024usize, 2048, 4096, 8192, 16384, 32768] {
            let rows: Vec<&(usize, u32, f64)> = PAPER_TABLE2.iter().filter(|r| r.0 == n).collect();
            let paper_best = rows.iter().max_by(|a, b| a.2.total_cmp(&b.2)).unwrap();
            let model_best = rows
                .iter()
                .max_by(|a, b| {
                    m.search_rate_for(&turing(), n, a.1, 4)
                        .total_cmp(&m.search_rate_for(&turing(), n, b.1, 4))
                })
                .unwrap();
            let paper_rate_at_model_best = rows.iter().find(|r| r.1 == model_best.1).unwrap().2;
            assert!(
                model_best.1 == paper_best.1 || paper_rate_at_model_best >= 0.9 * paper_best.2,
                "n={n}: model picks p={}, paper optimum p={}",
                model_best.1,
                paper_best.1
            );
        }
    }

    #[test]
    fn best_config_exceeds_dram_bandwidth_via_l2() {
        // At n = 1 k, p = 16 the modeled per-GPU byte demand (~617 GB/s)
        // exceeds DRAM bandwidth — the configuration is only feasible
        // because the 2 MB weight matrix fits in L2, which is how the
        // paper's 1.24 T/s headline gets past the GDDR6 roofline.
        let m = TimingModel::default();
        let occ = occupancy(&turing(), 1024, 16).unwrap();
        let flips_per_sec = f64::from(occ.blocks_per_gpu) / m.flip_latency(1024, &occ);
        let bytes_per_sec = flips_per_sec * 2.0 * 1024.0;
        assert!(
            bytes_per_sec > m.bw_dram,
            "byte rate {bytes_per_sec:.3e} below DRAM bandwidth"
        );
        assert!(bytes_per_sec <= m.bw_l2 * 1.01);
    }

    #[test]
    fn rate_scales_linearly_with_gpus() {
        let m = TimingModel::default();
        let r1 = m.search_rate_for(&turing(), 4096, 16, 1);
        let r4 = m.search_rate_for(&turing(), 4096, 16, 4);
        assert!((r4 / r1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn headline_rate_is_about_1_24_tera() {
        // The abstract's headline: 1.24 × 10¹² solutions/s with 4 GPUs.
        let m = TimingModel::default();
        let best = PAPER_TABLE2
            .iter()
            .map(|&(n, p, _)| m.search_rate_for(&turing(), n, p, 4))
            .fold(0.0f64, f64::max);
        assert!((1.0e12..1.5e12).contains(&best), "best modeled {best:.3e}");
    }
}
