//! A multi-GPU machine: several devices running concurrently for one
//! host (Fig. 5).

use crate::buffers::GlobalMem;
use crate::device::{Device, DeviceConfig};
use qubo::Qubo;
use std::sync::Arc;

/// Configuration of the whole machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of virtual GPUs (the paper uses 1–4).
    pub num_devices: usize,
    /// Per-device configuration template (each device gets a copy).
    pub device: DeviceConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            num_devices: 1,
            device: DeviceConfig::default(),
        }
    }
}

/// A set of virtual devices plus the plumbing to run them together with
/// a host loop.
pub struct Machine {
    devices: Vec<Device>,
}

impl Machine {
    /// Creates the machine.
    ///
    /// # Panics
    /// Panics if `num_devices == 0`.
    #[must_use]
    pub fn new(config: &MachineConfig) -> Self {
        assert!(config.num_devices > 0, "machine needs at least one device");
        Self {
            devices: (0..config.num_devices)
                .map(|i| Device::with_index(config.device.clone(), i))
                .collect(),
        }
    }

    /// The devices.
    #[must_use]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Global memories of all devices, in device order (the host's view).
    #[must_use]
    pub fn mems(&self) -> Vec<Arc<GlobalMem>> {
        self.devices.iter().map(|d| Arc::clone(d.mem())).collect()
    }

    /// Runs all devices on `qubo` concurrently while executing `host` on
    /// the calling thread. When `host` returns, the stop flag is raised
    /// on every device and the call joins them before returning the
    /// host's result.
    ///
    /// The host closure receives the device memories and is expected to
    /// implement §3.1: poll counters, drain solution buffers, push
    /// targets — and, if it wants to stop early, call
    /// [`GlobalMem::request_stop`] itself (returning has the same
    /// effect).
    pub fn run<F, R>(&self, qubo: &Qubo, host: F) -> R
    where
        F: FnOnce(&[Arc<GlobalMem>]) -> R,
    {
        /// Raises every stop flag when dropped — including during an
        /// unwind out of the host closure, so a panicking host can never
        /// deadlock the scope on still-running devices.
        struct StopGuard<'a>(&'a [Arc<GlobalMem>]);
        impl Drop for StopGuard<'_> {
            fn drop(&mut self) {
                for m in self.0 {
                    m.request_stop();
                }
            }
        }

        let mems = self.mems();
        std::thread::scope(|s| {
            for d in &self.devices {
                s.spawn(move || d.run(qubo));
            }
            let _guard = StopGuard(&mems);
            host(&mems)
        })
    }

    /// Starts every device on its own OS thread and hands back the
    /// running machine. Unlike [`Machine::run`], which scopes device
    /// lifetime to a single host closure, the returned value *owns* the
    /// threads, so a resumable session can poll across many calls,
    /// checkpoint in between, and stop whenever it chooses.
    #[must_use]
    pub fn start(self, qubo: Arc<Qubo>) -> RunningMachine {
        let mems = self.mems();
        let handles = self
            .devices
            .into_iter()
            .map(|d| {
                let q = Arc::clone(&qubo);
                std::thread::spawn(move || d.run(&q))
            })
            .collect();
        RunningMachine { mems, handles }
    }

    /// Total flips across all devices.
    #[must_use]
    pub fn total_flips(&self) -> u64 {
        self.devices.iter().map(|d| d.mem().total_flips()).sum()
    }

    /// Total solutions evaluated across all devices for an `n`-bit
    /// problem (the search-rate numerator of §4.3). Delegates to
    /// [`GlobalMem::total_evaluated`], which counts `n + 1` evaluations
    /// per flip *and* per initialized search unit — the same accounting
    /// as `DeltaTracker::evaluated`, so per-tracker and machine-level
    /// totals agree exactly.
    #[must_use]
    pub fn total_evaluated(&self, n: usize) -> u64 {
        self.devices
            .iter()
            .map(|d| d.mem().total_evaluated(n))
            .sum()
    }
}

/// A machine whose devices run on owned background threads — the engine
/// underneath a resumable solve session. Created by [`Machine::start`];
/// [`RunningMachine::join`] (or dropping the value) raises every stop
/// flag and joins the device threads.
pub struct RunningMachine {
    mems: Vec<Arc<GlobalMem>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl RunningMachine {
    /// Global memories of all devices, in device order (the host's view).
    #[must_use]
    pub fn mems(&self) -> &[Arc<GlobalMem>] {
        &self.mems
    }

    /// Raises the stop flag on every device; blocks exit at their next
    /// iteration boundary.
    pub fn request_stop(&self) {
        for m in &self.mems {
            m.request_stop();
        }
    }

    /// Raises every stop flag and joins all device threads. Idempotent.
    pub fn join(&mut self) {
        self.request_stop();
        for h in self.handles.drain(..) {
            // A panicking device thread already recorded itself dead in
            // its health region; joining must not re-panic the host.
            let _ = h.join();
        }
    }
}

impl Drop for RunningMachine {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::BitVec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_machine(devices: usize) -> Machine {
        Machine::new(&MachineConfig {
            num_devices: devices,
            device: DeviceConfig {
                blocks_override: Some(3),
                workers: 1,
                local_steps: 40,
                ..DeviceConfig::default()
            },
        })
    }

    #[test]
    fn all_devices_produce_results() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = Qubo::random(24, &mut rng);
        let m = test_machine(3);
        let counts = m.run(&q, |mems| {
            // Feed two targets to each device, wait for 2 results each.
            let mut rng = StdRng::seed_from_u64(2);
            for mem in mems {
                mem.push_target(BitVec::random(24, &mut rng));
                mem.push_target(BitVec::random(24, &mut rng));
            }
            loop {
                let counts: Vec<u64> = mems.iter().map(|m| m.counter()).collect();
                if counts.iter().all(|&c| c >= 2) {
                    return counts;
                }
                std::thread::yield_now();
            }
        });
        assert_eq!(counts.len(), 3);
        assert!(m.total_flips() > 0);
        // 3 devices × 3 blocks initialized one tracker each: the machine
        // counts their n+1 init evaluations on top of the flip total.
        let units: u64 = m.mems().iter().map(|mem| mem.total_units()).sum();
        assert_eq!(units, 9);
        assert_eq!(m.total_evaluated(24), (m.total_flips() + 9) * 25);
    }

    #[test]
    fn started_machine_is_polled_across_calls_and_joined() {
        let mut rng = StdRng::seed_from_u64(21);
        let q = Qubo::random(24, &mut rng);
        let m = test_machine(2);
        let mut running = m.start(Arc::new(q));
        let mut rng = StdRng::seed_from_u64(22);
        for mem in running.mems() {
            mem.push_target(BitVec::random(24, &mut rng));
        }
        // Poll-style host: separate calls against the owned machine.
        loop {
            if running.mems().iter().all(|m| m.counter() >= 1) {
                break;
            }
            std::thread::yield_now();
        }
        running.join();
        for mem in running.mems() {
            assert!(mem.stopped());
            assert!(mem.counter() >= 1);
        }
        // Joining twice is harmless.
        running.join();
    }

    #[test]
    fn dropping_a_running_machine_stops_and_joins() {
        let mut rng = StdRng::seed_from_u64(23);
        let q = Qubo::random(16, &mut rng);
        let m = test_machine(1);
        let mems = m.mems();
        {
            let _running = m.start(Arc::new(q));
            // Dropped immediately: Drop must raise stop and join without
            // hanging, even though the device barely ran.
        }
        assert!(mems[0].stopped());
    }

    #[test]
    fn host_result_is_propagated() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = Qubo::random(16, &mut rng);
        let m = test_machine(1);
        let out = m.run(&q, |_mems| 42usize);
        assert_eq!(out, 42);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = Machine::new(&MachineConfig {
            num_devices: 0,
            device: DeviceConfig::default(),
        });
    }

    #[test]
    fn panicking_host_does_not_deadlock_devices() {
        // The StopGuard must raise stop flags during unwind, so the
        // scope joins promptly and the panic propagates.
        let mut rng = StdRng::seed_from_u64(4);
        let q = Qubo::random(16, &mut rng);
        let m = test_machine(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run(&q, |_mems| panic!("host exploded"));
        }));
        assert!(result.is_err(), "panic must propagate");
        // Devices exited: their memories show the stop flag.
        for mem in m.mems() {
            assert!(mem.stopped());
        }
    }

    #[test]
    fn devices_have_independent_memories() {
        let m = test_machine(2);
        m.mems()[0].push_target(BitVec::zeros(8));
        assert_eq!(m.mems()[0].pending_targets(), 1);
        assert_eq!(m.mems()[1].pending_targets(), 0);
    }

    #[test]
    fn devices_are_indexed_in_order() {
        let m = test_machine(3);
        let indices: Vec<usize> = m.devices().iter().map(Device::index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn dead_on_arrival_device_is_visible_to_a_health_aware_host() {
        // Regression for the host-hang bug: a device that dies leaves
        // its counter frozen forever, so a host that only polls counters
        // never returns. A host that also reads the health region sees
        // the death and can stop — this run must terminate.
        use crate::fault::FaultPlan;
        use crate::health::HealthStatus;
        let mut rng = StdRng::seed_from_u64(11);
        let q = Qubo::random(16, &mut rng);
        let mut device = DeviceConfig {
            blocks_override: Some(2),
            workers: 1,
            local_steps: 20,
            ..DeviceConfig::default()
        };
        // Every block of the only device dies on its first iteration.
        device.fault = Some(Arc::new(
            FaultPlan::new().panic_block(0, 0, 0).panic_block(0, 1, 0),
        ));
        let m = Machine::new(&MachineConfig {
            num_devices: 1,
            device,
        });
        let saw_dead = m.run(&q, |mems| loop {
            if mems[0].health().status() == HealthStatus::Dead {
                return true;
            }
            if mems[0].counter() > 0 {
                return false;
            }
            std::thread::yield_now();
        });
        assert!(saw_dead, "host must observe the device death");
    }
}
