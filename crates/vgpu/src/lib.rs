//! Virtual multi-GPU execution substrate.
//!
//! The paper runs the ABS device side on four NVIDIA GeForce RTX 2080 Ti
//! GPUs in CUDA C. This crate substitutes a faithful *virtual* GPU built
//! from OS threads and shared memory:
//!
//! * [`spec`] — the hardware resource description (SM count, register
//!   file, warp/thread/block limits) with the Turing TU102 numbers the
//!   paper quotes.
//! * [`mod@occupancy`] — the occupancy calculator: given a problem size `n`
//!   and *bits per thread* `p`, it derives threads/block, blocks/SM and
//!   active blocks/GPU exactly as CUDA would, reproducing the
//!   configuration columns of Table 2 bit-for-bit.
//! * [`buffers`] — the "global memory" the host and device exchange data
//!   through: a target buffer, a solution buffer, and the atomic counter
//!   the host polls (the `cudaMemcpyAsync` pattern of §3.1 Step 2).
//! * [`block`] — one "CUDA block": a bulk-search unit alternating
//!   straight search and local search (§3.2 Steps 2–5).
//! * [`device`] / [`machine`] — schedulers multiplexing the (hundreds
//!   to thousands of) logical blocks onto worker OS threads, one device
//!   per simulated GPU.
//! * [`timing`] — an analytic GPU cost model calibrated against Table 2,
//!   used to reproduce the *shape* of the paper's search-rate results
//!   where raw CPU throughput cannot.
//!
//! What is preserved by the substitution: the algorithms, the asynchrony
//! (blocks never synchronize with each other or the host), the occupancy
//! arithmetic, and the linear multi-device scaling. What necessarily
//! changes: absolute search rates (CPU ≪ GPU), which the benchmark
//! harness reports honestly alongside the model.
//!
//! # Example
//!
//! ```
//! use vgpu::{occupancy, DeviceSpec, Machine, MachineConfig, DeviceConfig};
//! use qubo::{BitVec, Qubo};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Table 2, first row: n = 1024, one bit per thread.
//! let spec = DeviceSpec::rtx_2080_ti();
//! let occ = occupancy(&spec, 1024, 1).unwrap();
//! assert_eq!(occ.threads_per_block, 1024);
//! assert_eq!(occ.blocks_per_gpu, 68);
//! assert_eq!(occ.occupancy, 1.0);
//!
//! // Run a small machine: host pushes a target, devices search.
//! let mut rng = StdRng::seed_from_u64(3);
//! let q = Qubo::random(32, &mut rng);
//! let machine = Machine::new(&MachineConfig {
//!     num_devices: 1,
//!     device: DeviceConfig {
//!         blocks_override: Some(2),
//!         local_steps: 50,
//!         ..DeviceConfig::default()
//!     },
//! });
//! let best = machine.run(&q, |mems| {
//!     mems[0].push_target(BitVec::random(32, &mut rng));
//!     loop {
//!         if mems[0].counter() > 0 {
//!             return mems[0].drain_results()[0].energy;
//!         }
//!         std::thread::yield_now();
//!     }
//! });
//! assert!(best <= 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod buffers;
pub mod device;
pub mod fault;
pub mod health;
pub mod machine;
pub mod occupancy;
pub mod pool;
pub mod spec;
pub mod timing;

pub use block::{AdaptiveConfig, BlockConfig, BlockRunner, PolicyKind, WindowSchedule};
pub use buffers::{GlobalMem, SolutionRecord, DEFAULT_BUFFER_CAPACITY, DEFAULT_EVENT_CAPACITY};
pub use device::{Device, DeviceConfig, ResolveError};
pub use fault::{Corruption, FaultKind, FaultPlan, InjectedPanic};
pub use health::{DeviceHealth, HealthStatus};
pub use machine::{Machine, MachineConfig, RunningMachine};
pub use occupancy::{full_occupancy_configs, occupancy, Occupancy, OccupancyError};
pub use pool::{
    DevicePool, LeaseGeometry, LeaseRequest, PoolConfig, PoolLease, PoolStats, Priority,
};
pub use spec::DeviceSpec;
pub use timing::{TimingModel, PAPER_TABLE2};
