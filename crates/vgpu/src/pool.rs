//! Multi-tenant device pool: logical devices and their block capacity
//! as a shared resource, leased to concurrent solve sessions.
//!
//! The paper's host owns every GPU exclusively for the duration of one
//! bulk search. This module deliberately deviates from that shape (the
//! deviation is documented in DESIGN.md §13): because our devices are
//! virtual — OS threads over private [`crate::GlobalMem`] regions — a
//! host can run many machines at once, and the scarce resource is the
//! *block capacity* each machine multiplexes onto worker threads. The
//! pool makes that capacity explicit:
//!
//! * every job takes a [`PoolLease`] before building its machine and
//!   gives it back when the session ends — blocks are the unit of
//!   accounting, `devices × blocks_per_device` per lease;
//! * a lease is clamped to the per-job budget
//!   ([`PoolConfig::max_lease_blocks`]) so one tenant cannot monopolise
//!   the pool, and grants go to the eldest waiter of the highest
//!   [`Priority`] class — no overtaking within a class, which bounds
//!   starvation;
//! * a dropped lease is *reclaimed*: if the owning job dies (panic,
//!   watchdog kill) without an explicit release, the capacity returns
//!   to the pool anyway and the reclaim is counted separately so the
//!   operator can see it happening.
//!
//! Isolation is structural, not policed: each lease's session builds
//! its own [`crate::Machine`], whose devices allocate fresh
//! [`crate::GlobalMem`] regions, so no tenant can observe another
//! tenant's targets, solutions or counters. The pool never shares
//! memory between leases — it only schedules capacity.
//!
//! The only functions that may call [`DevicePool::acquire_lease`] /
//! [`DevicePool::release_lease`] live in this file and in the server's
//! `runner.rs`; the `pool-lease-discipline` lint rule enforces that
//! confinement and that the two calls pair up in the runner.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Scheduling class of a lease. Grants are ordered by class first
/// (interactive before batch), then by arrival within a class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Bulk traffic; yields to interactive work when the pool is hot.
    Batch,
    /// Latency-sensitive traffic; jumps the batch queue but never
    /// preempts a running lease.
    Interactive,
}

impl Priority {
    /// Parses the wire form used by the server (`"batch"` /
    /// `"interactive"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "batch" => Some(Self::Batch),
            "interactive" => Some(Self::Interactive),
            _ => None,
        }
    }

    /// The wire/label form (`"batch"` / `"interactive"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Batch => "batch",
            Self::Interactive => "interactive",
        }
    }
}

/// Static pool geometry and per-job budget.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Logical devices in the pool.
    pub num_devices: usize,
    /// Block capacity of each logical device.
    pub blocks_per_device: usize,
    /// Per-job budget: a single lease never holds more than this many
    /// blocks in total; larger asks are shrunk (never refused). The
    /// clamp depends only on this configuration, never on load, so a
    /// job's granted geometry is deterministic.
    pub max_lease_blocks: usize,
    /// Floor for a clamped ask: shrinking stops here.
    pub min_lease_blocks: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            num_devices: 4,
            blocks_per_device: 16,
            max_lease_blocks: 64,
            min_lease_blocks: 1,
        }
    }
}

impl PoolConfig {
    /// Total block capacity (`num_devices × blocks_per_device`).
    #[must_use]
    pub fn capacity_blocks(&self) -> usize {
        self.num_devices.max(1) * self.blocks_per_device.max(1)
    }
}

/// What a job asks the pool for.
#[derive(Clone, Debug)]
pub struct LeaseRequest<'a> {
    /// Tenant label for telemetry aggregation (`abs_pool_blocks_leased`).
    pub tenant: &'a str,
    /// Scheduling class.
    pub priority: Priority,
    /// Devices wanted (clamped to the pool's device count, floor 1).
    pub devices: usize,
    /// Blocks per device wanted (clamped to device capacity and the
    /// per-job budget, floor 1).
    pub blocks_per_device: usize,
}

/// Geometry actually granted after clamping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseGeometry {
    /// Devices granted.
    pub devices: usize,
    /// Blocks per device granted.
    pub blocks_per_device: usize,
}

impl LeaseGeometry {
    /// Total blocks held (`devices × blocks_per_device`).
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.devices * self.blocks_per_device
    }
}

/// Point-in-time pool accounting, for telemetry and tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total block capacity.
    pub capacity_blocks: usize,
    /// Blocks currently free.
    pub free_blocks: usize,
    /// Live leases.
    pub active_leases: usize,
    /// Requests currently blocked waiting for capacity.
    pub waiting: usize,
    /// Leases granted since the pool was built.
    pub granted: u64,
    /// Leases returned through [`DevicePool::release_lease`].
    pub released: u64,
    /// Leases returned by drop without an explicit release — the
    /// re-lease-on-death path (panicked or watchdog-killed jobs).
    pub reclaimed: u64,
}

struct Waiter {
    ticket: u64,
    priority: Priority,
}

struct PoolState {
    /// Free blocks per logical device.
    free: Vec<usize>,
    /// Blocks held, aggregated per tenant label.
    leased_by_tenant: HashMap<String, usize>,
    waiters: Vec<Waiter>,
    next_ticket: u64,
    active_leases: usize,
    granted: u64,
    released: u64,
    reclaimed: u64,
}

/// The shared pool. Cheap to clone behind an [`Arc`]; every lease holds
/// one so reclaim-on-drop works even if the scheduler thread is gone.
pub struct DevicePool {
    config: PoolConfig,
    state: Mutex<PoolState>,
    capacity_freed: Condvar,
}

fn lock(pool: &DevicePool) -> MutexGuard<'_, PoolState> {
    pool.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl DevicePool {
    /// Builds a pool with the given geometry (device/block counts are
    /// floored at 1).
    #[must_use]
    pub fn new(config: PoolConfig) -> Self {
        let devices = config.num_devices.max(1);
        let blocks = config.blocks_per_device.max(1);
        let state = PoolState {
            free: vec![blocks; devices],
            leased_by_tenant: HashMap::new(),
            waiters: Vec::new(),
            next_ticket: 0,
            active_leases: 0,
            granted: 0,
            released: 0,
            reclaimed: 0,
        };
        Self {
            config,
            state: Mutex::new(state),
            capacity_freed: Condvar::new(),
        }
    }

    /// The geometry the pool was built with.
    #[must_use]
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Deterministic clamp of an ask onto pool geometry and the
    /// per-job budget. Depends only on [`PoolConfig`], never on load:
    /// repeat submissions of the same job always get the same shape.
    #[must_use]
    pub fn clamp(&self, devices: usize, blocks_per_device: usize) -> LeaseGeometry {
        let devices = devices.max(1).min(self.config.num_devices.max(1));
        let mut blocks = blocks_per_device
            .max(1)
            .min(self.config.blocks_per_device.max(1));
        let budget = self.config.max_lease_blocks.max(1);
        if devices * blocks > budget {
            blocks = (budget / devices).max(self.config.min_lease_blocks.max(1));
            blocks = blocks.min(self.config.blocks_per_device.max(1));
        }
        LeaseGeometry {
            devices,
            blocks_per_device: blocks,
        }
    }

    /// Blocks until capacity is available, then leases it.
    ///
    /// The ask is clamped with [`DevicePool::clamp`]; the wait is
    /// FIFO within a [`Priority`] class, and interactive waiters are
    /// always served before batch waiters. Capacity freed by a release
    /// *or* a reclaim wakes the queue, so a dead tenant's blocks
    /// re-lease immediately.
    #[must_use]
    pub fn acquire_lease(self: &Arc<Self>, req: &LeaseRequest<'_>) -> PoolLease {
        let geometry = self.clamp(req.devices, req.blocks_per_device);
        let mut state = lock(self);
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.waiters.push(Waiter {
            ticket,
            priority: req.priority,
        });
        loop {
            let eligible = !state.waiters.iter().any(|w| {
                w.priority > req.priority || (w.priority == req.priority && w.ticket < ticket)
            });
            if eligible {
                if let Some(device_indices) = take_capacity(&mut state.free, geometry) {
                    state.waiters.retain(|w| w.ticket != ticket);
                    state.active_leases += 1;
                    state.granted += 1;
                    *state
                        .leased_by_tenant
                        .entry(req.tenant.to_string())
                        .or_insert(0) += geometry.total_blocks();
                    // The next waiter in line may fit in what is left.
                    self.capacity_freed.notify_all();
                    return PoolLease {
                        pool: Arc::clone(self),
                        tenant: req.tenant.to_string(),
                        priority: req.priority,
                        geometry,
                        device_indices,
                        settled: AtomicBool::new(false),
                    };
                }
            }
            state = self
                .capacity_freed
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Returns a lease to the pool explicitly (the clean path). A
    /// lease that is merely dropped is *reclaimed* instead — same
    /// capacity effect, separate counter.
    pub fn release_lease(&self, lease: PoolLease) {
        lease.settle(true);
    }

    /// Blocks currently held, aggregated per tenant, sorted by label.
    #[must_use]
    pub fn leased_by_tenant(&self) -> Vec<(String, usize)> {
        let state = lock(self);
        let mut out: Vec<(String, usize)> = state
            .leased_by_tenant
            .iter()
            .map(|(t, b)| (t.clone(), *b))
            .collect();
        out.sort();
        out
    }

    /// Point-in-time accounting snapshot.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let state = lock(self);
        PoolStats {
            capacity_blocks: self.config.capacity_blocks(),
            free_blocks: state.free.iter().sum(),
            active_leases: state.active_leases,
            waiting: state.waiters.len(),
            granted: state.granted,
            released: state.released,
            reclaimed: state.reclaimed,
        }
    }

    fn give_back(&self, lease: &PoolLease, clean: bool) {
        let mut state = lock(self);
        for &d in &lease.device_indices {
            if let Some(free) = state.free.get_mut(d) {
                *free += lease.geometry.blocks_per_device;
            }
        }
        state.active_leases = state.active_leases.saturating_sub(1);
        if clean {
            state.released += 1;
        } else {
            state.reclaimed += 1;
        }
        let total = lease.geometry.total_blocks();
        let drained = match state.leased_by_tenant.get_mut(&lease.tenant) {
            Some(held) => {
                *held = held.saturating_sub(total);
                *held == 0
            }
            None => false,
        };
        if drained {
            state.leased_by_tenant.remove(&lease.tenant);
        }
        drop(state);
        self.capacity_freed.notify_all();
    }
}

/// Picks `geometry.devices` distinct devices, each with at least
/// `geometry.blocks_per_device` free, preferring the emptiest devices
/// so load spreads. Returns the chosen indices, or `None` if the ask
/// does not fit right now.
fn take_capacity(free: &mut [usize], geometry: LeaseGeometry) -> Option<Vec<usize>> {
    let mut candidates: Vec<usize> = (0..free.len())
        .filter(|&d| free[d] >= geometry.blocks_per_device)
        .collect();
    if candidates.len() < geometry.devices {
        return None;
    }
    // Most-free first; ties broken by index for determinism.
    candidates.sort_by_key(|&d| (std::cmp::Reverse(free[d]), d));
    candidates.truncate(geometry.devices);
    candidates.sort_unstable();
    for &d in &candidates {
        free[d] -= geometry.blocks_per_device;
    }
    Some(candidates)
}

/// A granted slice of the pool. Holding one is the *only* right to
/// run a machine of the granted geometry; dropping it returns the
/// capacity (counted as a reclaim unless
/// [`DevicePool::release_lease`] ran first).
pub struct PoolLease {
    pool: Arc<DevicePool>,
    tenant: String,
    priority: Priority,
    geometry: LeaseGeometry,
    device_indices: Vec<usize>,
    settled: AtomicBool,
}

impl PoolLease {
    /// Tenant label the lease is accounted under.
    #[must_use]
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Scheduling class the lease was granted under.
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Granted geometry (post-clamp).
    #[must_use]
    pub fn geometry(&self) -> LeaseGeometry {
        self.geometry
    }

    /// The logical device indices held (distinct, ascending). A real
    /// multi-GPU host would bind the session's machine to exactly
    /// these physical devices.
    #[must_use]
    pub fn device_indices(&self) -> &[usize] {
        &self.device_indices
    }

    fn settle(&self, clean: bool) {
        // The swap only elects a single settler (release path vs Drop);
        // the ledger mutation itself is ordered by the pool mutex inside
        // give_back, so Relaxed is sufficient here.
        if !self.settled.swap(true, Ordering::Relaxed) {
            self.pool.give_back(self, clean);
        }
    }
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        self.settle(false);
    }
}

impl std::fmt::Debug for PoolLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolLease")
            .field("tenant", &self.tenant)
            .field("priority", &self.priority)
            .field("geometry", &self.geometry)
            .field("device_indices", &self.device_indices)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn pool(devices: usize, blocks: usize) -> Arc<DevicePool> {
        Arc::new(DevicePool::new(PoolConfig {
            num_devices: devices,
            blocks_per_device: blocks,
            max_lease_blocks: devices * blocks,
            min_lease_blocks: 1,
        }))
    }

    fn req(tenant: &str, priority: Priority, devices: usize, blocks: usize) -> LeaseRequest<'_> {
        LeaseRequest {
            tenant,
            priority,
            devices,
            blocks_per_device: blocks,
        }
    }

    #[test]
    fn uncontended_lease_grants_the_exact_ask() {
        let p = pool(2, 8);
        let lease = p.acquire_lease(&req("t", Priority::Batch, 1, 8));
        assert_eq!(
            lease.geometry(),
            LeaseGeometry {
                devices: 1,
                blocks_per_device: 8
            }
        );
        assert_eq!(lease.device_indices().len(), 1);
        assert_eq!(p.stats().free_blocks, 8);
        p.release_lease(lease);
        let stats = p.stats();
        assert_eq!(stats.free_blocks, 16);
        assert_eq!(stats.released, 1);
        assert_eq!(stats.reclaimed, 0);
    }

    #[test]
    fn clamp_is_static_and_budgeted() {
        let p = Arc::new(DevicePool::new(PoolConfig {
            num_devices: 4,
            blocks_per_device: 16,
            max_lease_blocks: 16,
            min_lease_blocks: 2,
        }));
        // Oversized ask shrinks to the budget, floor respected.
        assert_eq!(
            p.clamp(2, 16),
            LeaseGeometry {
                devices: 2,
                blocks_per_device: 8
            }
        );
        // Zero asks floor at 1×1.
        assert_eq!(
            p.clamp(0, 0),
            LeaseGeometry {
                devices: 1,
                blocks_per_device: 1
            }
        );
        // Asks beyond pool geometry cap at the pool.
        assert_eq!(p.clamp(9, 99).devices, 4);
    }

    #[test]
    fn exhausted_pool_blocks_until_release() {
        let p = pool(1, 8);
        let first = p.acquire_lease(&req("a", Priority::Batch, 1, 8));
        let (tx, rx) = mpsc::channel();
        let p2 = Arc::clone(&p);
        let waiter = std::thread::spawn(move || {
            let lease = p2.acquire_lease(&req("b", Priority::Batch, 1, 8));
            tx.send(()).unwrap();
            p2.release_lease(lease);
        });
        // The second ask must wait while the first lease is live.
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        assert_eq!(p.stats().waiting, 1);
        p.release_lease(first);
        rx.recv_timeout(Duration::from_secs(5))
            .expect("waiter should be granted after release");
        waiter.join().unwrap();
        assert_eq!(p.stats().free_blocks, 8);
    }

    #[test]
    fn dropped_lease_is_reclaimed_and_re_leased() {
        let p = pool(1, 4);
        let doomed = p.acquire_lease(&req("dead", Priority::Batch, 1, 4));
        // Simulate a watchdog-killed job: the lease drops on an
        // unwound stack with no explicit release.
        drop(doomed);
        let stats = p.stats();
        assert_eq!(stats.reclaimed, 1);
        assert_eq!(stats.free_blocks, 4);
        assert!(p.leased_by_tenant().is_empty());
        // The reclaimed capacity is immediately grantable.
        let next = p.acquire_lease(&req("next", Priority::Batch, 1, 4));
        assert_eq!(next.geometry().total_blocks(), 4);
        p.release_lease(next);
    }

    #[test]
    fn interactive_overtakes_batch_in_the_wait_queue() {
        let p = pool(1, 4);
        let holder = p.acquire_lease(&req("hold", Priority::Batch, 1, 4));
        let (tx, rx) = mpsc::channel();
        let spawn_waiter = |label: &'static str, priority: Priority, delay_ms: u64| {
            let p = Arc::clone(&p);
            let tx = tx.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(delay_ms));
                let lease = p.acquire_lease(&req(label, priority, 1, 4));
                tx.send(label).unwrap();
                std::thread::sleep(Duration::from_millis(50));
                p.release_lease(lease);
            })
        };
        // Batch waiter arrives first, interactive second.
        let batch = spawn_waiter("batch", Priority::Batch, 0);
        let interactive = spawn_waiter("interactive", Priority::Interactive, 100);
        // Wait until both are queued, then free the pool.
        while p.stats().waiting < 2 {
            std::thread::sleep(Duration::from_millis(5));
        }
        p.release_lease(holder);
        let first = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            (first, second),
            ("interactive", "batch"),
            "interactive must be served before an earlier batch waiter"
        );
        batch.join().unwrap();
        interactive.join().unwrap();
    }

    #[test]
    fn per_tenant_accounting_aggregates_and_drains() {
        let p = pool(4, 8);
        let a1 = p.acquire_lease(&req("alice", Priority::Batch, 1, 8));
        let a2 = p.acquire_lease(&req("alice", Priority::Batch, 1, 4));
        let b = p.acquire_lease(&req("bob", Priority::Interactive, 2, 8));
        assert_eq!(
            p.leased_by_tenant(),
            vec![("alice".to_string(), 12), ("bob".to_string(), 16)]
        );
        p.release_lease(a1);
        assert_eq!(
            p.leased_by_tenant(),
            vec![("alice".to_string(), 4), ("bob".to_string(), 16)]
        );
        p.release_lease(a2);
        p.release_lease(b);
        assert!(p.leased_by_tenant().is_empty());
        assert_eq!(p.stats().free_blocks, 32);
    }

    #[test]
    fn capacity_spreads_across_emptiest_devices() {
        let p = pool(3, 8);
        let a = p.acquire_lease(&req("a", Priority::Batch, 1, 6));
        let b = p.acquire_lease(&req("b", Priority::Batch, 1, 6));
        // Two 6-block leases must land on distinct devices (most-free
        // first), leaving a third device untouched.
        assert_ne!(a.device_indices(), b.device_indices());
        let c = p.acquire_lease(&req("c", Priority::Batch, 1, 8));
        assert_eq!(c.geometry().blocks_per_device, 8);
        p.release_lease(a);
        p.release_lease(b);
        p.release_lease(c);
    }

    #[test]
    fn concurrent_storm_conserves_capacity() {
        let p = pool(4, 8);
        let mut handles = Vec::new();
        for i in 0..16 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                let tenant = format!("t{}", i % 3);
                for _ in 0..20 {
                    let lease = p.acquire_lease(&req(&tenant, Priority::Batch, 1, 4));
                    std::thread::yield_now();
                    p.release_lease(lease);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = p.stats();
        assert_eq!(stats.free_blocks, 32, "all capacity must come back");
        assert_eq!(stats.granted, 16 * 20);
        assert_eq!(stats.released, 16 * 20);
        assert_eq!(stats.waiting, 0);
        assert!(p.leased_by_tenant().is_empty());
    }
}
