//! Hardware resource descriptions of the simulated devices.

/// Static resource limits of one simulated GPU, in CUDA terms.
///
/// The defaults model the NVIDIA GeForce RTX 2080 Ti (Turing TU102,
/// compute capability 7.5) the paper uses: 68 SMs, 64 K 32-bit registers
/// and 64 KB shared memory per SM, at most 1024 resident threads
/// (32 warps) and 16 resident blocks per SM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Maximum threads in one block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Shared memory per SM, in bytes.
    pub shared_mem_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
}

impl DeviceSpec {
    /// The RTX 2080 Ti configuration used throughout the paper.
    #[must_use]
    pub fn rtx_2080_ti() -> Self {
        Self {
            name: "NVIDIA GeForce RTX 2080 Ti (virtual)".to_owned(),
            sms: 68,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1024,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 16,
            registers_per_sm: 64 * 1024,
            shared_mem_per_sm: 64 * 1024,
            warp_size: 32,
        }
    }

    /// A deliberately tiny device for fast unit tests (4 SMs).
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            name: "tiny test device".to_owned(),
            sms: 4,
            ..Self::rtx_2080_ti()
        }
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::rtx_2080_ti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turing_numbers_match_the_paper() {
        let s = DeviceSpec::rtx_2080_ti();
        // §3.2: "64-KB shared memory, 1024 threads (32 warps), 64K 32-bit
        // registers per multiprocessor … and 68 multiprocessors".
        assert_eq!(s.sms, 68);
        assert_eq!(s.max_threads_per_sm, 1024);
        assert_eq!(s.max_warps_per_sm, 32);
        assert_eq!(s.registers_per_sm, 65536);
        assert_eq!(s.shared_mem_per_sm, 65536);
        assert_eq!(s.warp_size, 32);
        // 64 registers per thread at full occupancy — the budget that
        // limits the system to 32 k-bit problems.
        assert_eq!(s.registers_per_sm / s.max_threads_per_sm, 64);
    }
}
