//! One virtual GPU: a scheduler multiplexing logical blocks onto worker
//! OS threads.
//!
//! The scheduler is fault-tolerant: every block iteration runs inside
//! `catch_unwind`, and a panicking block is **quarantined** — removed
//! from the schedule, its search unit retired from the evaluated-count
//! projection, and its death recorded in the device's
//! [`crate::health::DeviceHealth`] region — while the remaining blocks
//! keep searching. A device whose blocks all die (or whose run exits
//! while the host is still polling) shows up as
//! [`crate::health::HealthStatus::Dead`], which the host watchdog reads
//! to requeue the device's work instead of polling a frozen counter
//! forever.

use crate::block::{AdaptiveConfig, BlockConfig, BlockRunner, PolicyKind, WindowSchedule};
use crate::buffers::{GlobalMem, SolutionRecord, DEFAULT_BUFFER_CAPACITY, DEFAULT_EVENT_CAPACITY};
use crate::fault::{self, Corruption, FaultPlan, InjectedPanic};
use crate::occupancy::{full_occupancy_configs, occupancy, OccupancyError};
use crate::spec::DeviceSpec;
use abs_telemetry::Event;
use qubo::{BitVec, MatrixStorage, Qubo, SparseQubo};
use qubo_search::{DeltaTracker, FlipKernel, SearchTracker};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Configuration of one virtual device.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Hardware resource model (defaults to the RTX 2080 Ti).
    pub spec: DeviceSpec,
    /// Bits per thread `p`; `None` selects the 100 %-occupancy
    /// configuration with the most active blocks (the paper's best-
    /// performing choice for most sizes).
    pub bits_per_thread: Option<u32>,
    /// Overrides the number of logical blocks (tests and small problems;
    /// `None` derives the count from the occupancy calculator).
    pub blocks_override: Option<usize>,
    /// Worker OS threads simulating the SMs of this device.
    pub workers: usize,
    /// Local-search flips per bulk iteration (§3.2 Step 4b).
    pub local_steps: usize,
    /// Window-length assignment across blocks.
    pub windows: WindowSchedule,
    /// Optional future-work adaptive window switching, applied to every
    /// block (see [`AdaptiveConfig`]).
    pub adaptive: Option<AdaptiveConfig>,
    /// Selection algorithms cycled across blocks (§5 future work:
    /// heterogeneous devices). Empty = every block runs the paper's
    /// window policy.
    pub policy_mix: Vec<PolicyKind>,
    /// Capacity of the host→device target buffer (overflow evicts the
    /// oldest pending target).
    pub target_capacity: usize,
    /// Capacity of the device→host result buffer (overflow keeps the
    /// best records).
    pub result_capacity: usize,
    /// Capacity of the telemetry event ring (0 disables event
    /// recording entirely; the statistics counters keep working).
    pub event_capacity: usize,
    /// Deterministic fault plan for failure rehearsal; `None` (the
    /// production default) injects nothing and costs one `Option` check
    /// per block iteration.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            spec: DeviceSpec::default(),
            bits_per_thread: None,
            blocks_override: None,
            workers: 1,
            local_steps: 256,
            windows: WindowSchedule::PowersOfTwo,
            adaptive: None,
            policy_mix: Vec::new(),
            target_capacity: DEFAULT_BUFFER_CAPACITY,
            result_capacity: DEFAULT_BUFFER_CAPACITY,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            fault: None,
        }
    }
}

/// Reasons a device cannot derive a block count for a problem size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolveError {
    /// The explicitly requested `bits_per_thread` cannot be launched for
    /// this `n`.
    Infeasible {
        /// The requested bits per thread.
        bits_per_thread: u32,
        /// The problem size.
        n: usize,
        /// Why the occupancy calculator refused it.
        cause: OccupancyError,
    },
    /// No 100 %-occupancy configuration exists for this `n` on this
    /// hardware (n > 32 k on Turing).
    NoFullOccupancy {
        /// The problem size.
        n: usize,
        /// The device model name.
        device: String,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible {
                bits_per_thread,
                n,
                cause,
            } => write!(
                f,
                "infeasible bits_per_thread={bits_per_thread} for n={n}: {cause}"
            ),
            Self::NoFullOccupancy { n, device } => {
                write!(f, "no 100% occupancy configuration for n={n} on {device}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// One virtual GPU: its global memory plus the scheduler state.
pub struct Device {
    config: DeviceConfig,
    /// Index of this device within its machine (scopes fault plans).
    index: usize,
    mem: Arc<GlobalMem>,
}

impl Device {
    /// Creates a device with fresh (empty) global memory, as device 0.
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_index(config, 0)
    }

    /// Creates a device with fresh global memory and an explicit machine
    /// index (the index scopes [`FaultPlan`] entries).
    #[must_use]
    pub fn with_index(config: DeviceConfig, index: usize) -> Self {
        let mem = Arc::new(GlobalMem::with_capacities(
            config.target_capacity,
            config.result_capacity,
            config.event_capacity,
        ));
        Self { config, index, mem }
    }

    /// The device's global memory region (shared with the host).
    #[must_use]
    pub fn mem(&self) -> &Arc<GlobalMem> {
        &self.mem
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// This device's index within its machine.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of logical blocks this device runs for an `n`-bit problem.
    ///
    /// # Errors
    /// [`ResolveError`] if an explicit `bits_per_thread` is infeasible
    /// for `n`, or if no 100 %-occupancy configuration exists
    /// (n > 32 k on Turing).
    pub fn resolve_blocks(&self, n: usize) -> Result<usize, ResolveError> {
        if let Some(b) = self.config.blocks_override {
            return Ok(b.max(1));
        }
        let occ = match self.config.bits_per_thread {
            Some(p) => {
                occupancy(&self.config.spec, n, p).map_err(|cause| ResolveError::Infeasible {
                    bits_per_thread: p,
                    n,
                    cause,
                })?
            }
            None => full_occupancy_configs(&self.config.spec, n)
                .into_iter()
                .max_by_key(|o| o.blocks_per_gpu)
                .ok_or_else(|| ResolveError::NoFullOccupancy {
                    n,
                    device: self.config.spec.name.to_string(),
                })?,
        };
        Ok(occ.blocks_per_gpu as usize)
    }

    /// Runs the device until the host raises the stop flag in its global
    /// memory. Blocks are distributed round-robin over `workers` OS
    /// threads; each worker cycles through its blocks, running one bulk
    /// iteration at a time, so all logical blocks make progress
    /// regardless of how few OS threads back them.
    ///
    /// Fault tolerance: a block whose iteration panics is quarantined
    /// (removed from the schedule, unit retired, death recorded in the
    /// health region) and the worker moves on. If the run ends while the
    /// host has not requested a stop — all blocks dead, or the launch
    /// configuration is infeasible — the health region reports the
    /// device as dead so the host watchdog can take over its work.
    ///
    /// The storage arm is picked once per run by measured coupler
    /// density ([`MatrixStorage::select`], pinnable via
    /// `ABS_FORCE_DENSE` / `ABS_FORCE_SPARSE`): sparse instances are
    /// converted to CSR and every block runs the O(degree) flip tier.
    /// On the dense arm the Δ accumulator width is then picked: blocks
    /// use narrow `i32` accumulators whenever the problem's Δ bound
    /// fits (always true for i16 weights at the supported sizes),
    /// falling back to `i64` otherwise, and the flip kernel is detected
    /// once per run ([`FlipKernel::detect`]) and shared by every block.
    /// Both choices are published in global memory
    /// ([`GlobalMem::matrix_storage_name`],
    /// [`GlobalMem::flip_kernel_name`]) for host telemetry. The flip
    /// trajectories are identical for every storage/width/kernel
    /// combination.
    pub fn run(&self, qubo: &Qubo) {
        match MatrixStorage::select(qubo) {
            MatrixStorage::Sparse => {
                let sq = SparseQubo::from_dense(qubo);
                self.mem.set_matrix_storage(MatrixStorage::Sparse);
                // The CSR arm is scalar i64-only (its hot loop is an
                // irregular gather, not a lane-parallel row stream):
                // record the truth in the kernel slot too.
                self.mem.set_flip_kernel(FlipKernel::Scalar);
                self.run_blocks(qubo.n(), FlipKernel::Scalar, |c| {
                    BlockRunner::sparse(&sq, c)
                });
            }
            MatrixStorage::Dense => {
                self.mem.set_matrix_storage(MatrixStorage::Dense);
                if DeltaTracker::<i32>::fits(qubo) {
                    let kernel = FlipKernel::detect();
                    self.mem.set_flip_kernel(kernel);
                    self.run_blocks(qubo.n(), kernel, |c| {
                        BlockRunner::<DeltaTracker<'_, i32>>::with_width(qubo, c)
                    });
                } else {
                    // Wide accumulators have no SIMD arm: record the truth.
                    self.mem.set_flip_kernel(FlipKernel::Scalar);
                    self.run_blocks(qubo.n(), FlipKernel::Scalar, |c| {
                        BlockRunner::<DeltaTracker<'_, i64>>::with_width(qubo, c)
                    });
                }
            }
        }
        if !self.mem.stopped() {
            self.mem.health().record_dead_exit();
        }
    }

    fn run_blocks<T, F>(&self, n: usize, kernel: FlipKernel, make: F)
    where
        T: SearchTracker,
        F: Fn(BlockConfig) -> BlockRunner<T> + Sync,
    {
        let Ok(total_blocks) = self.resolve_blocks(n) else {
            // Callers that want the cause use `resolve_blocks` up front
            // (the `abs` host does); here the device just reports itself
            // dead through the health region and parks.
            return;
        };
        self.mem.set_expected_len(n);
        self.mem.health().set_total_blocks(total_blocks as u64);
        if self.config.fault.is_some() {
            fault::install_quiet_panic_hook();
        }
        let workers = self.config.workers.max(1).min(total_blocks);
        let mem = &self.mem;
        let cfg = &self.config;
        let device = self.index;
        let make = &make;
        std::thread::scope(|s| {
            for w in 0..workers {
                s.spawn(move || {
                    /// A scheduled block plus its identity and progress.
                    struct Slot<T: SearchTracker> {
                        runner: BlockRunner<T>,
                        block: usize,
                        iters: u64,
                    }
                    let mut slots: Vec<Slot<T>> = (w..total_blocks)
                        .step_by(workers)
                        .map(|b| Slot {
                            runner: make(BlockConfig {
                                local_steps: cfg.local_steps,
                                window: cfg.windows.window_for(b, n),
                                // Prime-stride offsets desynchronize
                                // blocks that share a window length.
                                offset: (b * 97) % n,
                                adaptive: cfg.adaptive,
                                policy: if cfg.policy_mix.is_empty() {
                                    PolicyKind::Window
                                } else {
                                    cfg.policy_mix[b % cfg.policy_mix.len()].clone()
                                },
                                kernel,
                            }),
                            block: b,
                            iters: 0,
                        })
                        .collect();
                    mem.add_units(slots.len() as u64);
                    for slot in &slots {
                        if let Some(w) = slot.runner.window() {
                            mem.record_event(Event::window_assign(w as u64));
                        }
                    }
                    let plan = cfg.fault.as_deref();
                    // Announce this worker to the host's quiesce
                    // predicate; signed off on every exit path below.
                    mem.worker_enter();
                    'outer: while !mem.stopped() {
                        if slots.is_empty() {
                            break;
                        }
                        let mut i = 0;
                        while i < slots.len() {
                            if mem.stopped() {
                                break 'outer;
                            }
                            // Checkpoint quiesce barrier: park here (an
                            // iteration boundary, so per-block counters
                            // are consistent) while the host snapshots.
                            mem.pause_point();
                            if let Some(plan) = plan {
                                if plan.stalled(device, mem.total_iterations()) {
                                    // Simulated hang: frozen, but still
                                    // responsive to the stop flag so the
                                    // machine's join completes.
                                    while !mem.stopped() {
                                        std::thread::yield_now();
                                    }
                                    break 'outer;
                                }
                                if let Some(count) = plan.take_drop(device, mem.total_iterations())
                                {
                                    for _ in 0..count {
                                        let _ = mem.pop_target();
                                    }
                                }
                            }
                            let (block, iters) = (slots[i].block, slots[i].iters);
                            let mid_panic = plan.and_then(|p| {
                                p.take_panic(device, block, iters)
                                    .then_some(InjectedPanic { device, block })
                            });
                            let outcome = {
                                let slot = &mut slots[i];
                                catch_unwind(AssertUnwindSafe(|| {
                                    slot.runner.bulk_iteration_injected(mem, mid_panic)
                                }))
                            };
                            match outcome {
                                Ok(_flips) => {
                                    if let Some(plan) = plan {
                                        if let Some(c) = plan.take_corruption(device, block, iters)
                                        {
                                            push_corrupted(mem, n, c);
                                        }
                                    }
                                    slots[i].iters += 1;
                                    i += 1;
                                }
                                Err(_payload) => {
                                    // Quarantine: the block leaves the
                                    // schedule; its init unit leaves the
                                    // evaluated projection; its death is
                                    // visible to the host.
                                    let _ = slots.swap_remove(i);
                                    mem.retire_unit();
                                    mem.health().record_dead_block();
                                    mem.record_event(Event::block_death(block as u64));
                                }
                            }
                        }
                    }
                    mem.worker_exit();
                });
            }
        });
    }
}

/// Pushes a deliberately malformed record, rehearsing a corrupted
/// device→host transfer.
fn push_corrupted(mem: &GlobalMem, n: usize, corruption: Corruption) {
    let record = match corruption {
        // Wrong bit-length: rejected by `GlobalMem::push_result`.
        Corruption::WrongLength => SolutionRecord {
            x: BitVec::zeros(n + 1),
            energy: 0,
        },
        // Right length, absurd energy claim: `E(0…0) = 0` exactly, and
        // the claim is impossibly good, so the host's improvement audit
        // always catches it.
        Corruption::WrongEnergy => SolutionRecord {
            x: BitVec::zeros(n),
            energy: qubo::Energy::MIN / 2,
        },
    };
    let _ = mem.push_result(record);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_qubo(n: usize, seed: u64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        Qubo::random(n, &mut rng)
    }

    fn small_config(blocks: usize, workers: usize) -> DeviceConfig {
        DeviceConfig {
            blocks_override: Some(blocks),
            workers,
            local_steps: 50,
            ..DeviceConfig::default()
        }
    }

    #[test]
    fn resolve_blocks_uses_occupancy_when_not_overridden() {
        let cfg = DeviceConfig {
            bits_per_thread: Some(1),
            ..DeviceConfig::default()
        };
        let d = Device::new(cfg);
        assert_eq!(d.resolve_blocks(1024), Ok(68));
        let auto = Device::new(DeviceConfig::default());
        // Auto picks the max-block 100% configuration: p = 16 → 1088.
        assert_eq!(auto.resolve_blocks(1024), Ok(1088));
    }

    #[test]
    fn resolve_blocks_reports_infeasible_p_as_error() {
        let cfg = DeviceConfig {
            bits_per_thread: Some(1),
            ..DeviceConfig::default()
        };
        let err = Device::new(cfg).resolve_blocks(4096).unwrap_err();
        assert!(matches!(err, ResolveError::Infeasible { .. }));
        assert!(err.to_string().contains("infeasible bits_per_thread=1"));
    }

    #[test]
    fn resolve_blocks_reports_oversized_n_as_error() {
        let d = Device::new(DeviceConfig::default());
        let err = d.resolve_blocks(1 << 20).unwrap_err();
        assert!(matches!(err, ResolveError::NoFullOccupancy { .. }));
        assert!(err.to_string().contains("no 100% occupancy"));
    }

    #[test]
    fn device_runs_until_stopped_and_produces_results() {
        let q = random_qubo(32, 1);
        let d = Device::new(small_config(4, 2));
        let mem = Arc::clone(d.mem());
        std::thread::scope(|s| {
            s.spawn(|| d.run(&q));
            // Host: feed some targets, wait for results, stop.
            let mut rng = StdRng::seed_from_u64(2);
            for _ in 0..8 {
                mem.push_target(BitVec::random(32, &mut rng));
            }
            while mem.counter() < 8 {
                std::thread::yield_now();
            }
            mem.request_stop();
        });
        let results = mem.drain_results();
        assert!(results.len() >= 8);
        for r in &results {
            assert_eq!(r.energy, q.energy(&r.x));
        }
        assert!(mem.total_flips() > 0);
        // i16 weights at n=32 always fit i32, so the dispatched kernel is
        // whatever detection picked — never the "unset" placeholder.
        // (Under a forced-sparse pin the CSR arm records scalar instead.)
        if MatrixStorage::forced() != Some(MatrixStorage::Sparse) {
            assert_eq!(mem.flip_kernel_name(), FlipKernel::detect().name());
        }
        use crate::health::HealthStatus;
        assert_eq!(mem.health().status(), HealthStatus::Healthy);
    }

    #[test]
    fn sparse_instance_dispatches_to_the_csr_arm() {
        // A near-empty matrix sits under the density threshold, so the
        // run must record the sparse storage arm (and the scalar kernel
        // slot) and still produce exact results.
        // (`select` honours the env pins; skip under a forced-dense pin.)
        if MatrixStorage::forced() == Some(MatrixStorage::Dense) {
            return;
        }
        let n = 64;
        let mut q = Qubo::zero(n).unwrap();
        q.set(0, 1, -9);
        q.set(5, 40, 4);
        let d = Device::new(small_config(3, 2));
        let mem = Arc::clone(d.mem());
        std::thread::scope(|s| {
            s.spawn(|| d.run(&q));
            let mut rng = StdRng::seed_from_u64(21);
            for _ in 0..6 {
                mem.push_target(BitVec::random(n, &mut rng));
            }
            while mem.counter() < 6 {
                std::thread::yield_now();
            }
            mem.request_stop();
        });
        assert_eq!(mem.matrix_storage_name(), "sparse");
        assert_eq!(mem.flip_kernel_name(), "scalar");
        for r in &mem.drain_results() {
            assert_eq!(r.energy, q.energy(&r.x));
        }
        // Degree-honest accounting: far below the dense projection.
        assert!(mem.total_evaluated(n) < (mem.total_flips() + 3) * (n as u64 + 1) / 4);
    }

    #[test]
    fn dense_instance_records_the_dense_arm() {
        if MatrixStorage::forced() == Some(MatrixStorage::Sparse) {
            return;
        }
        let q = random_qubo(32, 9);
        let d = Device::new(small_config(2, 1));
        let mem = Arc::clone(d.mem());
        std::thread::scope(|s| {
            s.spawn(|| d.run(&q));
            while mem.counter() < 2 {
                std::thread::yield_now();
            }
            mem.request_stop();
        });
        assert_eq!(mem.matrix_storage_name(), "dense");
    }

    #[test]
    fn all_blocks_progress_with_fewer_workers_than_blocks() {
        let q = random_qubo(16, 3);
        let d = Device::new(small_config(6, 2));
        let mem = Arc::clone(d.mem());
        std::thread::scope(|s| {
            s.spawn(|| d.run(&q));
            // 2 rounds of 6 blocks each → ≥ 12 iterations before stop.
            while mem.total_iterations() < 12 {
                std::thread::yield_now();
            }
            mem.request_stop();
        });
        assert!(mem.total_iterations() >= 12);
    }

    #[test]
    fn stop_before_start_exits_immediately() {
        let q = random_qubo(16, 4);
        let d = Device::new(small_config(4, 1));
        d.mem().request_stop();
        d.run(&q); // must return promptly
        assert_eq!(d.mem().total_iterations(), 0);
        use crate::health::HealthStatus;
        assert_eq!(d.mem().health().status(), HealthStatus::Healthy);
    }

    #[test]
    fn panicking_block_is_quarantined_and_the_rest_keep_running() {
        let q = random_qubo(24, 5);
        let mut cfg = small_config(4, 2);
        cfg.fault = Some(Arc::new(FaultPlan::new().panic_block(0, 1, 2)));
        let d = Device::new(cfg);
        let mem = Arc::clone(d.mem());
        std::thread::scope(|s| {
            s.spawn(|| d.run(&q));
            // Long past the injected death, results keep flowing.
            while mem.counter() < 40 {
                std::thread::yield_now();
            }
            mem.request_stop();
        });
        use crate::health::HealthStatus;
        assert_eq!(
            mem.health().status(),
            HealthStatus::Degraded {
                dead_blocks: 1,
                total_blocks: 4
            }
        );
        // Evaluated accounting counts surviving units only.
        assert_eq!(mem.total_units(), 3);
        assert_eq!(
            mem.total_evaluated(24),
            (mem.total_flips() + 3) * 25,
            "dead block's init unit must leave the projection"
        );
        for r in &mem.drain_results() {
            assert_eq!(r.energy, q.energy(&r.x), "survivors stay exact");
        }
    }

    #[test]
    fn device_with_all_blocks_dead_exits_and_reports_dead() {
        let q = random_qubo(16, 6);
        let mut cfg = small_config(2, 1);
        cfg.fault = Some(Arc::new(
            FaultPlan::new().panic_block(0, 0, 0).panic_block(0, 1, 0),
        ));
        let d = Device::new(cfg);
        // No host stop: the run must terminate on its own.
        d.run(&q);
        use crate::health::HealthStatus;
        assert_eq!(d.mem().health().status(), HealthStatus::Dead);
        assert_eq!(d.mem().health().dead_blocks(), 2);
        assert_eq!(d.mem().total_units(), 0);
    }

    #[test]
    fn stalled_device_freezes_but_honours_stop() {
        let q = random_qubo(16, 7);
        let mut cfg = small_config(3, 2);
        cfg.fault = Some(Arc::new(FaultPlan::new().stall_device(0, 5)));
        let d = Device::new(cfg);
        let mem = Arc::clone(d.mem());
        std::thread::scope(|s| {
            s.spawn(|| d.run(&q));
            while mem.total_iterations() < 5 {
                std::thread::yield_now();
            }
            // Stalled: the counter stops moving; stop still works.
            mem.request_stop();
        });
        // Health shows nothing wrong — stalls are watchdog territory.
        use crate::health::HealthStatus;
        assert_eq!(mem.health().status(), HealthStatus::Healthy);
    }

    #[test]
    fn corrupted_records_are_rejected_on_device_side() {
        let q = random_qubo(16, 8);
        let mut cfg = small_config(2, 1);
        cfg.fault = Some(Arc::new(FaultPlan::new().corrupt_record(
            0,
            0,
            1,
            Corruption::WrongLength,
        )));
        let d = Device::new(cfg);
        let mem = Arc::clone(d.mem());
        std::thread::scope(|s| {
            s.spawn(|| d.run(&q));
            while mem.total_iterations() < 8 {
                std::thread::yield_now();
            }
            mem.request_stop();
        });
        assert_eq!(mem.rejected_records(), 1);
        for r in &mem.drain_results() {
            assert_eq!(r.x.len(), 16, "malformed record never reached the host");
        }
    }
}
