//! One virtual GPU: a scheduler multiplexing logical blocks onto worker
//! OS threads.

use crate::block::{AdaptiveConfig, BlockConfig, BlockRunner, PolicyKind, WindowSchedule};
use crate::buffers::GlobalMem;
use crate::occupancy::{full_occupancy_configs, occupancy};
use crate::spec::DeviceSpec;
use qubo::Qubo;
use qubo_search::{DeltaAcc, DeltaTracker};
use std::sync::Arc;

/// Configuration of one virtual device.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Hardware resource model (defaults to the RTX 2080 Ti).
    pub spec: DeviceSpec,
    /// Bits per thread `p`; `None` selects the 100 %-occupancy
    /// configuration with the most active blocks (the paper's best-
    /// performing choice for most sizes).
    pub bits_per_thread: Option<u32>,
    /// Overrides the number of logical blocks (tests and small problems;
    /// `None` derives the count from the occupancy calculator).
    pub blocks_override: Option<usize>,
    /// Worker OS threads simulating the SMs of this device.
    pub workers: usize,
    /// Local-search flips per bulk iteration (§3.2 Step 4b).
    pub local_steps: usize,
    /// Window-length assignment across blocks.
    pub windows: WindowSchedule,
    /// Optional future-work adaptive window switching, applied to every
    /// block (see [`AdaptiveConfig`]).
    pub adaptive: Option<AdaptiveConfig>,
    /// Selection algorithms cycled across blocks (§5 future work:
    /// heterogeneous devices). Empty = every block runs the paper's
    /// window policy.
    pub policy_mix: Vec<PolicyKind>,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            spec: DeviceSpec::default(),
            bits_per_thread: None,
            blocks_override: None,
            workers: 1,
            local_steps: 256,
            windows: WindowSchedule::PowersOfTwo,
            adaptive: None,
            policy_mix: Vec::new(),
        }
    }
}

/// One virtual GPU: its global memory plus the scheduler state.
pub struct Device {
    config: DeviceConfig,
    mem: Arc<GlobalMem>,
}

impl Device {
    /// Creates a device with fresh (empty) global memory.
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            mem: Arc::new(GlobalMem::new()),
        }
    }

    /// The device's global memory region (shared with the host).
    #[must_use]
    pub fn mem(&self) -> &Arc<GlobalMem> {
        &self.mem
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Number of logical blocks this device runs for an `n`-bit problem.
    ///
    /// # Panics
    /// Panics if an explicit `bits_per_thread` is infeasible for `n`, or
    /// if no 100 %-occupancy configuration exists (n > 32 k on Turing).
    #[must_use]
    pub fn resolve_blocks(&self, n: usize) -> usize {
        if let Some(b) = self.config.blocks_override {
            return b.max(1);
        }
        let occ = match self.config.bits_per_thread {
            Some(p) => occupancy(&self.config.spec, n, p)
                .unwrap_or_else(|e| panic!("infeasible bits_per_thread={p} for n={n}: {e}")),
            None => full_occupancy_configs(&self.config.spec, n)
                .into_iter()
                .max_by_key(|o| o.blocks_per_gpu)
                .unwrap_or_else(|| {
                    panic!(
                        "no 100% occupancy configuration for n={n} on {}",
                        self.config.spec.name
                    )
                }),
        };
        occ.blocks_per_gpu as usize
    }

    /// Runs the device until the host raises the stop flag in its global
    /// memory. Blocks are distributed round-robin over `workers` OS
    /// threads; each worker cycles through its blocks, running one bulk
    /// iteration at a time, so all logical blocks make progress
    /// regardless of how few OS threads back them.
    ///
    /// The Δ accumulator width is picked once per run: blocks use narrow
    /// `i32` accumulators whenever the problem's Δ bound fits (always
    /// true for i16 weights at the supported sizes), falling back to
    /// `i64` otherwise. The flip trajectories are identical either way.
    pub fn run(&self, qubo: &Qubo) {
        if DeltaTracker::<i32>::fits(qubo) {
            self.run_width::<i32>(qubo);
        } else {
            self.run_width::<i64>(qubo);
        }
    }

    fn run_width<A: DeltaAcc>(&self, qubo: &Qubo) {
        let n = qubo.n();
        let total_blocks = self.resolve_blocks(n);
        let workers = self.config.workers.max(1).min(total_blocks);
        let mem = &self.mem;
        let cfg = &self.config;
        std::thread::scope(|s| {
            for w in 0..workers {
                s.spawn(move || {
                    let mut blocks: Vec<BlockRunner<'_, A>> = (w..total_blocks)
                        .step_by(workers)
                        .map(|b| {
                            BlockRunner::with_width(
                                qubo,
                                BlockConfig {
                                    local_steps: cfg.local_steps,
                                    window: cfg.windows.window_for(b, n),
                                    // Prime-stride offsets desynchronize
                                    // blocks that share a window length.
                                    offset: (b * 97) % n,
                                    adaptive: cfg.adaptive,
                                    policy: if cfg.policy_mix.is_empty() {
                                        PolicyKind::Window
                                    } else {
                                        cfg.policy_mix[b % cfg.policy_mix.len()].clone()
                                    },
                                },
                            )
                        })
                        .collect();
                    mem.add_units(blocks.len() as u64);
                    'outer: while !mem.stopped() {
                        for blk in &mut blocks {
                            blk.bulk_iteration(mem);
                            if mem.stopped() {
                                break 'outer;
                            }
                        }
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::BitVec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_qubo(n: usize, seed: u64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        Qubo::random(n, &mut rng)
    }

    fn small_config(blocks: usize, workers: usize) -> DeviceConfig {
        DeviceConfig {
            blocks_override: Some(blocks),
            workers,
            local_steps: 50,
            ..DeviceConfig::default()
        }
    }

    #[test]
    fn resolve_blocks_uses_occupancy_when_not_overridden() {
        let cfg = DeviceConfig {
            bits_per_thread: Some(1),
            ..DeviceConfig::default()
        };
        let d = Device::new(cfg);
        assert_eq!(d.resolve_blocks(1024), 68);
        let auto = Device::new(DeviceConfig::default());
        // Auto picks the max-block 100% configuration: p = 16 → 1088.
        assert_eq!(auto.resolve_blocks(1024), 1088);
    }

    #[test]
    #[should_panic(expected = "infeasible bits_per_thread")]
    fn resolve_blocks_panics_on_infeasible_p() {
        let cfg = DeviceConfig {
            bits_per_thread: Some(1),
            ..DeviceConfig::default()
        };
        let _ = Device::new(cfg).resolve_blocks(4096);
    }

    #[test]
    fn device_runs_until_stopped_and_produces_results() {
        let q = random_qubo(32, 1);
        let d = Device::new(small_config(4, 2));
        let mem = Arc::clone(d.mem());
        std::thread::scope(|s| {
            s.spawn(|| d.run(&q));
            // Host: feed some targets, wait for results, stop.
            let mut rng = StdRng::seed_from_u64(2);
            for _ in 0..8 {
                mem.push_target(BitVec::random(32, &mut rng));
            }
            while mem.counter() < 8 {
                std::thread::yield_now();
            }
            mem.request_stop();
        });
        let results = mem.drain_results();
        assert!(results.len() >= 8);
        for r in &results {
            assert_eq!(r.energy, q.energy(&r.x));
        }
        assert!(mem.total_flips() > 0);
    }

    #[test]
    fn all_blocks_progress_with_fewer_workers_than_blocks() {
        let q = random_qubo(16, 3);
        let d = Device::new(small_config(6, 2));
        let mem = Arc::clone(d.mem());
        std::thread::scope(|s| {
            s.spawn(|| d.run(&q));
            // 2 rounds of 6 blocks each → ≥ 12 iterations before stop.
            while mem.total_iterations() < 12 {
                std::thread::yield_now();
            }
            mem.request_stop();
        });
        assert!(mem.total_iterations() >= 12);
    }

    #[test]
    fn stop_before_start_exits_immediately() {
        let q = random_qubo(16, 4);
        let d = Device::new(small_config(4, 1));
        d.mem().request_stop();
        d.run(&q); // must return promptly
        assert_eq!(d.mem().total_iterations(), 0);
    }
}
