//! Per-device health accounting — the `DeviceHealth` region of global
//! memory.
//!
//! The paper's host/device contract (§3.1, Fig. 5) has no failure
//! vocabulary: a device is assumed to make progress forever. Real
//! long-running multi-GPU campaigns lose blocks (ECC faults, kernel
//! asserts) and whole devices (driver resets, hangs). This module gives
//! the host a way to *observe* such failures without any new
//! synchronization: a handful of atomics living next to the result
//! counter, written by device workers and read by the host's poll loop.
//!
//! What the region can and cannot express:
//!
//! * A **quarantined block** (its iteration panicked and it was removed
//!   from the schedule) is visible immediately via `dead_blocks`.
//! * A **dead device** (every block quarantined, or the device run exited
//!   while the host had not requested a stop) is visible via
//!   [`HealthStatus::Dead`].
//! * A **silent stall** (workers alive but frozen) is *not* visible here
//!   — by definition nothing gets written. Detecting it is the job of the
//!   host-side watchdog, which compares result-counter progress across
//!   devices (`abs`'s `WatchdogConfig`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Health of one device as derivable from its shared-memory region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthStatus {
    /// All registered blocks are running (or the device has not started).
    Healthy,
    /// Some blocks were quarantined; the rest keep searching.
    Degraded {
        /// Blocks quarantined so far.
        dead_blocks: u64,
        /// Blocks registered at device start.
        total_blocks: u64,
    },
    /// Every block is gone, or the device run exited while the host was
    /// still running (a device thread death the host would otherwise
    /// discover only when `Machine::run` joins — i.e. never, if the host
    /// loop is polling a frozen counter).
    Dead,
}

/// The health sub-region of one device's [`crate::GlobalMem`].
///
/// All fields are monotone counters or latches; readers need no lock and
/// writers never block each other.
#[derive(Debug, Default)]
pub struct DeviceHealth {
    /// Blocks registered when the device run started.
    total_blocks: AtomicU64,
    /// Blocks quarantined after a panicking iteration.
    dead_blocks: AtomicU64,
    /// Latch: the device run returned while the stop flag was *not*
    /// raised — the device died rather than being retired by the host.
    dead_exit: AtomicBool,
}

impl DeviceHealth {
    /// Creates a healthy, not-yet-started region.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Device: registers `total` blocks at run start.
    pub fn set_total_blocks(&self, total: u64) {
        // ordering: Release pairs with the Acquire in total_blocks();
        // record_dead_block's Release chain also carries this store (the
        // registration precedes every quarantine in device program order).
        self.total_blocks.store(total, Ordering::Release);
    }

    /// Device: records one quarantined block.
    pub fn record_dead_block(&self) {
        // ordering: Release pairs with the Acquire in dead_blocks() — a
        // visible quarantine implies the earlier set_total_blocks store
        // is visible too (see the load order in status()).
        self.dead_blocks.fetch_add(1, Ordering::Release);
    }

    /// Device: records that the run exited without a host stop request.
    pub fn record_dead_exit(&self) {
        // ordering: Release pairs with the Acquire load in status().
        self.dead_exit.store(true, Ordering::Release);
    }

    /// Blocks registered at device start (0 before the run starts).
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        // ordering: Acquire pairs with the Release store in set_total_blocks.
        self.total_blocks.load(Ordering::Acquire)
    }

    /// Blocks quarantined so far.
    #[must_use]
    pub fn dead_blocks(&self) -> u64 {
        // ordering: Acquire pairs with the Release fetch_add in record_dead_block.
        self.dead_blocks.load(Ordering::Acquire)
    }

    /// Host: derives the device status from the counters.
    #[must_use]
    pub fn status(&self) -> HealthStatus {
        // ordering: Acquire pairs with the Release store in record_dead_exit.
        if self.dead_exit.load(Ordering::Acquire) {
            return HealthStatus::Dead;
        }
        // Read `dead` *before* `total`: the quarantine's Release chains
        // back to the set_total_blocks store (registration precedes every
        // quarantine on the device), so a visible death implies a visible
        // registration and `dead > total == 0` can never be observed —
        // reading in the opposite order could misreport a freshly
        // degraded device as Dead.
        let dead = self.dead_blocks();
        let total = self.total_blocks();
        if dead == 0 {
            HealthStatus::Healthy
        } else if dead >= total {
            HealthStatus::Dead
        } else {
            HealthStatus::Degraded {
                dead_blocks: dead,
                total_blocks: total,
            }
        }
    }
}

impl HealthStatus {
    /// `true` unless the device is [`HealthStatus::Dead`].
    #[must_use]
    pub fn is_alive(&self) -> bool {
        !matches!(self, Self::Dead)
    }

    /// Short lowercase label (`healthy` / `degraded` / `dead`) for logs
    /// and machine-readable output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded { .. } => "degraded",
            Self::Dead => "dead",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_region_is_healthy() {
        let h = DeviceHealth::new();
        assert_eq!(h.status(), HealthStatus::Healthy);
        assert!(h.status().is_alive());
        assert_eq!(h.status().label(), "healthy");
    }

    #[test]
    fn block_deaths_walk_healthy_degraded_dead() {
        let h = DeviceHealth::new();
        h.set_total_blocks(3);
        assert_eq!(h.status(), HealthStatus::Healthy);
        h.record_dead_block();
        assert_eq!(
            h.status(),
            HealthStatus::Degraded {
                dead_blocks: 1,
                total_blocks: 3
            }
        );
        assert!(h.status().is_alive());
        h.record_dead_block();
        h.record_dead_block();
        assert_eq!(h.status(), HealthStatus::Dead);
        assert!(!h.status().is_alive());
        assert_eq!(h.status().label(), "dead");
    }

    #[test]
    fn dead_exit_overrides_block_counts() {
        let h = DeviceHealth::new();
        h.set_total_blocks(8);
        h.record_dead_exit();
        assert_eq!(h.status(), HealthStatus::Dead);
    }

    #[test]
    fn all_blocks_quarantined_flips_to_dead_exactly_at_the_last_block() {
        let total = 4;
        let h = DeviceHealth::new();
        h.set_total_blocks(total);
        for dead in 1..=total {
            h.record_dead_block();
            let s = h.status();
            if dead < total {
                assert_eq!(
                    s,
                    HealthStatus::Degraded {
                        dead_blocks: dead,
                        total_blocks: total
                    }
                );
                assert!(s.is_alive(), "alive through {dead}/{total} deaths");
            } else {
                assert_eq!(s, HealthStatus::Dead);
                assert!(!s.is_alive());
            }
        }
    }

    #[test]
    fn status_reads_during_quarantine_transitions_stay_consistent() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let total = 8u64;
        let h = Arc::new(DeviceHealth::new());
        h.set_total_blocks(total);
        let done = Arc::new(AtomicBool::new(false));

        // Reader: polls status() while quarantines land. Only total − 1
        // blocks die below, so Dead must never be observed, and every
        // Degraded snapshot must be internally consistent.
        let reader = {
            let h = Arc::clone(&h);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut max_dead = 0;
                while !done.load(Ordering::Acquire) {
                    match h.status() {
                        HealthStatus::Healthy => {}
                        HealthStatus::Degraded {
                            dead_blocks,
                            total_blocks,
                        } => {
                            assert_eq!(total_blocks, total, "total is fixed");
                            assert!(dead_blocks >= 1 && dead_blocks < total);
                            assert!(dead_blocks >= max_dead, "dead count is monotone");
                            max_dead = dead_blocks;
                        }
                        HealthStatus::Dead => {
                            panic!("Dead observed while a block still runs")
                        }
                    }
                }
            })
        };

        // Writers: total − 1 quarantines from two racing threads.
        let writers: Vec<_> = [total / 2, total / 2 - 1]
            .into_iter()
            .map(|k| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..k {
                        h.record_dead_block();
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Release);
        reader.join().unwrap();

        // The final quarantine flips the device to Dead.
        h.record_dead_block();
        assert_eq!(h.status(), HealthStatus::Dead);
    }
}
