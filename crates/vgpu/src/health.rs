//! Per-device health accounting — the `DeviceHealth` region of global
//! memory.
//!
//! The paper's host/device contract (§3.1, Fig. 5) has no failure
//! vocabulary: a device is assumed to make progress forever. Real
//! long-running multi-GPU campaigns lose blocks (ECC faults, kernel
//! asserts) and whole devices (driver resets, hangs). This module gives
//! the host a way to *observe* such failures without any new
//! synchronization: a handful of atomics living next to the result
//! counter, written by device workers and read by the host's poll loop.
//!
//! What the region can and cannot express:
//!
//! * A **quarantined block** (its iteration panicked and it was removed
//!   from the schedule) is visible immediately via `dead_blocks`.
//! * A **dead device** (every block quarantined, or the device run exited
//!   while the host had not requested a stop) is visible via
//!   [`HealthStatus::Dead`].
//! * A **silent stall** (workers alive but frozen) is *not* visible here
//!   — by definition nothing gets written. Detecting it is the job of the
//!   host-side watchdog, which compares result-counter progress across
//!   devices (`abs`'s `WatchdogConfig`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Health of one device as derivable from its shared-memory region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthStatus {
    /// All registered blocks are running (or the device has not started).
    Healthy,
    /// Some blocks were quarantined; the rest keep searching.
    Degraded {
        /// Blocks quarantined so far.
        dead_blocks: u64,
        /// Blocks registered at device start.
        total_blocks: u64,
    },
    /// Every block is gone, or the device run exited while the host was
    /// still running (a device thread death the host would otherwise
    /// discover only when `Machine::run` joins — i.e. never, if the host
    /// loop is polling a frozen counter).
    Dead,
}

/// The health sub-region of one device's [`crate::GlobalMem`].
///
/// All fields are monotone counters or latches; readers need no lock and
/// writers never block each other.
#[derive(Debug, Default)]
pub struct DeviceHealth {
    /// Blocks registered when the device run started.
    total_blocks: AtomicU64,
    /// Blocks quarantined after a panicking iteration.
    dead_blocks: AtomicU64,
    /// Latch: the device run returned while the stop flag was *not*
    /// raised — the device died rather than being retired by the host.
    dead_exit: AtomicBool,
}

impl DeviceHealth {
    /// Creates a healthy, not-yet-started region.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Device: registers `total` blocks at run start.
    pub fn set_total_blocks(&self, total: u64) {
        self.total_blocks.store(total, Ordering::Release);
    }

    /// Device: records one quarantined block.
    pub fn record_dead_block(&self) {
        self.dead_blocks.fetch_add(1, Ordering::AcqRel);
    }

    /// Device: records that the run exited without a host stop request.
    pub fn record_dead_exit(&self) {
        self.dead_exit.store(true, Ordering::Release);
    }

    /// Blocks registered at device start (0 before the run starts).
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks.load(Ordering::Acquire)
    }

    /// Blocks quarantined so far.
    #[must_use]
    pub fn dead_blocks(&self) -> u64 {
        self.dead_blocks.load(Ordering::Acquire)
    }

    /// Host: derives the device status from the counters.
    #[must_use]
    pub fn status(&self) -> HealthStatus {
        if self.dead_exit.load(Ordering::Acquire) {
            return HealthStatus::Dead;
        }
        let total = self.total_blocks();
        let dead = self.dead_blocks();
        if dead == 0 {
            HealthStatus::Healthy
        } else if dead >= total {
            HealthStatus::Dead
        } else {
            HealthStatus::Degraded {
                dead_blocks: dead,
                total_blocks: total,
            }
        }
    }
}

impl HealthStatus {
    /// `true` unless the device is [`HealthStatus::Dead`].
    #[must_use]
    pub fn is_alive(&self) -> bool {
        !matches!(self, Self::Dead)
    }

    /// Short lowercase label (`healthy` / `degraded` / `dead`) for logs
    /// and machine-readable output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded { .. } => "degraded",
            Self::Dead => "dead",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_region_is_healthy() {
        let h = DeviceHealth::new();
        assert_eq!(h.status(), HealthStatus::Healthy);
        assert!(h.status().is_alive());
        assert_eq!(h.status().label(), "healthy");
    }

    #[test]
    fn block_deaths_walk_healthy_degraded_dead() {
        let h = DeviceHealth::new();
        h.set_total_blocks(3);
        assert_eq!(h.status(), HealthStatus::Healthy);
        h.record_dead_block();
        assert_eq!(
            h.status(),
            HealthStatus::Degraded {
                dead_blocks: 1,
                total_blocks: 3
            }
        );
        assert!(h.status().is_alive());
        h.record_dead_block();
        h.record_dead_block();
        assert_eq!(h.status(), HealthStatus::Dead);
        assert!(!h.status().is_alive());
        assert_eq!(h.status().label(), "dead");
    }

    #[test]
    fn dead_exit_overrides_block_counts() {
        let h = DeviceHealth::new();
        h.set_total_blocks(8);
        h.record_dead_exit();
        assert_eq!(h.status(), HealthStatus::Dead);
    }
}
