//! The "global memory" region shared by the host and one device.
//!
//! Host and device never talk directly: the host writes target solutions
//! into the target buffer and polls a monotonically increasing counter to
//! learn that the device has appended results to the solution buffer
//! (§3, Fig. 5). Every block runs asynchronously — the only
//! synchronization is the short critical section of each buffer, the
//! analogue of a coalesced global-memory transaction.

use parking_lot::Mutex;
use qubo::{BitVec, Energy};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A best-found solution stored by a block (§3.2 Step 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolutionRecord {
    /// The solution bits `B`.
    pub x: BitVec,
    /// Its energy `E_B` (always exact: devices track energies
    /// incrementally and exactly).
    pub energy: Energy,
}

/// Global memory of one device: target buffer, solution buffer, progress
/// counter, and device-side statistics.
#[derive(Debug, Default)]
pub struct GlobalMem {
    targets: Mutex<VecDeque<BitVec>>,
    results: Mutex<Vec<SolutionRecord>>,
    /// Total results ever stored (monotone; the host polls this).
    counter: AtomicU64,
    /// Total bit flips performed by the device (search-rate numerator is
    /// `flips × (n + 1)` evaluated solutions).
    flips: AtomicU64,
    /// Search units (blocks) registered on this device. Each unit's
    /// tracker evaluates `n + 1` solutions at initialization (the start
    /// solution and its `n` neighbours) before its first flip; counting
    /// them keeps device totals consistent with
    /// `DeltaTracker::evaluated`.
    units: AtomicU64,
    /// Bulk-search iterations completed by all blocks.
    iterations: AtomicU64,
    /// Stop flag raised by the host.
    stop: AtomicBool,
}

impl GlobalMem {
    /// Creates an empty region.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    // ---- host side -----------------------------------------------------

    /// Host: enqueue one target solution (§3.1 Step 4).
    pub fn push_target(&self, t: BitVec) {
        self.targets.lock().push_back(t);
    }

    /// Host: current value of the progress counter (the
    /// `cudaMemcpyAsync` poll of §3.1 Step 2).
    #[must_use]
    pub fn counter(&self) -> u64 {
        self.counter.load(Ordering::Acquire)
    }

    /// Host: drain all results currently in the solution buffer
    /// (§3.1 Step 3).
    #[must_use]
    pub fn drain_results(&self) -> Vec<SolutionRecord> {
        std::mem::take(&mut *self.results.lock())
    }

    /// Host: raise the stop flag; blocks exit at the next iteration
    /// boundary.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Number of targets currently waiting (diagnostics / tests).
    #[must_use]
    pub fn pending_targets(&self) -> usize {
        self.targets.lock().len()
    }

    // ---- device side ---------------------------------------------------

    /// Device: dequeue the next target, if the host has provided one
    /// (§3.2 Step 2).
    #[must_use]
    pub fn pop_target(&self) -> Option<BitVec> {
        self.targets.lock().pop_front()
    }

    /// Device: append a best-found solution and bump the counter
    /// (§3.2 Step 5).
    pub fn push_result(&self, record: SolutionRecord) {
        self.results.lock().push(record);
        self.counter.fetch_add(1, Ordering::AcqRel);
    }

    /// Device: account `flips` bit flips.
    pub fn add_flips(&self, flips: u64) {
        self.flips.fetch_add(flips, Ordering::Relaxed);
    }

    /// Device: account one completed bulk-search iteration.
    pub fn add_iteration(&self) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }

    /// Device: register `units` search units (blocks) whose trackers were
    /// just initialized. Called once per block construction, not per
    /// iteration.
    pub fn add_units(&self, units: u64) {
        self.units.fetch_add(units, Ordering::Relaxed);
    }

    /// Whether the host has requested a stop.
    #[must_use]
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Total flips performed by the device so far.
    #[must_use]
    pub fn total_flips(&self) -> u64 {
        self.flips.load(Ordering::Relaxed)
    }

    /// Total bulk iterations completed by the device so far.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Total search units registered on this device so far.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.units.load(Ordering::Relaxed)
    }

    /// Total solutions whose energy this device has evaluated, by the
    /// paper's Theorem 1 accounting: each flip evaluates `n + 1`
    /// solutions, and each registered unit evaluated `n + 1` more at
    /// tracker initialization. Agrees exactly with summing
    /// `DeltaTracker::evaluated` over the device's blocks.
    #[must_use]
    pub fn total_evaluated(&self, n: usize) -> u64 {
        (self.total_flips() + self.total_units()) * (n as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn bv(s: &str) -> BitVec {
        BitVec::from_bit_str(s).unwrap()
    }

    #[test]
    fn targets_are_fifo() {
        let m = GlobalMem::new();
        m.push_target(bv("01"));
        m.push_target(bv("10"));
        assert_eq!(m.pending_targets(), 2);
        assert_eq!(m.pop_target(), Some(bv("01")));
        assert_eq!(m.pop_target(), Some(bv("10")));
        assert_eq!(m.pop_target(), None);
    }

    #[test]
    fn counter_tracks_results() {
        let m = GlobalMem::new();
        assert_eq!(m.counter(), 0);
        m.push_result(SolutionRecord {
            x: bv("11"),
            energy: -4,
        });
        m.push_result(SolutionRecord {
            x: bv("00"),
            energy: 0,
        });
        assert_eq!(m.counter(), 2);
        let drained = m.drain_results();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].energy, -4);
        // Counter is monotone: draining does not reset it.
        assert_eq!(m.counter(), 2);
        assert!(m.drain_results().is_empty());
    }

    #[test]
    fn stop_flag_roundtrip() {
        let m = GlobalMem::new();
        assert!(!m.stopped());
        m.request_stop();
        assert!(m.stopped());
    }

    #[test]
    fn stats_accumulate() {
        let m = GlobalMem::new();
        m.add_flips(10);
        m.add_flips(5);
        m.add_iteration();
        assert_eq!(m.total_flips(), 15);
        assert_eq!(m.total_iterations(), 1);
    }

    #[test]
    fn evaluated_counts_flips_and_unit_initializations() {
        let m = GlobalMem::new();
        assert_eq!(m.total_evaluated(10), 0);
        m.add_units(3); // three blocks initialized: 3·(n+1)
        assert_eq!(m.total_evaluated(10), 33);
        m.add_flips(7); // plus 7·(n+1)
        assert_eq!(m.total_units(), 3);
        assert_eq!(m.total_evaluated(10), (7 + 3) * 11);
    }

    #[test]
    fn concurrent_producers_and_host_poll() {
        // Many device threads pushing results while the host polls and
        // drains must never lose a record.
        let m = Arc::new(GlobalMem::new());
        let producers = 8;
        let per = 500;
        std::thread::scope(|s| {
            for t in 0..producers {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..per {
                        m.push_result(SolutionRecord {
                            x: bv("1"),
                            energy: (t * per + i) as i64,
                        });
                    }
                });
            }
            let m2 = Arc::clone(&m);
            s.spawn(move || {
                let mut got = 0usize;
                while got < producers * per {
                    let seen = m2.counter();
                    if seen as usize > got {
                        got += m2.drain_results().len();
                    }
                    std::hint::spin_loop();
                }
                assert_eq!(got, producers * per);
            });
        });
        assert_eq!(m.counter(), (producers * per) as u64);
    }
}
